//! Umbrella crate for the CRAC reproduction.
//!
//! The workspace is organised as one crate per subsystem (see `DESIGN.md`);
//! this crate re-exports the pieces a downstream user typically needs and is
//! the home of the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! ```
//! use std::sync::Arc;
//! use crac_repro::prelude::*;
//!
//! // 1. Describe the application's kernels.
//! let mut kernels = KernelRegistry::new();
//! kernels.insert("fill", |ctx| {
//!     let n = ctx.arg_u64(1) as usize;
//!     ctx.write_f32_arg(0, &vec![1.0; n])
//! });
//! let kernels = Arc::new(kernels);
//!
//! // 2. Launch the application under CRAC.
//! let proc = CracProcess::launch(CracConfig::test("demo"), Arc::clone(&kernels));
//! let fatbin = proc.register_fat_binary();
//! let fill = proc.register_function(fatbin, "fill").unwrap();
//! let buf = proc.malloc(4096).unwrap();
//! proc.launch_kernel(fill, LaunchDims::linear(1, 256), KernelCost::compute(1024),
//!                    vec![buf.as_u64(), 1024], CracStream::DEFAULT).unwrap();
//! proc.device_synchronize().unwrap();
//!
//! // 3. Checkpoint, then restart elsewhere.
//! let report = proc.checkpoint();
//! let (restarted, _) = CracProcess::restart(&report.image, CracConfig::test("demo"),
//!                                           kernels).unwrap();
//! assert!(restarted.runtime().pointer_kind(buf) != crac_repro::cudart::DevicePointerKind::NotCuda);
//! ```

/// Everything a typical user needs in one import.
pub mod prelude {
    pub use crac_addrspace::{Addr, SharedSpace};
    pub use crac_core::{
        CkptReport, CracConfig, CracError, CracEvent, CracFatBinary, CracKernel, CracProcess,
        CracStream, DmtcpPlugin, KernelRegistry, PrecopyConfig, PrecopyStats, RemoteCkptReport,
        RestartReport, StoredCkptReport,
    };
    pub use crac_cudart::{CudaRuntime, MemcpyKind, RuntimeConfig};
    pub use crac_gpu::{DeviceProfile, KernelCost, LaunchDims};
    pub use crac_imagestore::{
        Compression, FaultConfig, FaultyTransport, ImageId, ImageStore, LazyRestoreSession,
        LazyRestoreStats, LoopbackTransport, Transport, WriteOptions,
    };
    pub use crac_workloads::{run_crac, run_crac_with_checkpoint, run_native, Session};
}

pub use crac_addrspace as addrspace;
pub use crac_core as crac;
pub use crac_cudart as cudart;
pub use crac_dmtcp as dmtcp;
pub use crac_gpu as gpu;
pub use crac_imagestore as imagestore;
pub use crac_proxy as proxy;
pub use crac_splitproc as splitproc;
pub use crac_sync as sync;
pub use crac_workloads as workloads;

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Compile-time check that the re-exports resolve.
        let _cfg = CracConfig::test("prelude");
        let _reg = KernelRegistry::new();
        let _dims = LaunchDims::linear(1, 1);
        let _stream = CracStream::DEFAULT;
    }
}
