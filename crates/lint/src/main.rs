//! `cargo run -p crac-lint [workspace-root]` — walk every
//! `crates/*/src` (and the umbrella `src/`) and enforce the workspace's
//! concurrency-correctness invariants.  Exits non-zero when any
//! violation is found.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match crac_lint::run(std::path::Path::new(&root)) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("crac-lint: {err}");
            ExitCode::FAILURE
        }
    }
}
