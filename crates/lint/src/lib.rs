//! `crac-lint`: the workspace's concurrency-correctness source analyzer.
//!
//! The concurrent layers of this codebase (pre-copy checkpointing, lazy
//! restore fault servicing, the TCP server) are only analyzable because
//! every lock goes through `crac-sync`, every panic site is deliberate,
//! and every thread has an owner.  Those are project invariants no
//! compiler checks — this tool does, with `file:line` diagnostics and an
//! inline escape hatch, and CI gates on its exit code.
//!
//! ## Rules
//!
//! | id            | invariant                                                            |
//! |---------------|----------------------------------------------------------------------|
//! | `raw-lock`    | no `std::sync` / `parking_lot` lock types outside `crates/sync`      |
//! | `no-unwrap`   | no `.unwrap()` / `.expect(...)` / `panic!(...)` in non-test library code |
//! | `raw-spawn`   | no `thread::spawn` outside approved scoped-spawn seams               |
//! | `raw-instant` | no `Instant::now()` timing outside `crac-obs` / `crac-sync` spans    |
//!
//! ## Escapes
//!
//! A justified exception is written inline:
//!
//! ```text
//! some_call(); // crac-lint: allow(no-unwrap) — reason the invariant holds
//! ```
//!
//! A directive suppresses matching diagnostics on its own line and on
//! the immediately following line (so a standalone comment line can
//! annotate the line below it).  Unknown rule ids in a directive are
//! themselves diagnostics — escapes must not rot.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from every rule: tests unwrap and spawn freely.  Files under
//! `crates/shims/` are not scanned at all (they impersonate external
//! crates), `crates/sync` is exempt from `raw-lock` (it *wraps* the raw
//! types), and `crates/obs` + `crates/sync` are exempt from
//! `raw-instant` (they *are* the timing layer).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One enforced invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Raw `std::sync` / `parking_lot` lock types outside `crac-sync`.
    RawLock,
    /// `.unwrap()` / `.expect(` / `panic!(` in non-test library code.
    NoUnwrap,
    /// `thread::spawn` outside approved scoped-spawn seams.
    RawSpawn,
    /// `Instant::now()` timing outside the observability layers.
    RawInstant,
    /// A malformed or unknown allow directive (not allowable).
    Directive,
}

impl Rule {
    /// Every checkable rule (excludes the directive meta-rule).
    pub const ALL: [Rule; 4] = [
        Rule::RawLock,
        Rule::NoUnwrap,
        Rule::RawSpawn,
        Rule::RawInstant,
    ];

    /// The stable id used in diagnostics and `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::RawLock => "raw-lock",
            Rule::NoUnwrap => "no-unwrap",
            Rule::RawSpawn => "raw-spawn",
            Rule::RawInstant => "raw-instant",
            Rule::Directive => "directive",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Is `rel_path` (forward-slash, workspace-relative) exempt from
    /// this rule wholesale?
    fn path_exempt(self, rel_path: &str) -> bool {
        match self {
            Rule::RawLock => rel_path.starts_with("crates/sync/"),
            Rule::RawInstant => {
                rel_path.starts_with("crates/obs/") || rel_path.starts_with("crates/sync/")
            }
            _ => false,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: a rule violated at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description with the offending token.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of one analyzer run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Every diagnostic, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Renders diagnostics plus a one-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        if self.violations.is_empty() {
            let _ = writeln!(
                out,
                "crac-lint: OK — {} files scanned, 0 violations",
                self.files_scanned
            );
        } else {
            let files: std::collections::BTreeSet<&str> =
                self.violations.iter().map(|v| v.file.as_str()).collect();
            let _ = writeln!(
                out,
                "crac-lint: {} violation(s) in {} file(s) ({} files scanned)",
                self.violations.len(),
                files.len(),
                self.files_scanned
            );
        }
        out
    }
}

/// Walks `src/` and every `crates/*/src` under `root` (skipping
/// `crates/shims`) and scans each `.rs` file.
pub fn run(root: &Path) -> io::Result<Outcome> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            if dir.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut files)?;
            }
        }
    }
    files.sort();
    let mut outcome = Outcome::default();
    for (rel, path) in files {
        let source = std::fs::read_to_string(&path)?;
        outcome.violations.extend(scan_source(&rel, &source));
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-file scanner
// ---------------------------------------------------------------------------

/// One source line split into its code text (string-literal and comment
/// content blanked) and its comment text (directive search space).
#[derive(Debug, Default)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Lexer carry-over state between lines.
enum LexState {
    Code,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

/// Splits source into per-line (code, comment) pairs, honoring string
/// literals (plain, raw, byte), char literals vs lifetimes, line
/// comments, and nested block comments.
fn split_source(source: &str) -> Vec<SplitLine> {
    let mut state = LexState::Code;
    let mut out = Vec::new();
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut split = SplitLine::default();
        let mut i = 0usize;
        while i < chars.len() {
            match state {
                LexState::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        split.comment.extend(&chars[i..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(1);
                        split.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        split.code.push('"');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !is_ident(chars.get(i.wrapping_sub(1))) {
                        // Possible raw/byte string or byte char prefix.
                        let (consumed, new_state) = match_prefixed_literal(&chars[i..]);
                        if let Some(new_state) = new_state {
                            split.code.push('"');
                            state = new_state;
                            i += consumed;
                        } else if consumed > 0 {
                            // b'x' byte-char literal, fully consumed.
                            split.code.push('\'');
                            i += consumed;
                        } else {
                            split.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        i += consume_char_or_lifetime(&chars[i..], &mut split.code);
                    } else {
                        split.code.push(c);
                        i += 1;
                    }
                }
                LexState::BlockComment(depth) => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        split.comment.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    let c = chars[i];
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        split.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"'
                        && chars[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        split.code.push('"');
                        state = LexState::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(split);
    }
    out
}

fn is_ident(c: Option<&char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Matches `r"`, `r#"`, `br"`, `b"`, `b'` … at the start of `rest`.
/// Returns (chars consumed, new lexer state).  `(0, None)` means "not a
/// literal prefix" and `(n, None)` means "self-contained literal of n
/// chars" (a byte char).
fn match_prefixed_literal(rest: &[char]) -> (usize, Option<LexState>) {
    let mut i = 0;
    if rest[0] == 'b' {
        match rest.get(1) {
            Some('"') => return (2, Some(LexState::Str)),
            Some('\'') => {
                // b'x' or b'\n': consume through the closing quote.
                let mut j = 2;
                if rest.get(j) == Some(&'\\') {
                    j += 1;
                }
                while j < rest.len() && rest[j] != '\'' {
                    j += 1;
                }
                return (j + 1, None);
            }
            Some('r') => i = 2,
            _ => return (0, None),
        }
    }
    // At `r`: raw string with optional hashes.
    if rest.get(i) != Some(&'r') {
        return (0, None);
    }
    let mut hashes = 0usize;
    let mut j = i + 1;
    while rest.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&'"') {
        (j + 1, Some(LexState::RawStr(hashes)))
    } else {
        (0, None)
    }
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
/// Returns the number of chars consumed; pushes a placeholder for char
/// literals and the raw quote for lifetimes.
fn consume_char_or_lifetime(rest: &[char], code: &mut String) -> usize {
    if rest.get(1) == Some(&'\\') {
        // Escaped char literal: consume through the closing quote.
        let mut j = 2;
        while j < rest.len() && rest[j] != '\'' {
            j += 1;
        }
        code.push('\'');
        j + 1
    } else if rest.len() >= 3 && rest[2] == '\'' {
        code.push('\'');
        3
    } else {
        // A lifetime (or a stray quote): keep scanning normally.
        code.push('\'');
        1
    }
}

/// Attribute prefixes that open a test-only region.
const TEST_ATTRS: [&str; 4] = ["#[cfg(test)", "#[cfg(all(test", "#[cfg(any(test", "#[test]"];

/// Scans one file's source, returning its violations.  `rel_path` is
/// the workspace-relative forward-slash path (drives per-path rule
/// exemptions).
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lines = split_source(source);
    let mut violations = Vec::new();

    // Directive map: allows[line] = rules allowed on that line.
    let mut allows: Vec<Vec<Rule>> = vec![Vec::new(); lines.len()];
    for (idx, split) in lines.iter().enumerate() {
        for (rule_ids, bad) in parse_directives(&split.comment) {
            for id in rule_ids {
                match Rule::from_id(&id) {
                    Some(rule) => allows[idx].push(rule),
                    None => violations.push(Violation {
                        file: rel_path.to_string(),
                        line: idx + 1,
                        rule: Rule::Directive,
                        message: format!(
                            "unknown rule `{id}` in crac-lint allow directive (known: {})",
                            Rule::ALL.map(Rule::id).join(", ")
                        ),
                    }),
                }
            }
            if bad {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::Directive,
                    message: "malformed crac-lint directive (expected `crac-lint: allow(rule, …)`)"
                        .to_string(),
                });
            }
        }
    }
    let allowed = |idx: usize, rule: Rule| -> bool {
        allows[idx].contains(&rule) || (idx > 0 && allows[idx - 1].contains(&rule))
    };

    // Test-region tracking over code text.
    let mut depth: i64 = 0;
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut pending_attr = false;
    let mut whole_file_test = false;

    for (idx, split) in lines.iter().enumerate() {
        let code = split.code.as_str();
        let trimmed = code.trim();
        if trimmed.starts_with("#![cfg(test)") {
            whole_file_test = true;
        }
        if !in_test && TEST_ATTRS.iter().any(|a| trimmed.contains(a)) {
            pending_attr = true;
        }
        let exempt = whole_file_test || in_test || pending_attr;

        // Update region state from this line's braces.
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_attr && !in_test {
                        in_test = true;
                        test_depth = depth;
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if in_test && depth <= test_depth {
                        in_test = false;
                    }
                }
                ';' if pending_attr && !in_test => pending_attr = false,
                _ => {}
            }
        }

        if exempt {
            continue;
        }
        for rule in Rule::ALL {
            if rule.path_exempt(rel_path) || allowed(idx, rule) {
                continue;
            }
            if let Some(message) = check_rule(rule, code) {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        }
    }
    violations
}

/// Finds allow directives in a line's comment text.
/// Returns (rule ids, malformed flag) per directive.
fn parse_directives(comment: &str) -> Vec<(Vec<String>, bool)> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("crac-lint:") {
        rest = &rest[pos + "crac-lint:".len()..];
        let body = rest.trim_start();
        if let Some(args) = body.strip_prefix("allow(") {
            match args.find(')') {
                Some(end) => {
                    let ids = args[..end]
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    out.push((ids, false));
                }
                None => out.push((Vec::new(), true)),
            }
        } else {
            out.push((Vec::new(), true));
        }
    }
    out
}

/// Is the byte before `pos` (if any) part of an identifier?
fn preceded_by_ident(code: &str, pos: usize) -> bool {
    code[..pos]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `code` contain `needle` as a standalone token (not preceded or
/// followed by identifier characters)?
fn contains_word(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = !preceded_by_ident(code, start);
        let post_ok = !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

const STD_LOCK_TYPES: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

fn check_rule(rule: Rule, code: &str) -> Option<String> {
    match rule {
        Rule::RawLock => {
            if contains_word(code, "parking_lot") {
                return Some(
                    "raw `parking_lot` lock outside crac-sync — use the named, instrumented \
                     `crac_sync` wrappers"
                        .to_string(),
                );
            }
            if code.contains("std::sync::") {
                for ty in STD_LOCK_TYPES {
                    if contains_word(code, ty) {
                        return Some(format!(
                            "raw `std::sync::{ty}` outside crac-sync — use the named, \
                             instrumented `crac_sync` wrappers"
                        ));
                    }
                }
            }
            None
        }
        Rule::NoUnwrap => {
            if code.contains(".unwrap()") {
                Some(
                    ".unwrap() in non-test library code — classify the error or justify with an \
                     allow directive"
                        .to_string(),
                )
            } else if code.contains(".expect(") {
                Some(
                    ".expect(…) in non-test library code — classify the error or justify with an \
                     allow directive"
                        .to_string(),
                )
            } else if let Some(pos) = code.find("panic!(") {
                (!preceded_by_ident(code, pos)).then(|| {
                    "panic!(…) in non-test library code — classify the error or justify with an \
                     allow directive"
                        .to_string()
                })
            } else {
                None
            }
        }
        Rule::RawSpawn => code.contains("thread::spawn").then(|| {
            "thread::spawn outside approved scoped-spawn seams — prefer std::thread::scope or a \
             justified allow directive"
                .to_string()
        }),
        Rule::RawInstant => code.contains("Instant::now()").then(|| {
            "Instant::now() timing outside crac-obs/crac-sync — record through an obs Span or \
             justify with an allow directive"
                .to_string()
        }),
        Rule::Directive => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src)
            .into_iter()
            .map(|v| v.rule.id())
            .collect()
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    // ---- raw-lock -------------------------------------------------------

    #[test]
    fn raw_lock_flags_parking_lot_and_std_locks() {
        assert_eq!(rules_hit(LIB, "use parking_lot::Mutex;\n"), ["raw-lock"]);
        assert_eq!(
            rules_hit(LIB, "use std::sync::{Arc, Mutex};\n"),
            ["raw-lock"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(x: &std::sync::RwLock<u8>) {}\n"),
            ["raw-lock"]
        );
        assert_eq!(
            rules_hit(LIB, "static C: std::sync::Condvar = …;\n"),
            ["raw-lock"]
        );
    }

    #[test]
    fn raw_lock_ignores_atomics_channels_and_crac_sync() {
        assert!(rules_hit(LIB, "use std::sync::atomic::AtomicU64;\n").is_empty());
        assert!(rules_hit(LIB, "use std::sync::{mpsc, Arc};\n").is_empty());
        assert!(rules_hit(LIB, "use crac_sync::{Condvar, Mutex, RwLock};\n").is_empty());
    }

    #[test]
    fn raw_lock_exempts_the_sync_crate_itself() {
        assert!(rules_hit("crates/sync/src/lib.rs", "use parking_lot::Mutex;\n").is_empty());
    }

    #[test]
    fn raw_lock_allow_escape_works() {
        let src = "use std::sync::Mutex; // crac-lint: allow(raw-lock) — detector internals\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // ---- no-unwrap ------------------------------------------------------

    #[test]
    fn no_unwrap_flags_unwrap_expect_panic() {
        assert_eq!(rules_hit(LIB, "let x = y.unwrap();\n"), ["no-unwrap"]);
        assert_eq!(
            rules_hit(LIB, "let x = y.expect(\"reason\");\n"),
            ["no-unwrap"]
        );
        assert_eq!(rules_hit(LIB, "panic!(\"boom\");\n"), ["no-unwrap"]);
    }

    #[test]
    fn no_unwrap_ignores_lookalikes() {
        assert!(rules_hit(LIB, "let x = y.unwrap_or(0);\n").is_empty());
        assert!(rules_hit(LIB, "let x = y.unwrap_or_else(|| 0);\n").is_empty());
        assert!(rules_hit(LIB, "let x = r.expect_err(\"must fail\");\n").is_empty());
        assert!(rules_hit(LIB, "let s = \"docs say .unwrap() is fine here\";\n").is_empty());
        assert!(rules_hit(LIB, "// a comment about .unwrap() and panic!(…)\n").is_empty());
    }

    #[test]
    fn no_unwrap_exempts_test_modules_and_test_fns() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
        panic!(\"in tests this is fine\");
    }
}
";
        assert!(rules_hit(LIB, src).is_empty());
        let after = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn lib_code() { y.unwrap(); }
";
        assert_eq!(rules_hit(LIB, after), ["no-unwrap"]);
    }

    #[test]
    fn no_unwrap_allow_on_preceding_comment_line() {
        let src = "\
// crac-lint: allow(no-unwrap) — invariant: map key inserted above
let v = map.get(&k).unwrap();
";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // ---- raw-spawn ------------------------------------------------------

    #[test]
    fn raw_spawn_flags_bare_spawns_but_not_scoped() {
        assert_eq!(
            rules_hit(LIB, "std::thread::spawn(move || {});\n"),
            ["raw-spawn"]
        );
        assert_eq!(rules_hit(LIB, "thread::spawn(worker);\n"), ["raw-spawn"]);
        assert!(rules_hit(LIB, "std::thread::scope(|s| { s.spawn(|| {}); });\n").is_empty());
    }

    #[test]
    fn raw_spawn_allow_escape_works() {
        let src = "std::thread::spawn(run); // crac-lint: allow(raw-spawn) — joined at finish()\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // ---- raw-instant ----------------------------------------------------

    #[test]
    fn raw_instant_flags_adhoc_timing_outside_obs() {
        assert_eq!(
            rules_hit(LIB, "let t0 = Instant::now();\n"),
            ["raw-instant"]
        );
        assert!(rules_hit("crates/obs/src/span.rs", "let t0 = Instant::now();\n").is_empty());
        assert!(rules_hit("crates/sync/src/lib.rs", "let t0 = Instant::now();\n").is_empty());
    }

    // ---- directives -----------------------------------------------------

    #[test]
    fn unknown_allow_rule_is_itself_a_violation() {
        let src = "x.unwrap(); // crac-lint: allow(no-unwarp)\n";
        let v = scan_source(LIB, src);
        assert!(v.iter().any(|v| v.rule == Rule::Directive));
        assert!(
            v.iter().any(|v| v.rule == Rule::NoUnwrap),
            "typo must not suppress"
        );
    }

    #[test]
    fn malformed_directive_is_reported() {
        let src = "// crac-lint: allow(no-unwrap\n";
        let v = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Directive);
    }

    #[test]
    fn one_directive_can_allow_multiple_rules() {
        let src = "// crac-lint: allow(raw-spawn, raw-instant)\nthread::spawn(f); let t = Instant::now();\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // ---- lexer ----------------------------------------------------------

    #[test]
    fn lexer_handles_raw_strings_and_block_comments() {
        let src = "\
let corpus = r#\"x.unwrap() parking_lot::Mutex\"#;
/* block comment with panic!(…)
   spanning lines with thread::spawn */
let lifetime: &'static str = \"ok\";
let ch = 'x';
let esc = '\\n';
";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn lexer_still_sees_code_after_a_string() {
        let src = "let x = format!(\"{}\", v).parse::<u8>().unwrap();\n";
        assert_eq!(rules_hit(LIB, src), ["no-unwrap"]);
    }

    #[test]
    fn violation_reports_file_and_line() {
        let src = "fn ok() {}\nlet x = y.unwrap();\n";
        let v = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].file, LIB);
        assert!(v[0].to_string().contains("lib.rs:2: [no-unwrap]"));
    }
}
