//! Kernel descriptions and the execution context handed to kernel bodies.

use std::fmt;
use std::sync::Arc;

use crac_addrspace::{Addr, MemError, SharedSpace};

use crate::stream::StreamId;

/// Grid/block dimensions of a launch, flattened to totals — the model does
/// not simulate individual thread blocks, only aggregate work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchDims {
    /// Total number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
}

impl LaunchDims {
    /// A 1-D launch with the given block and thread counts.
    pub fn linear(grid_blocks: u32, block_threads: u32) -> Self {
        Self {
            grid_blocks,
            block_threads,
        }
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Cost model of one kernel execution, used by the device's timing model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCost {
    /// Floating-point (or equivalent) operations performed.
    pub flops: u64,
    /// Bytes read from or written to device memory.
    pub bytes: u64,
}

impl KernelCost {
    /// A cost dominated by compute.
    pub fn compute(flops: u64) -> Self {
        Self { flops, bytes: 0 }
    }

    /// A cost with both compute and memory components.
    pub fn new(flops: u64, bytes: u64) -> Self {
        Self { flops, bytes }
    }
}

/// The functional body of a kernel.
///
/// Real CUDA kernels are device code embedded in a fat binary; here the body
/// is a Rust closure that receives a [`KernelCtx`] through which it reads and
/// writes simulated memory.  Bodies must be `Send + Sync` so that workloads
/// may launch from multiple host threads.
pub type KernelBody = Arc<dyn Fn(&KernelCtx) -> Result<(), MemError> + Send + Sync>;

/// Static description of a kernel launch (everything except the stream).
#[derive(Clone)]
pub struct KernelDesc {
    /// Kernel name as it would appear in an `nvprof` trace.
    pub name: String,
    /// Launch dimensions.
    pub dims: LaunchDims,
    /// Cost model input for the timing model.
    pub cost: KernelCost,
    /// Pointer and scalar arguments, passed by value exactly as CUDA passes
    /// a kernel's argument buffer.
    pub args: Vec<u64>,
    /// Functional body; `None` models a kernel whose side effects are not
    /// needed by the experiment (timing-only launch).
    pub body: Option<KernelBody>,
}

impl fmt::Debug for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelDesc")
            .field("name", &self.name)
            .field("dims", &self.dims)
            .field("cost", &self.cost)
            .field("args", &self.args)
            .field("has_body", &self.body.is_some())
            .finish()
    }
}

impl KernelDesc {
    /// Creates a timing-only kernel (no functional body).
    pub fn timing_only(name: &str, dims: LaunchDims, cost: KernelCost) -> Self {
        Self {
            name: name.to_string(),
            dims,
            cost,
            args: Vec::new(),
            body: None,
        }
    }

    /// Creates a kernel with a functional body.
    pub fn with_body<F>(
        name: &str,
        dims: LaunchDims,
        cost: KernelCost,
        args: Vec<u64>,
        body: F,
    ) -> Self
    where
        F: Fn(&KernelCtx) -> Result<(), MemError> + Send + Sync + 'static,
    {
        Self {
            name: name.to_string(),
            dims,
            cost,
            args,
            body: Some(Arc::new(body)),
        }
    }
}

/// Execution context available to a kernel body: its launch parameters plus
/// access to the simulated memory it may touch.
pub struct KernelCtx {
    /// Launch dimensions.
    pub dims: LaunchDims,
    /// Argument buffer (device pointers and scalars).
    pub args: Vec<u64>,
    /// Stream the kernel was launched on.
    pub stream: StreamId,
    /// Access to the single (unified) address space.
    pub space: SharedSpace,
}

impl KernelCtx {
    /// Interprets argument `i` as a pointer.
    pub fn arg_ptr(&self, i: usize) -> Addr {
        Addr(self.args[i])
    }

    /// Interprets argument `i` as a scalar.
    pub fn arg_u64(&self, i: usize) -> u64 {
        self.args[i]
    }

    /// Reads `n` f32 values starting at the pointer in argument `i`.
    pub fn read_f32_arg(&self, i: usize, n: usize) -> Result<Vec<f32>, MemError> {
        let mut out = vec![0f32; n];
        self.space.read_f32(self.arg_ptr(i), &mut out)?;
        Ok(out)
    }

    /// Writes f32 values starting at the pointer in argument `i`.
    pub fn write_f32_arg(&self, i: usize, data: &[f32]) -> Result<(), MemError> {
        self.space.write_f32(self.arg_ptr(i), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crac_addrspace::{Half, MapRequest, PAGE_SIZE};

    #[test]
    fn launch_dims_total_threads() {
        let d = LaunchDims::linear(128, 256);
        assert_eq!(d.total_threads(), 128 * 256);
    }

    #[test]
    fn kernel_ctx_argument_accessors() {
        let space = SharedSpace::new_no_aslr();
        let buf = space
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "arg"))
            .unwrap();
        space.write_f32(buf, &[1.0, 2.0, 3.0]).unwrap();
        let ctx = KernelCtx {
            dims: LaunchDims::linear(1, 32),
            args: vec![buf.as_u64(), 3],
            stream: StreamId::DEFAULT,
            space: space.clone(),
        };
        assert_eq!(ctx.arg_ptr(0), buf);
        assert_eq!(ctx.arg_u64(1), 3);
        assert_eq!(ctx.read_f32_arg(0, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        ctx.write_f32_arg(0, &[9.0]).unwrap();
        assert_eq!(ctx.read_f32_arg(0, 1).unwrap(), vec![9.0]);
    }

    #[test]
    fn kernel_desc_debug_does_not_require_body_debug() {
        let d = KernelDesc::with_body(
            "axpy",
            LaunchDims::linear(1, 1),
            KernelCost::compute(10),
            vec![],
            |_ctx| Ok(()),
        );
        let s = format!("{d:?}");
        assert!(s.contains("axpy"));
        assert!(s.contains("has_body: true"));
    }
}
