//! CUDA events: markers recorded into streams, used for timing and
//! cross-stream synchronisation.

use crate::clock::Ns;

/// Identifier of an event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// State of one event.
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    /// Virtual time at which the stream's preceding work completes; `None`
    /// until the event has been recorded.
    pub completes_at: Option<Ns>,
}

impl Event {
    /// Returns `true` if the event has been recorded and its stream position
    /// has been reached by `now`.
    pub fn is_complete(&self, now: Ns) -> bool {
        matches!(self.completes_at, Some(t) if t <= now)
    }

    /// Elapsed time in milliseconds between two recorded events, mirroring
    /// `cudaEventElapsedTime`.  Returns `None` if either event has not been
    /// recorded.
    pub fn elapsed_ms(start: &Event, end: &Event) -> Option<f64> {
        match (start.completes_at, end.completes_at) {
            (Some(s), Some(e)) => Some((e.saturating_sub(s)) as f64 / 1.0e6),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrecorded_event_is_incomplete() {
        let e = Event::default();
        assert!(!e.is_complete(u64::MAX));
        assert!(Event::elapsed_ms(&e, &e).is_none());
    }

    #[test]
    fn completion_depends_on_now() {
        let e = Event {
            completes_at: Some(100),
        };
        assert!(!e.is_complete(99));
        assert!(e.is_complete(100));
    }

    #[test]
    fn elapsed_converts_to_milliseconds() {
        let a = Event {
            completes_at: Some(1_000_000),
        };
        let b = Event {
            completes_at: Some(3_500_000),
        };
        assert_eq!(Event::elapsed_ms(&a, &b), Some(2.5));
        // Saturates rather than going negative when events are reversed.
        assert_eq!(Event::elapsed_ms(&b, &a), Some(0.0));
    }
}
