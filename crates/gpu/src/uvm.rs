//! Unified Virtual Memory: managed ranges with on-demand page migration.
//!
//! CUDA 6.0's UVM lets both host and device dereference the same pointer;
//! hardware page faults migrate pages to whichever side touched them last.
//! The paper's key point is that this state lives partly inside the CUDA
//! library and the kernel driver and therefore *cannot be checkpointed* —
//! CRAC instead drains managed buffers to the upper half and recreates the
//! managed allocations on restart.
//!
//! This module models exactly the part of UVM that matters for that story:
//! which pages of a managed range are resident where, how many faults and
//! migrated bytes a host or device access causes, and the prefetch calls that
//! bypass faulting.

use std::collections::BTreeMap;

use crac_addrspace::Addr;

/// Where a managed page currently resides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Page is resident in host memory.
    Host,
    /// Page is resident in device memory.
    Device,
}

/// Fault and migration counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UvmStats {
    /// Faults taken by the host touching device-resident pages.
    pub host_faults: u64,
    /// Faults taken by the device touching host-resident pages.
    pub device_faults: u64,
    /// Bytes migrated host→device.
    pub bytes_h2d: u64,
    /// Bytes migrated device→host.
    pub bytes_d2h: u64,
    /// Pages moved by explicit prefetches (either direction).
    pub prefetched_pages: u64,
}

/// Result of servicing an access: how many faults were taken and how many
/// bytes were migrated, so the device can charge virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Number of fault events (one per page batch in this model).
    pub faults: u64,
    /// Bytes migrated to satisfy the access.
    pub bytes_migrated: u64,
}

#[derive(Clone, Debug)]
struct ManagedRange {
    len: u64,
    page_bytes: u64,
    /// Residency per page index within the range.  Pages start on the host,
    /// matching first-touch-after-`cudaMallocManaged` behaviour on Pascal+.
    pages: Vec<PageLocation>,
}

impl ManagedRange {
    fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Book-keeper for all managed (UVM) ranges on one device.
#[derive(Debug, Default)]
pub struct UvmManager {
    ranges: BTreeMap<Addr, ManagedRange>,
    stats: UvmStats,
}

impl UvmManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a managed range created by `cudaMallocManaged`.
    pub fn register(&mut self, addr: Addr, len: u64, page_bytes: u64) {
        let page_bytes = page_bytes.max(1);
        let pages = len.div_ceil(page_bytes) as usize;
        self.ranges.insert(
            addr,
            ManagedRange {
                len,
                page_bytes,
                pages: vec![PageLocation::Host; pages],
            },
        );
    }

    /// Unregisters a managed range (on `cudaFree` of a managed pointer).
    /// Returns `true` if the range existed.
    pub fn unregister(&mut self, addr: Addr) -> bool {
        self.ranges.remove(&addr).is_some()
    }

    /// Returns the `(start, len)` of the managed range containing `addr`.
    pub fn range_containing(&self, addr: Addr) -> Option<(Addr, u64)> {
        self.ranges
            .range(..=addr)
            .next_back()
            .filter(|(start, r)| addr < **start + r.len)
            .map(|(start, r)| (*start, r.len))
    }

    /// Returns `true` if `addr` lies inside any managed range.
    pub fn is_managed(&self, addr: Addr) -> bool {
        self.range_containing(addr).is_some()
    }

    /// All managed ranges as `(start, len)` pairs, in address order.
    pub fn ranges(&self) -> Vec<(Addr, u64)> {
        self.ranges.iter().map(|(a, r)| (*a, r.len)).collect()
    }

    /// Total managed bytes currently registered.
    pub fn managed_bytes(&self) -> u64 {
        self.ranges.values().map(|r| r.len).sum()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> UvmStats {
        self.stats
    }

    /// Services a host access to `[addr, addr+len)`: any device-resident page
    /// in the range faults and migrates back to the host.
    pub fn touch_host(&mut self, addr: Addr, len: u64) -> AccessOutcome {
        self.touch(addr, len, PageLocation::Host)
    }

    /// Services a device access (kernel touching a managed buffer): any
    /// host-resident page migrates to the device.
    pub fn touch_device(&mut self, addr: Addr, len: u64) -> AccessOutcome {
        self.touch(addr, len, PageLocation::Device)
    }

    fn touch(&mut self, addr: Addr, len: u64, want: PageLocation) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        let (start, range) = match self
            .ranges
            .range_mut(..=addr)
            .next_back()
            .filter(|(s, r)| addr < **s + r.len)
        {
            Some((s, r)) => (*s, r),
            None => return outcome,
        };
        let end = (addr + len).min(start + range.len);
        if end <= addr {
            return outcome;
        }
        let first_page = ((addr - start) / range.page_bytes) as usize;
        let last_page = (((end - start) - 1) / range.page_bytes) as usize;
        let mut migrated_pages = 0u64;
        for p in first_page..=last_page.min(range.page_count() - 1) {
            if range.pages[p] != want {
                range.pages[p] = want;
                migrated_pages += 1;
            }
        }
        if migrated_pages > 0 {
            // One fault event per contiguous access (the driver batches), and
            // byte-accurate migration volume.
            outcome.faults = 1;
            outcome.bytes_migrated = migrated_pages * range.page_bytes;
            match want {
                PageLocation::Host => {
                    self.stats.host_faults += 1;
                    self.stats.bytes_d2h += outcome.bytes_migrated;
                }
                PageLocation::Device => {
                    self.stats.device_faults += 1;
                    self.stats.bytes_h2d += outcome.bytes_migrated;
                }
            }
        }
        outcome
    }

    /// Explicitly migrates `[addr, addr+len)` to the requested side without
    /// counting faults (`cudaMemPrefetchAsync`).  Returns the bytes moved.
    pub fn prefetch(&mut self, addr: Addr, len: u64, to: PageLocation) -> u64 {
        let (start, range) = match self
            .ranges
            .range_mut(..=addr)
            .next_back()
            .filter(|(s, r)| addr < **s + r.len)
        {
            Some((s, r)) => (*s, r),
            None => return 0,
        };
        let end = (addr + len).min(start + range.len);
        if end <= addr {
            return 0;
        }
        let first_page = ((addr - start) / range.page_bytes) as usize;
        let last_page = (((end - start) - 1) / range.page_bytes) as usize;
        let mut moved = 0u64;
        for p in first_page..=last_page.min(range.page_count() - 1) {
            if range.pages[p] != to {
                range.pages[p] = to;
                moved += range.page_bytes;
                self.stats.prefetched_pages += 1;
            }
        }
        match to {
            PageLocation::Host => self.stats.bytes_d2h += moved,
            PageLocation::Device => self.stats.bytes_h2d += moved,
        }
        moved
    }

    /// Residency of the page containing `addr`, if it is managed.
    pub fn location_of(&self, addr: Addr) -> Option<PageLocation> {
        let (start, range) = self
            .ranges
            .range(..=addr)
            .next_back()
            .filter(|(s, r)| addr < **s + r.len)?;
        let page = ((addr - *start) / range.page_bytes) as usize;
        range.pages.get(page).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    fn mgr_with_range(len: u64) -> (UvmManager, Addr) {
        let mut m = UvmManager::new();
        let base = Addr(0x10_0000);
        m.register(base, len, PAGE);
        (m, base)
    }

    #[test]
    fn pages_start_on_host() {
        let (m, base) = mgr_with_range(4 * PAGE);
        assert_eq!(m.location_of(base), Some(PageLocation::Host));
        assert_eq!(m.location_of(base + 3 * PAGE), Some(PageLocation::Host));
        assert_eq!(m.location_of(base + 4 * PAGE), None);
    }

    #[test]
    fn device_touch_migrates_and_counts_one_fault() {
        let (mut m, base) = mgr_with_range(4 * PAGE);
        let out = m.touch_device(base, 2 * PAGE);
        assert_eq!(out.faults, 1);
        assert_eq!(out.bytes_migrated, 2 * PAGE);
        assert_eq!(m.location_of(base), Some(PageLocation::Device));
        assert_eq!(m.location_of(base + 2 * PAGE), Some(PageLocation::Host));
        // Touching again causes no further migration.
        let again = m.touch_device(base, 2 * PAGE);
        assert_eq!(again, AccessOutcome::default());
        assert_eq!(m.stats().device_faults, 1);
        assert_eq!(m.stats().bytes_h2d, 2 * PAGE);
    }

    #[test]
    fn ping_pong_between_host_and_device() {
        let (mut m, base) = mgr_with_range(PAGE);
        for _ in 0..3 {
            m.touch_device(base, PAGE);
            m.touch_host(base, PAGE);
        }
        let s = m.stats();
        assert_eq!(s.device_faults, 3);
        assert_eq!(s.host_faults, 3);
        assert_eq!(s.bytes_h2d, 3 * PAGE);
        assert_eq!(s.bytes_d2h, 3 * PAGE);
    }

    #[test]
    fn prefetch_moves_pages_without_faults() {
        let (mut m, base) = mgr_with_range(8 * PAGE);
        let moved = m.prefetch(base, 8 * PAGE, PageLocation::Device);
        assert_eq!(moved, 8 * PAGE);
        assert_eq!(m.stats().device_faults, 0);
        assert_eq!(m.stats().prefetched_pages, 8);
        // Subsequent device touch is now free.
        assert_eq!(m.touch_device(base, 8 * PAGE), AccessOutcome::default());
    }

    #[test]
    fn touch_outside_managed_ranges_is_a_no_op() {
        let (mut m, base) = mgr_with_range(PAGE);
        let out = m.touch_device(base + 100 * PAGE, PAGE);
        assert_eq!(out, AccessOutcome::default());
        assert!(!m.is_managed(base + 100 * PAGE));
    }

    #[test]
    fn unregister_removes_range() {
        let (mut m, base) = mgr_with_range(PAGE);
        assert!(m.unregister(base));
        assert!(!m.unregister(base));
        assert_eq!(m.managed_bytes(), 0);
        assert!(m.ranges().is_empty());
    }

    #[test]
    fn partial_range_touch_clamps_to_range_end() {
        let (mut m, base) = mgr_with_range(2 * PAGE);
        // Ask for far more than the range holds; only the range migrates.
        let out = m.touch_device(base + PAGE, 100 * PAGE);
        assert_eq!(out.bytes_migrated, PAGE);
    }
}
