//! A discrete-event NVIDIA-GPU device model.
//!
//! The CRAC paper evaluates checkpoint-restart on real Tesla V100 and Quadro
//! K600 GPUs.  Those are not available to this reproduction, so this crate
//! provides the closest synthetic equivalent that exercises the same code
//! paths:
//!
//! * a [`DeviceProfile`] capturing the performance envelope of a GPU
//!   (compute throughput, memory and PCIe bandwidth, kernel-launch overhead,
//!   the maximum number of concurrent kernels — 128 on V100, the figure the
//!   paper's stream experiments push against);
//! * a [`GpuDevice`] that accepts kernel launches, async memory copies and
//!   events on [`streams`](stream), executes them *functionally* (the data
//!   really moves, kernels really compute, so checkpoint/restart correctness
//!   is checkable) and *temporally* (a virtual clock advances according to a
//!   resource model with per-stream FIFO ordering, separate H2D/D2H copy
//!   engines and a concurrent-kernel limit — so speedups from streams and
//!   overheads from interposition show up with the right shape);
//! * a [`UvmManager`](uvm) implementing Unified Virtual Memory: managed
//!   ranges whose pages migrate on demand between host and device, with
//!   fault counting and migration costs;
//! * [`GpuMetrics`](metrics) counters that the benchmark harness reads to
//!   report CUDA-calls-per-second, bytes moved and fault counts.
//!
//! Everything is deterministic: the virtual clock and the scheduling model
//! contain no wall-clock or RNG inputs, so two identical runs produce
//! identical timings — a property several CRAC invariants (and tests) rely
//! on.

pub mod clock;
pub mod device;
pub mod event;
pub mod kernel;
pub mod metrics;
pub mod profile;
pub mod stream;
pub mod uvm;

pub use clock::{ns_to_ms, ns_to_s, Ns, VirtualClock};
pub use device::{GpuDevice, GpuError};
pub use event::{Event, EventId};
pub use kernel::{KernelCost, KernelCtx, KernelDesc, LaunchDims};
pub use metrics::GpuMetrics;
pub use profile::DeviceProfile;
pub use stream::StreamId;
pub use uvm::{PageLocation, UvmManager, UvmStats};
