//! Counters mirroring what `nvprof` reports for a run.
//!
//! The paper computes CUDA-calls-per-second (CPS) from `nvprof` counts; the
//! benchmark harness computes the same quantity from these counters and the
//! virtual clock.

/// Aggregate activity counters for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GpuMetrics {
    /// Kernels launched (`cudaLaunchKernel` count).
    pub kernels_launched: u64,
    /// Host→device copies and total bytes.
    pub h2d_copies: u64,
    /// Total bytes copied host→device.
    pub h2d_bytes: u64,
    /// Device→host copies.
    pub d2h_copies: u64,
    /// Total bytes copied device→host.
    pub d2h_bytes: u64,
    /// Device→device copies.
    pub d2d_copies: u64,
    /// Total bytes copied device→device.
    pub d2d_bytes: u64,
    /// Memsets executed.
    pub memsets: u64,
    /// Streams created over the run.
    pub streams_created: u64,
    /// Events recorded over the run.
    pub events_recorded: u64,
    /// Synchronisation calls (device or stream).
    pub synchronizations: u64,
}

impl GpuMetrics {
    /// Total bytes moved across PCIe in either direction.
    pub fn pcie_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total operation count (the device-side part of "total CUDA calls").
    pub fn total_ops(&self) -> u64 {
        self.kernels_launched
            + self.h2d_copies
            + self.d2h_copies
            + self.d2d_copies
            + self.memsets
            + self.streams_created
            + self.events_recorded
            + self.synchronizations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let m = GpuMetrics {
            kernels_launched: 3,
            h2d_copies: 2,
            h2d_bytes: 100,
            d2h_copies: 1,
            d2h_bytes: 50,
            ..Default::default()
        };
        assert_eq!(m.pcie_bytes(), 150);
        assert_eq!(m.total_ops(), 6);
    }
}
