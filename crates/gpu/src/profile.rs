//! Performance profiles of the GPUs used in the paper's evaluation.

/// Static description of a GPU's performance envelope.
///
/// Numbers are order-of-magnitude correct for the named parts; the
/// reproduction cares about ratios (streamed vs non-streamed, native vs CRAC
/// vs proxy) rather than absolute values.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"Tesla V100"`.
    pub name: String,
    /// Device global memory in bytes.
    pub memory_bytes: u64,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum number of kernels that may execute concurrently
    /// (128 for compute capability 7.0 — the limit the paper's stream
    /// experiments run up against).
    pub max_concurrent_kernels: u32,
    /// Single-precision throughput in FLOP per nanosecond.
    pub flops_per_ns: f64,
    /// Device-memory bandwidth in bytes per nanosecond.
    pub mem_bw_bytes_per_ns: f64,
    /// Host↔device (PCIe) bandwidth in bytes per nanosecond.
    pub pcie_bw_bytes_per_ns: f64,
    /// Fixed cost of launching one kernel, in nanoseconds.
    pub kernel_launch_overhead_ns: u64,
    /// Fixed cost of a CUDA runtime API call that does not launch work.
    pub api_call_overhead_ns: u64,
    /// Latency of servicing one UVM page-fault batch, in nanoseconds.
    pub uvm_fault_latency_ns: u64,
    /// Granularity of UVM migration, in bytes (64 KiB on Pascal+).
    pub uvm_page_bytes: u64,
}

impl DeviceProfile {
    /// NVIDIA Tesla V100 (SXM2 32 GB), the PSG-cluster GPU used for
    /// Figures 2–5 and Table 3.
    pub fn tesla_v100() -> Self {
        Self {
            name: "Tesla V100".to_string(),
            memory_bytes: 32 * (1 << 30),
            num_sms: 80,
            max_concurrent_kernels: 128,
            flops_per_ns: 14_000.0,     // 14 TFLOP/s single precision
            mem_bw_bytes_per_ns: 900.0, // 900 GB/s HBM2
            pcie_bw_bytes_per_ns: 12.0, // ~12 GB/s effective PCIe gen3 x16
            kernel_launch_overhead_ns: 5_000,
            api_call_overhead_ns: 1_000,
            uvm_fault_latency_ns: 30_000,
            uvm_page_bytes: 64 * 1024,
        }
    }

    /// NVIDIA Quadro K600 (1 GB), the local GPU used for the FSGSBASE
    /// experiment of Figure 6.  Roughly 40× slower than the V100, which is
    /// why the same Rodinia configurations run for ≥10 s there.
    pub fn quadro_k600() -> Self {
        Self {
            name: "Quadro K600".to_string(),
            memory_bytes: 1 << 30,
            num_sms: 1,
            max_concurrent_kernels: 16,
            flops_per_ns: 336.0,       // 0.336 TFLOP/s
            mem_bw_bytes_per_ns: 29.0, // 29 GB/s
            pcie_bw_bytes_per_ns: 6.0,
            kernel_launch_overhead_ns: 8_000,
            api_call_overhead_ns: 1_500,
            uvm_fault_latency_ns: 45_000,
            uvm_page_bytes: 64 * 1024,
        }
    }

    /// A deliberately tiny profile for fast unit tests: small memory, low
    /// bandwidth, large overheads so that timing effects are visible with
    /// little simulated work.
    pub fn test_profile() -> Self {
        Self {
            name: "TestGPU".to_string(),
            memory_bytes: 64 * (1 << 20),
            num_sms: 4,
            max_concurrent_kernels: 4,
            flops_per_ns: 1.0,
            mem_bw_bytes_per_ns: 16.0,
            pcie_bw_bytes_per_ns: 2.0,
            kernel_launch_overhead_ns: 1_000,
            api_call_overhead_ns: 100,
            uvm_fault_latency_ns: 10_000,
            uvm_page_bytes: 4 * 1024,
        }
    }

    /// Time to transfer `bytes` over PCIe, in nanoseconds (at least 1 ns for
    /// non-zero transfers so orderings stay strict).
    pub fn pcie_transfer_ns(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        ((bytes as f64 / self.pcie_bw_bytes_per_ns).ceil() as u64).max(1)
    }

    /// Execution time of a kernel with the given cost, in nanoseconds,
    /// excluding launch overhead: the maximum of its compute-bound and
    /// memory-bound estimates (a simple roofline).
    pub fn kernel_exec_ns(&self, flops: u64, bytes: u64) -> u64 {
        let compute = flops as f64 / self.flops_per_ns;
        let memory = bytes as f64 / self.mem_bw_bytes_per_ns;
        (compute.max(memory).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_is_much_faster_than_k600() {
        let v = DeviceProfile::tesla_v100();
        let k = DeviceProfile::quadro_k600();
        assert!(v.flops_per_ns / k.flops_per_ns > 20.0);
        assert!(v.mem_bw_bytes_per_ns / k.mem_bw_bytes_per_ns > 20.0);
        assert_eq!(v.max_concurrent_kernels, 128);
    }

    #[test]
    fn pcie_transfer_scales_linearly() {
        let p = DeviceProfile::tesla_v100();
        let one_mb = p.pcie_transfer_ns(1 << 20);
        let ten_mb = p.pcie_transfer_ns(10 << 20);
        let ratio = ten_mb as f64 / one_mb as f64;
        assert!((ratio - 10.0).abs() < 0.1, "ratio was {ratio}");
        assert_eq!(p.pcie_transfer_ns(0), 0);
    }

    #[test]
    fn kernel_time_follows_roofline() {
        let p = DeviceProfile::test_profile();
        // Compute-bound: 1000 flops, tiny memory traffic.
        assert_eq!(p.kernel_exec_ns(1000, 16), 1000);
        // Memory-bound: tiny flops, 16_000 bytes at 16 B/ns.
        assert_eq!(p.kernel_exec_ns(10, 16_000), 1000);
        // Never zero.
        assert_eq!(p.kernel_exec_ns(0, 0), 1);
    }
}
