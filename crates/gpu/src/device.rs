//! The GPU device: functional execution plus the discrete-event timing model.

use std::collections::BTreeMap;
use std::sync::Arc;

use crac_sync::Mutex;

use crac_addrspace::{Addr, MemError, SharedSpace};

use crate::clock::{Ns, VirtualClock};
use crate::event::{Event, EventId};
use crate::kernel::{KernelCtx, KernelDesc};
use crate::metrics::GpuMetrics;
use crate::profile::DeviceProfile;
use crate::stream::{Scheduler, StreamId};
use crate::uvm::{PageLocation, UvmManager, UvmStats};

/// Errors returned by device operations (the analogue of `cudaError_t` values
/// that originate on the device side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// An operation referenced a stream that does not exist.
    InvalidStream(StreamId),
    /// An operation referenced an event that does not exist.
    InvalidEvent(EventId),
    /// The device ran out of global memory.
    OutOfMemory { requested: u64, available: u64 },
    /// A functional memory access failed (bad pointer, protection, …).
    Mem(MemError),
    /// A kernel body returned an error.
    KernelFault(String),
    /// An argument was invalid (zero-length copy to null, etc.).
    InvalidValue(&'static str),
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::InvalidStream(s) => write!(f, "invalid stream {s:?}"),
            GpuError::InvalidEvent(e) => write!(f, "invalid event {e:?}"),
            GpuError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of device memory: requested {requested}, available {available}"
                )
            }
            GpuError::Mem(e) => write!(f, "memory error: {e}"),
            GpuError::KernelFault(k) => write!(f, "kernel fault in {k}"),
            GpuError::InvalidValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for GpuError {}

impl From<MemError> for GpuError {
    fn from(e: MemError) -> Self {
        GpuError::Mem(e)
    }
}

struct DeviceState {
    scheduler: Scheduler,
    events: BTreeMap<EventId, Event>,
    next_event: u64,
    uvm: UvmManager,
    metrics: GpuMetrics,
    mem_in_use: u64,
}

/// A simulated GPU.
///
/// All methods take `&self`; internal state is protected by a single mutex,
/// mirroring the serialisation the real CUDA driver imposes on API calls from
/// multiple host threads.  Functional data movement and kernel execution
/// happen eagerly (in enqueue order), while completion *times* are computed
/// by the [`Scheduler`] resource model so that streams overlap the way the
/// paper's experiments require.
pub struct GpuDevice {
    profile: DeviceProfile,
    clock: Arc<VirtualClock>,
    space: SharedSpace,
    state: Mutex<DeviceState>,
}

impl GpuDevice {
    /// Creates a device with a fresh clock.
    pub fn new(profile: DeviceProfile, space: SharedSpace) -> Arc<Self> {
        Self::with_clock(profile, space, VirtualClock::new_shared())
    }

    /// Creates a device that shares an existing clock — used at restart,
    /// when CRAC loads a *fresh* lower half (new device object) but virtual
    /// time keeps running.
    pub fn with_clock(
        profile: DeviceProfile,
        space: SharedSpace,
        clock: Arc<VirtualClock>,
    ) -> Arc<Self> {
        let max_ck = profile.max_concurrent_kernels as usize;
        Arc::new(Self {
            profile,
            clock,
            space,
            state: Mutex::new(
                "gpu.device.state",
                DeviceState {
                    scheduler: Scheduler::new(max_ck),
                    events: BTreeMap::new(),
                    next_event: 1,
                    uvm: UvmManager::new(),
                    metrics: GpuMetrics::default(),
                    mem_in_use: 0,
                },
            ),
        })
    }

    /// The device's performance profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The unified address space this device operates on.
    pub fn space(&self) -> &SharedSpace {
        &self.space
    }

    /// Cumulative activity counters.
    pub fn metrics(&self) -> GpuMetrics {
        self.state.lock().metrics
    }

    /// Cumulative UVM counters.
    pub fn uvm_stats(&self) -> UvmStats {
        self.state.lock().uvm.stats()
    }

    /// Peak number of concurrently scheduled kernels observed so far.
    pub fn peak_concurrent_kernels(&self) -> usize {
        self.state.lock().scheduler.peak_concurrent_kernels
    }

    // ---------------------------------------------------------------------
    // Device memory accounting (the arena allocator in `crac-cudart` calls
    // these so that `cudaMalloc` can fail with out-of-memory like real CUDA).
    // ---------------------------------------------------------------------

    /// Reserves `bytes` of device global memory.
    pub fn reserve_device_mem(&self, bytes: u64) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        let available = self.profile.memory_bytes - st.mem_in_use;
        if bytes > available {
            return Err(GpuError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        st.mem_in_use += bytes;
        Ok(())
    }

    /// Releases `bytes` of device global memory.
    pub fn release_device_mem(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.mem_in_use = st.mem_in_use.saturating_sub(bytes);
    }

    /// Device global memory currently reserved.
    pub fn device_mem_in_use(&self) -> u64 {
        self.state.lock().mem_in_use
    }

    // ---------------------------------------------------------------------
    // Streams and events
    // ---------------------------------------------------------------------

    /// Creates a stream (`cudaStreamCreate`).
    pub fn create_stream(&self) -> StreamId {
        let mut st = self.state.lock();
        st.metrics.streams_created += 1;
        st.scheduler.create_stream()
    }

    /// Destroys a stream (`cudaStreamDestroy`).
    pub fn destroy_stream(&self, id: StreamId) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        if st.scheduler.destroy_stream(id) {
            Ok(())
        } else {
            Err(GpuError::InvalidStream(id))
        }
    }

    /// Number of live user streams.
    pub fn live_streams(&self) -> usize {
        self.state.lock().scheduler.live_streams()
    }

    /// Ids of all live streams including the default stream.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.state.lock().scheduler.stream_ids()
    }

    /// Creates an event (`cudaEventCreate`).
    pub fn create_event(&self) -> EventId {
        let mut st = self.state.lock();
        let id = EventId(st.next_event);
        st.next_event += 1;
        st.events.insert(id, Event::default());
        id
    }

    /// Destroys an event.
    pub fn destroy_event(&self, id: EventId) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        st.events
            .remove(&id)
            .map(|_| ())
            .ok_or(GpuError::InvalidEvent(id))
    }

    /// Records `event` into `stream` (`cudaEventRecord`): the event completes
    /// when all work previously enqueued on the stream completes.
    pub fn record_event(&self, event: EventId, stream: StreamId) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        let at = st
            .scheduler
            .stream_ready_at(stream)
            .ok_or(GpuError::InvalidStream(stream))?
            .max(self.clock.now());
        let ev = st
            .events
            .get_mut(&event)
            .ok_or(GpuError::InvalidEvent(event))?;
        ev.completes_at = Some(at);
        st.metrics.events_recorded += 1;
        Ok(())
    }

    /// Returns `true` if the event has completed (`cudaEventQuery`).
    pub fn event_complete(&self, event: EventId) -> Result<bool, GpuError> {
        let st = self.state.lock();
        let ev = st.events.get(&event).ok_or(GpuError::InvalidEvent(event))?;
        Ok(ev.is_complete(self.clock.now()))
    }

    /// Blocks the host until the event completes (`cudaEventSynchronize`).
    pub fn event_synchronize(&self, event: EventId) -> Result<(), GpuError> {
        let at = {
            let st = self.state.lock();
            let ev = st.events.get(&event).ok_or(GpuError::InvalidEvent(event))?;
            ev.completes_at
        };
        if let Some(t) = at {
            self.clock.advance_to(t);
        }
        Ok(())
    }

    /// Elapsed milliseconds between two recorded events
    /// (`cudaEventElapsedTime`).
    pub fn event_elapsed_ms(&self, start: EventId, end: EventId) -> Result<f64, GpuError> {
        let st = self.state.lock();
        let s = st.events.get(&start).ok_or(GpuError::InvalidEvent(start))?;
        let e = st.events.get(&end).ok_or(GpuError::InvalidEvent(end))?;
        Event::elapsed_ms(s, e).ok_or(GpuError::InvalidValue("event not recorded"))
    }

    /// Makes `stream` wait for `event` (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventId) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        let at = st
            .events
            .get(&event)
            .ok_or(GpuError::InvalidEvent(event))?
            .completes_at
            .unwrap_or(0);
        if !st.scheduler.stream_exists(stream) {
            return Err(GpuError::InvalidStream(stream));
        }
        st.scheduler.stall_stream_until(stream, at);
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Kernel launch and memory operations
    // ---------------------------------------------------------------------

    /// Launches a kernel on `stream` (`cudaLaunchKernel`).
    ///
    /// The launch is asynchronous with respect to the host: the virtual clock
    /// advances only by the launch overhead; the kernel's completion time is
    /// tracked by the scheduler.  The functional body (if any) executes
    /// eagerly, in enqueue order.
    pub fn launch_kernel(&self, stream: StreamId, desc: &KernelDesc) -> Result<Ns, GpuError> {
        let issue_at = self.clock.now();
        let exec_ns = self
            .profile
            .kernel_exec_ns(desc.cost.flops, desc.cost.bytes);

        // UVM: a kernel dereferencing a managed pointer pulls the pages it
        // touches onto the device.  Argument pointers that fall inside a
        // managed range migrate that range.
        let mut uvm_delay = 0u64;
        {
            let mut st = self.state.lock();
            for &arg in &desc.args {
                let addr = Addr(arg);
                if let Some((start, len)) = st.uvm.range_containing(addr) {
                    let out = st.uvm.touch_device(start, len);
                    if out.faults > 0 {
                        uvm_delay += self.profile.uvm_fault_latency_ns
                            + self.profile.pcie_transfer_ns(out.bytes_migrated);
                    }
                }
            }
            let end = st
                .scheduler
                .schedule_kernel(
                    stream,
                    issue_at,
                    self.profile.kernel_launch_overhead_ns + uvm_delay,
                    exec_ns,
                )
                .ok_or(GpuError::InvalidStream(stream))?;
            st.metrics.kernels_launched += 1;
            // Host returns as soon as the launch is issued.
            self.clock.advance(self.profile.api_call_overhead_ns);
            // Functional execution happens below, outside the lock, so kernel
            // bodies may themselves take the space lock.
            drop(st);
            if let Some(body) = &desc.body {
                let ctx = KernelCtx {
                    dims: desc.dims,
                    args: desc.args.clone(),
                    stream,
                    space: self.space.clone(),
                };
                body(&ctx).map_err(|e| GpuError::KernelFault(format!("{}: {e}", desc.name)))?;
            }
            Ok(end)
        }
    }

    fn copy_bytes(&self, dst: Addr, src: Addr, bytes: u64) -> Result<(), GpuError> {
        // Chunked copy keeps peak temporary allocation bounded for large
        // transfers.
        const CHUNK: u64 = 1 << 20;
        let mut buf = vec![0u8; CHUNK.min(bytes) as usize];
        let mut done = 0u64;
        while done < bytes {
            let n = CHUNK.min(bytes - done) as usize;
            self.space.read_bytes(src + done, &mut buf[..n])?;
            self.space.write_bytes(dst + done, &buf[..n])?;
            done += n as u64;
        }
        Ok(())
    }

    /// Host→device copy.  With `stream = Some(s)` the copy is asynchronous
    /// (`cudaMemcpyAsync`); with `None` it is synchronous and the host blocks
    /// until completion.
    pub fn memcpy_h2d(
        &self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        stream: Option<StreamId>,
    ) -> Result<(), GpuError> {
        self.copy_bytes(dst, src, bytes)?;
        let xfer = self.profile.pcie_transfer_ns(bytes);
        let issue_at = self.clock.now();
        let mut st = self.state.lock();
        let target = stream.unwrap_or(StreamId::DEFAULT);
        let end = st
            .scheduler
            .schedule_h2d(target, issue_at, xfer)
            .ok_or(GpuError::InvalidStream(target))?;
        st.metrics.h2d_copies += 1;
        st.metrics.h2d_bytes += bytes;
        drop(st);
        self.clock.advance(self.profile.api_call_overhead_ns);
        if stream.is_none() {
            self.clock.advance_to(end);
        }
        Ok(())
    }

    /// Device→host copy (see [`GpuDevice::memcpy_h2d`] for stream semantics).
    pub fn memcpy_d2h(
        &self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        stream: Option<StreamId>,
    ) -> Result<(), GpuError> {
        self.copy_bytes(dst, src, bytes)?;
        let xfer = self.profile.pcie_transfer_ns(bytes);
        let issue_at = self.clock.now();
        let mut st = self.state.lock();
        let target = stream.unwrap_or(StreamId::DEFAULT);
        let end = st
            .scheduler
            .schedule_d2h(target, issue_at, xfer)
            .ok_or(GpuError::InvalidStream(target))?;
        st.metrics.d2h_copies += 1;
        st.metrics.d2h_bytes += bytes;
        drop(st);
        self.clock.advance(self.profile.api_call_overhead_ns);
        if stream.is_none() {
            self.clock.advance_to(end);
        }
        Ok(())
    }

    /// Device→device copy, which only occupies the stream (device-internal
    /// bandwidth, no PCIe).
    pub fn memcpy_d2d(
        &self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        stream: Option<StreamId>,
    ) -> Result<(), GpuError> {
        self.copy_bytes(dst, src, bytes)?;
        let dur = ((bytes as f64 / self.profile.mem_bw_bytes_per_ns).ceil() as u64).max(1);
        let issue_at = self.clock.now();
        let mut st = self.state.lock();
        let target = stream.unwrap_or(StreamId::DEFAULT);
        let end = st
            .scheduler
            .schedule_stream_only(target, issue_at, dur)
            .ok_or(GpuError::InvalidStream(target))?;
        st.metrics.d2d_copies += 1;
        st.metrics.d2d_bytes += bytes;
        drop(st);
        self.clock.advance(self.profile.api_call_overhead_ns);
        if stream.is_none() {
            self.clock.advance_to(end);
        }
        Ok(())
    }

    /// `cudaMemset` (optionally async on a stream).
    pub fn memset(
        &self,
        dst: Addr,
        byte: u8,
        bytes: u64,
        stream: Option<StreamId>,
    ) -> Result<(), GpuError> {
        self.space.fill(dst, bytes, byte)?;
        let dur = ((bytes as f64 / self.profile.mem_bw_bytes_per_ns).ceil() as u64).max(1);
        let issue_at = self.clock.now();
        let mut st = self.state.lock();
        let target = stream.unwrap_or(StreamId::DEFAULT);
        let end = st
            .scheduler
            .schedule_stream_only(target, issue_at, dur)
            .ok_or(GpuError::InvalidStream(target))?;
        st.metrics.memsets += 1;
        drop(st);
        self.clock.advance(self.profile.api_call_overhead_ns);
        if stream.is_none() {
            self.clock.advance_to(end);
        }
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Synchronisation
    // ---------------------------------------------------------------------

    /// Blocks the host until all work on `stream` has completed
    /// (`cudaStreamSynchronize`).
    pub fn stream_synchronize(&self, stream: StreamId) -> Result<(), GpuError> {
        let ready = {
            let mut st = self.state.lock();
            st.metrics.synchronizations += 1;
            st.scheduler
                .stream_ready_at(stream)
                .ok_or(GpuError::InvalidStream(stream))?
        };
        self.clock.advance_to(ready);
        Ok(())
    }

    /// Blocks the host until all work on the device has completed
    /// (`cudaDeviceSynchronize`).  This is the "drain the queue" step CRAC
    /// performs before every checkpoint.
    pub fn device_synchronize(&self) {
        let ready = {
            let mut st = self.state.lock();
            st.metrics.synchronizations += 1;
            st.scheduler.device_ready_at()
        };
        self.clock.advance_to(ready);
    }

    // ---------------------------------------------------------------------
    // UVM
    // ---------------------------------------------------------------------

    /// Registers a managed range with the UVM engine (`cudaMallocManaged`).
    pub fn uvm_register(&self, addr: Addr, len: u64) {
        let page = self.profile.uvm_page_bytes;
        self.state.lock().uvm.register(addr, len, page);
    }

    /// Unregisters a managed range (freeing a managed pointer).
    pub fn uvm_unregister(&self, addr: Addr) -> bool {
        self.state.lock().uvm.unregister(addr)
    }

    /// All managed ranges currently registered.
    pub fn uvm_ranges(&self) -> Vec<(Addr, u64)> {
        self.state.lock().uvm.ranges()
    }

    /// Returns `true` if `addr` is inside a managed range.
    pub fn uvm_is_managed(&self, addr: Addr) -> bool {
        self.state.lock().uvm.is_managed(addr)
    }

    /// Residency of the managed page containing `addr`.
    pub fn uvm_location_of(&self, addr: Addr) -> Option<PageLocation> {
        self.state.lock().uvm.location_of(addr)
    }

    /// Services a host access to managed memory: faults and migrations are
    /// charged to the virtual clock (this is the cost CRUM's shadow pages
    /// amplify and CRAC leaves untouched).
    pub fn uvm_host_access(&self, addr: Addr, len: u64) {
        let out = self.state.lock().uvm.touch_host(addr, len);
        if out.faults > 0 {
            self.clock.advance(
                self.profile.uvm_fault_latency_ns
                    + self.profile.pcie_transfer_ns(out.bytes_migrated),
            );
        }
    }

    /// `cudaMemPrefetchAsync`: migrates pages ahead of use on a stream.
    pub fn uvm_prefetch(
        &self,
        addr: Addr,
        len: u64,
        to_device: bool,
        stream: StreamId,
    ) -> Result<(), GpuError> {
        let issue_at = self.clock.now();
        let mut st = self.state.lock();
        let to = if to_device {
            PageLocation::Device
        } else {
            PageLocation::Host
        };
        let moved = st.uvm.prefetch(addr, len, to);
        let dur = self.profile.pcie_transfer_ns(moved);
        st.scheduler
            .schedule_stream_only(stream, issue_at, dur)
            .ok_or(GpuError::InvalidStream(stream))?;
        drop(st);
        self.clock.advance(self.profile.api_call_overhead_ns);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCost, LaunchDims};
    use crac_addrspace::{Half, MapRequest, PAGE_SIZE};

    fn device() -> (Arc<GpuDevice>, SharedSpace) {
        let space = SharedSpace::new_no_aslr();
        let dev = GpuDevice::new(DeviceProfile::test_profile(), space.clone());
        (dev, space)
    }

    fn alloc(space: &SharedSpace, pages: u64, label: &str) -> Addr {
        space
            .mmap(MapRequest::anon(pages * PAGE_SIZE, Half::Lower, label))
            .unwrap()
    }

    #[test]
    fn kernel_launch_is_async_and_sync_waits() {
        let (dev, _space) = device();
        let desc = KernelDesc::timing_only(
            "busy",
            LaunchDims::linear(1, 32),
            KernelCost::compute(100_000),
        );
        let before = dev.clock().now();
        dev.launch_kernel(StreamId::DEFAULT, &desc).unwrap();
        let after_launch = dev.clock().now();
        // Host only paid the API overhead, not the kernel execution time.
        assert!(after_launch - before < 10_000);
        dev.device_synchronize();
        assert!(dev.clock().now() >= 100_000);
        assert_eq!(dev.metrics().kernels_launched, 1);
    }

    #[test]
    fn functional_kernel_writes_memory() {
        let (dev, space) = device();
        let buf = alloc(&space, 1, "data");
        let desc = KernelDesc::with_body(
            "fill42",
            LaunchDims::linear(1, 32),
            KernelCost::new(32, 32 * 4),
            vec![buf.as_u64(), 32],
            |ctx| {
                let n = ctx.arg_u64(1) as usize;
                ctx.write_f32_arg(0, &vec![42.0; n])
            },
        );
        dev.launch_kernel(StreamId::DEFAULT, &desc).unwrap();
        dev.device_synchronize();
        let mut out = vec![0f32; 32];
        space.read_f32(buf, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn streams_overlap_but_default_stream_serialises() {
        let (dev, _space) = device();
        let desc = KernelDesc::timing_only(
            "k",
            LaunchDims::linear(1, 32),
            KernelCost::compute(1_000_000),
        );
        // Two kernels on the default stream: ~2x duration.
        dev.launch_kernel(StreamId::DEFAULT, &desc).unwrap();
        dev.launch_kernel(StreamId::DEFAULT, &desc).unwrap();
        dev.device_synchronize();
        let serial = dev.clock().now();
        assert!(serial >= 2_000_000);

        // Two kernels on separate streams: they overlap.
        let (dev2, _s2) = device();
        let a = dev2.create_stream();
        let b = dev2.create_stream();
        let desc2 = KernelDesc::timing_only(
            "k",
            LaunchDims::linear(1, 32),
            KernelCost::compute(1_000_000),
        );
        dev2.launch_kernel(a, &desc2).unwrap();
        dev2.launch_kernel(b, &desc2).unwrap();
        dev2.device_synchronize();
        let parallel = dev2.clock().now();
        assert!(parallel < serial, "parallel {parallel} vs serial {serial}");
        assert_eq!(dev2.peak_concurrent_kernels(), 2);
    }

    #[test]
    fn sync_memcpy_blocks_host_and_moves_data() {
        let (dev, space) = device();
        let src = alloc(&space, 4, "host-buf");
        let dst = alloc(&space, 4, "dev-buf");
        space.write_bytes(src, &[7u8; 128]).unwrap();
        dev.memcpy_h2d(dst, src, 128, None).unwrap();
        let mut out = [0u8; 128];
        space.read_bytes(dst, &mut out).unwrap();
        assert_eq!(out, [7u8; 128]);
        // Synchronous copy advanced the clock past the transfer time.
        assert!(dev.clock().now() >= dev.profile().pcie_transfer_ns(128));
        assert_eq!(dev.metrics().h2d_bytes, 128);
    }

    #[test]
    fn memset_fills_device_memory() {
        let (dev, space) = device();
        let dst = alloc(&space, 1, "dev-buf");
        dev.memset(dst, 0xee, 256, None).unwrap();
        let mut out = [0u8; 256];
        space.read_bytes(dst, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xee));
    }

    #[test]
    fn events_measure_stream_elapsed_time() {
        let (dev, _space) = device();
        let s = dev.create_stream();
        let start = dev.create_event();
        let end = dev.create_event();
        dev.record_event(start, s).unwrap();
        let desc = KernelDesc::timing_only(
            "k",
            LaunchDims::linear(1, 1),
            KernelCost::compute(2_000_000),
        );
        dev.launch_kernel(s, &desc).unwrap();
        dev.record_event(end, s).unwrap();
        dev.stream_synchronize(s).unwrap();
        let ms = dev.event_elapsed_ms(start, end).unwrap();
        assert!(ms >= 2.0, "elapsed {ms} ms");
    }

    #[test]
    fn event_queries_and_waits() {
        let (dev, _space) = device();
        let s = dev.create_stream();
        let e = dev.create_event();
        let desc = KernelDesc::timing_only(
            "k",
            LaunchDims::linear(1, 1),
            KernelCost::compute(1_000_000),
        );
        dev.launch_kernel(s, &desc).unwrap();
        dev.record_event(e, s).unwrap();
        assert!(!dev.event_complete(e).unwrap());
        dev.event_synchronize(e).unwrap();
        assert!(dev.event_complete(e).unwrap());
    }

    #[test]
    fn stream_wait_event_orders_work_across_streams() {
        let (dev, _space) = device();
        let a = dev.create_stream();
        let b = dev.create_stream();
        let e = dev.create_event();
        let long = KernelDesc::timing_only(
            "long",
            LaunchDims::linear(1, 1),
            KernelCost::compute(5_000_000),
        );
        let short = KernelDesc::timing_only(
            "short",
            LaunchDims::linear(1, 1),
            KernelCost::compute(1_000),
        );
        let long_end = dev.launch_kernel(a, &long).unwrap();
        dev.record_event(e, a).unwrap();
        dev.stream_wait_event(b, e).unwrap();
        let short_end = dev.launch_kernel(b, &short).unwrap();
        assert!(short_end > long_end);
    }

    #[test]
    fn device_memory_accounting_enforces_capacity() {
        let (dev, _space) = device();
        let cap = dev.profile().memory_bytes;
        dev.reserve_device_mem(cap / 2).unwrap();
        dev.reserve_device_mem(cap / 2).unwrap();
        let err = dev.reserve_device_mem(1).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        dev.release_device_mem(cap);
        assert_eq!(dev.device_mem_in_use(), 0);
    }

    #[test]
    fn uvm_kernel_argument_migrates_managed_range() {
        let (dev, space) = device();
        let buf = alloc(&space, 16, "managed");
        dev.uvm_register(buf, 16 * PAGE_SIZE);
        assert_eq!(dev.uvm_location_of(buf), Some(PageLocation::Host));
        let desc =
            KernelDesc::timing_only("touch", LaunchDims::linear(1, 1), KernelCost::compute(10));
        let desc = KernelDesc {
            args: vec![buf.as_u64()],
            ..desc
        };
        dev.launch_kernel(StreamId::DEFAULT, &desc).unwrap();
        assert_eq!(dev.uvm_location_of(buf), Some(PageLocation::Device));
        // Host access migrates back and charges fault latency.
        let before = dev.clock().now();
        dev.uvm_host_access(buf, PAGE_SIZE);
        assert!(dev.clock().now() > before);
        assert_eq!(dev.uvm_location_of(buf), Some(PageLocation::Host));
        let stats = dev.uvm_stats();
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.host_faults, 1);
    }

    #[test]
    fn uvm_prefetch_avoids_faults() {
        let (dev, space) = device();
        let buf = alloc(&space, 4, "managed");
        dev.uvm_register(buf, 4 * PAGE_SIZE);
        let s = dev.create_stream();
        dev.uvm_prefetch(buf, 4 * PAGE_SIZE, true, s).unwrap();
        let desc = KernelDesc {
            args: vec![buf.as_u64()],
            ..KernelDesc::timing_only("k", LaunchDims::linear(1, 1), KernelCost::compute(10))
        };
        dev.launch_kernel(s, &desc).unwrap();
        assert_eq!(dev.uvm_stats().device_faults, 0);
    }

    #[test]
    fn invalid_stream_and_event_are_reported() {
        let (dev, space) = device();
        let buf = alloc(&space, 1, "b");
        let desc = KernelDesc::timing_only("k", LaunchDims::linear(1, 1), KernelCost::compute(1));
        assert!(matches!(
            dev.launch_kernel(StreamId(42), &desc),
            Err(GpuError::InvalidStream(_))
        ));
        assert!(matches!(
            dev.memcpy_h2d(buf, buf, 8, Some(StreamId(42))),
            Err(GpuError::InvalidStream(_))
        ));
        assert!(matches!(
            dev.event_complete(EventId(99)),
            Err(GpuError::InvalidEvent(_))
        ));
        assert!(matches!(
            dev.destroy_stream(StreamId(42)),
            Err(GpuError::InvalidStream(_))
        ));
    }

    #[test]
    fn restart_device_shares_clock() {
        let (dev, space) = device();
        dev.clock().advance(12345);
        let dev2 = GpuDevice::with_clock(
            DeviceProfile::test_profile(),
            space,
            Arc::clone(dev.clock()),
        );
        assert_eq!(dev2.clock().now(), 12345);
        // Fresh device has no streams, metrics or UVM state.
        assert_eq!(dev2.live_streams(), 0);
        assert_eq!(dev2.metrics(), GpuMetrics::default());
        assert!(dev2.uvm_ranges().is_empty());
    }
}
