//! The virtual clock that stands in for wall-clock time.
//!
//! All runtimes reported by the benchmark harness (Figures 2–6, Table 3) are
//! read from this clock.  It is a monotonically increasing nanosecond
//! counter; host-side work, API-call overhead, interposition overhead and
//! waits at synchronisation points all advance it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Nanoseconds of virtual time.
pub type Ns = u64;

/// A shareable, monotonically increasing virtual clock.
///
/// The clock is advanced with relaxed atomics: callers only require
/// monotonicity of the value they observe, not cross-thread ordering of
/// unrelated memory, and the single counter is itself the only shared state.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero wrapped for sharing.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    #[inline]
    pub fn advance(&self, delta: Ns) -> Ns {
        self.now_ns.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Advances the clock to at least `target` (no-op if already past it).
    /// Returns the resulting time.
    pub fn advance_to(&self, target: Ns) -> Ns {
        let mut cur = self.now();
        while cur < target {
            match self.now_ns.compare_exchange_weak(
                cur,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Resets the clock to zero (used between benchmark repetitions).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

/// Converts nanoseconds to floating-point milliseconds (the unit of Table 3).
#[inline]
pub fn ns_to_ms(ns: Ns) -> f64 {
    ns as f64 / 1.0e6
}

/// Converts nanoseconds to floating-point seconds (the unit of the runtime
/// figures).
#[inline]
pub fn ns_to_s(ns: Ns) -> f64 {
    ns as f64 / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::default();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = VirtualClock::default();
        c.advance(100);
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.advance_to(200), 200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = VirtualClock::default();
        c.advance(42);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn conversions() {
        assert!((ns_to_ms(1_500_000) - 1.5).abs() < 1e-12);
        assert!((ns_to_s(2_000_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_advances_are_not_lost() {
        let c = VirtualClock::new_shared();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now(), 8000);
    }
}
