//! CUDA-stream bookkeeping and the device's scheduling resources.
//!
//! A stream is a FIFO queue of operations; operations in different streams
//! may overlap subject to the device's resources: a limited pool of
//! concurrent-kernel slots and one copy engine per direction.  This module
//! holds only the *timing* state — functional execution happens eagerly in
//! [`crate::device`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::clock::Ns;

/// Identifier of a CUDA stream.  Stream 0 is the default (legacy) stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream, on which non-streamed work is serialised.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// Timing state of one stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamState {
    /// Virtual time at which all work enqueued so far will have completed.
    pub ready_at: Ns,
    /// Number of operations ever enqueued on this stream.
    pub ops_enqueued: u64,
}

/// The device's shared scheduling resources.
#[derive(Debug)]
pub struct Scheduler {
    streams: BTreeMap<StreamId, StreamState>,
    next_stream: u32,
    /// End times of kernels currently occupying concurrent-kernel slots.
    running_kernels: BinaryHeap<Reverse<Ns>>,
    max_concurrent_kernels: usize,
    /// Time at which the host→device copy engine becomes free.
    h2d_free_at: Ns,
    /// Time at which the device→host copy engine becomes free.
    d2h_free_at: Ns,
    /// High-water mark of concurrently scheduled kernels.
    pub peak_concurrent_kernels: usize,
}

impl Scheduler {
    /// Creates a scheduler with the given concurrent-kernel limit and only
    /// the default stream.
    pub fn new(max_concurrent_kernels: usize) -> Self {
        let mut streams = BTreeMap::new();
        streams.insert(StreamId::DEFAULT, StreamState::default());
        Self {
            streams,
            next_stream: 1,
            running_kernels: BinaryHeap::new(),
            max_concurrent_kernels: max_concurrent_kernels.max(1),
            h2d_free_at: 0,
            d2h_free_at: 0,
            peak_concurrent_kernels: 0,
        }
    }

    /// Creates a new stream and returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.streams.insert(id, StreamState::default());
        id
    }

    /// Destroys a stream.  Returns `false` if it did not exist or is the
    /// default stream (which cannot be destroyed).
    pub fn destroy_stream(&mut self, id: StreamId) -> bool {
        if id == StreamId::DEFAULT {
            return false;
        }
        self.streams.remove(&id).is_some()
    }

    /// Returns `true` if the stream exists.
    pub fn stream_exists(&self, id: StreamId) -> bool {
        self.streams.contains_key(&id)
    }

    /// Number of user-created streams currently alive (excludes the default
    /// stream).
    pub fn live_streams(&self) -> usize {
        self.streams.len() - 1
    }

    /// Ids of all currently existing streams (including the default stream).
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.streams.keys().copied().collect()
    }

    /// Completion time of all work enqueued so far on `stream`.
    pub fn stream_ready_at(&self, stream: StreamId) -> Option<Ns> {
        self.streams.get(&stream).map(|s| s.ready_at)
    }

    /// Completion time of all work enqueued so far on the whole device.
    pub fn device_ready_at(&self) -> Ns {
        let streams = self.streams.values().map(|s| s.ready_at).max().unwrap_or(0);
        let kernels = self
            .running_kernels
            .iter()
            .map(|Reverse(t)| *t)
            .max()
            .unwrap_or(0);
        streams.max(kernels)
    }

    /// Schedules a kernel of duration `exec_ns` (plus `launch_overhead_ns`)
    /// on `stream`, issued by the host at `issue_at`.  Returns the kernel's
    /// completion time.
    pub fn schedule_kernel(
        &mut self,
        stream: StreamId,
        issue_at: Ns,
        launch_overhead_ns: Ns,
        exec_ns: Ns,
    ) -> Option<Ns> {
        let state = self.streams.get_mut(&stream)?;
        let mut start = state.ready_at.max(issue_at) + launch_overhead_ns;

        // Drop slots of kernels that have already finished by `start`.
        while let Some(Reverse(end)) = self.running_kernels.peek() {
            if *end <= start {
                self.running_kernels.pop();
            } else {
                break;
            }
        }
        // If all concurrent-kernel slots are busy, wait for the earliest one.
        if self.running_kernels.len() >= self.max_concurrent_kernels {
            if let Some(Reverse(earliest_end)) = self.running_kernels.pop() {
                start = start.max(earliest_end);
            }
        }

        let end = start + exec_ns;
        self.running_kernels.push(Reverse(end));
        self.peak_concurrent_kernels = self.peak_concurrent_kernels.max(self.running_kernels.len());
        state.ready_at = end;
        state.ops_enqueued += 1;
        Some(end)
    }

    /// Schedules a host→device copy taking `xfer_ns` on `stream`.
    pub fn schedule_h2d(&mut self, stream: StreamId, issue_at: Ns, xfer_ns: Ns) -> Option<Ns> {
        let state = self.streams.get_mut(&stream)?;
        let start = state.ready_at.max(issue_at).max(self.h2d_free_at);
        let end = start + xfer_ns;
        self.h2d_free_at = end;
        state.ready_at = end;
        state.ops_enqueued += 1;
        Some(end)
    }

    /// Schedules a device→host copy taking `xfer_ns` on `stream`.
    pub fn schedule_d2h(&mut self, stream: StreamId, issue_at: Ns, xfer_ns: Ns) -> Option<Ns> {
        let state = self.streams.get_mut(&stream)?;
        let start = state.ready_at.max(issue_at).max(self.d2h_free_at);
        let end = start + xfer_ns;
        self.d2h_free_at = end;
        state.ready_at = end;
        state.ops_enqueued += 1;
        Some(end)
    }

    /// Schedules an operation that only occupies the stream (e.g. a
    /// device-to-device copy or memset).
    pub fn schedule_stream_only(
        &mut self,
        stream: StreamId,
        issue_at: Ns,
        dur_ns: Ns,
    ) -> Option<Ns> {
        let state = self.streams.get_mut(&stream)?;
        let start = state.ready_at.max(issue_at);
        let end = start + dur_ns;
        state.ready_at = end;
        state.ops_enqueued += 1;
        Some(end)
    }

    /// Makes `stream` wait until `t` (used for event waits / stream
    /// dependencies).
    pub fn stall_stream_until(&mut self, stream: StreamId, t: Ns) {
        if let Some(s) = self.streams.get_mut(&stream) {
            s.ready_at = s.ready_at.max(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_destroy_streams() {
        let mut s = Scheduler::new(4);
        let a = s.create_stream();
        let b = s.create_stream();
        assert_ne!(a, b);
        assert_eq!(s.live_streams(), 2);
        assert!(s.destroy_stream(a));
        assert!(!s.destroy_stream(a));
        assert!(!s.destroy_stream(StreamId::DEFAULT));
        assert_eq!(s.live_streams(), 1);
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut s = Scheduler::new(16);
        let end1 = s.schedule_kernel(StreamId::DEFAULT, 0, 0, 100).unwrap();
        let end2 = s.schedule_kernel(StreamId::DEFAULT, 0, 0, 100).unwrap();
        assert_eq!(end1, 100);
        assert_eq!(end2, 200);
    }

    #[test]
    fn different_stream_kernels_overlap() {
        let mut s = Scheduler::new(16);
        let a = s.create_stream();
        let b = s.create_stream();
        let end_a = s.schedule_kernel(a, 0, 0, 100).unwrap();
        let end_b = s.schedule_kernel(b, 0, 0, 100).unwrap();
        assert_eq!(end_a, 100);
        assert_eq!(end_b, 100);
        assert_eq!(s.device_ready_at(), 100);
        assert_eq!(s.peak_concurrent_kernels, 2);
    }

    #[test]
    fn concurrent_kernel_limit_serialises_excess() {
        let mut s = Scheduler::new(2);
        let streams: Vec<_> = (0..4).map(|_| s.create_stream()).collect();
        let ends: Vec<_> = streams
            .iter()
            .map(|&st| s.schedule_kernel(st, 0, 0, 100).unwrap())
            .collect();
        // Two run immediately, the other two wait for a slot.
        assert_eq!(ends, vec![100, 100, 200, 200]);
    }

    #[test]
    fn copy_engines_serialize_per_direction_but_not_across() {
        let mut s = Scheduler::new(16);
        let a = s.create_stream();
        let b = s.create_stream();
        let h2d_a = s.schedule_h2d(a, 0, 50).unwrap();
        let h2d_b = s.schedule_h2d(b, 0, 50).unwrap();
        // Same engine: serialized.
        assert_eq!(h2d_a, 50);
        assert_eq!(h2d_b, 100);
        // Opposite direction uses the other engine and overlaps.
        let c = s.create_stream();
        let d2h_c = s.schedule_d2h(c, 0, 50).unwrap();
        assert_eq!(d2h_c, 50);
    }

    #[test]
    fn copy_and_kernel_overlap_across_streams() {
        // The simpleStreams pattern: kernel on stream A overlaps the copy on
        // stream B, so total time is less than the sum.
        let mut s = Scheduler::new(16);
        let a = s.create_stream();
        let b = s.create_stream();
        s.schedule_kernel(a, 0, 0, 1_000).unwrap();
        let copy_end = s.schedule_d2h(b, 0, 800).unwrap();
        assert_eq!(copy_end, 800);
        assert_eq!(s.device_ready_at(), 1_000);
    }

    #[test]
    fn unknown_stream_returns_none() {
        let mut s = Scheduler::new(4);
        assert!(s.schedule_kernel(StreamId(99), 0, 0, 10).is_none());
        assert!(s.schedule_h2d(StreamId(99), 0, 10).is_none());
    }

    #[test]
    fn stall_stream_until_delays_later_work() {
        let mut s = Scheduler::new(4);
        let a = s.create_stream();
        s.stall_stream_until(a, 500);
        let end = s.schedule_kernel(a, 0, 0, 10).unwrap();
        assert_eq!(end, 510);
    }
}
