//! Property-based tests of the simulated address space.
//!
//! These check the invariants CRAC's bookkeeping depends on: regions never
//! overlap, reads see the last write, the maps view covers exactly the mapped
//! bytes, and allocation without ASLR is deterministic.

use crac_addrspace::{AddressSpace, Half, MapRequest, MemError, Prot, PAGE_SIZE};
use proptest::prelude::*;

/// A randomly generated sequence of address-space operations.
#[derive(Clone, Debug)]
enum Op {
    Map {
        pages: u64,
        half: Half,
        fixed_slot: Option<u8>,
    },
    Unmap {
        slot: u8,
        page_off: u64,
        pages: u64,
    },
    Write {
        slot: u8,
        off: u64,
        len: u8,
        byte: u8,
    },
    Protect {
        slot: u8,
        prot_ro: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..16, any::<bool>(), proptest::option::of(0u8..8)).prop_map(|(pages, upper, f)| {
            Op::Map {
                pages,
                half: if upper { Half::Upper } else { Half::Lower },
                fixed_slot: f,
            }
        }),
        (any::<u8>(), 0u64..4, 1u64..4).prop_map(|(slot, page_off, pages)| Op::Unmap {
            slot,
            page_off,
            pages
        }),
        (any::<u8>(), 0u64..1024, 1u8..64, any::<u8>()).prop_map(|(slot, off, len, byte)| {
            Op::Write {
                slot,
                off,
                len,
                byte,
            }
        }),
        (any::<u8>(), any::<bool>()).prop_map(|(slot, prot_ro)| Op::Protect { slot, prot_ro }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of operations, no two regions overlap and every
    /// region is page-aligned and lies within its half's range.
    #[test]
    fn regions_never_overlap(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut space = AddressSpace::new_no_aslr();
        let mut slots: Vec<(crac_addrspace::Addr, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Map { pages, half, fixed_slot } => {
                    let mut req = MapRequest::anon(pages * PAGE_SIZE, half, "prop");
                    if let Some(s) = fixed_slot {
                        if let Some(&(addr, len)) = slots.get(s as usize) {
                            // Re-map over an existing slot only if the halves agree.
                            if space.region_at(addr).map(|r| r.half) == Some(half) && len >= pages * PAGE_SIZE {
                                req = req.at(addr);
                            }
                        }
                    }
                    if let Ok(addr) = space.mmap(req) {
                        slots.push((addr, pages * PAGE_SIZE));
                    }
                }
                Op::Unmap { slot, page_off, pages } => {
                    if let Some(&(addr, len)) = slots.get(slot as usize % slots.len().max(1)) {
                        let off = (page_off * PAGE_SIZE).min(len.saturating_sub(PAGE_SIZE));
                        let _ = space.munmap(addr + off, pages * PAGE_SIZE);
                    }
                }
                Op::Write { slot, off, len, byte } => {
                    if let Some(&(addr, rlen)) = slots.get(slot as usize % slots.len().max(1)) {
                        let off = off.min(rlen.saturating_sub(len as u64));
                        let _ = space.write(addr + off, &vec![byte; len as usize]);
                    }
                }
                Op::Protect { slot, prot_ro } => {
                    if let Some(&(addr, len)) = slots.get(slot as usize % slots.len().max(1)) {
                        let prot = if prot_ro { Prot::READ } else { Prot::RW };
                        let _ = space.mprotect(addr, len, prot);
                    }
                }
            }

            // Invariant: regions sorted, aligned, non-overlapping, in-half.
            let regions: Vec<_> = space.regions().collect();
            for w in regions.windows(2) {
                prop_assert!(w[0].end() <= w[1].start, "regions overlap: {:?} and {:?}", w[0].start, w[1].start);
            }
            for r in &regions {
                prop_assert!(r.start.is_page_aligned());
                prop_assert_eq!(r.len % PAGE_SIZE, 0);
                match r.half {
                    Half::Upper => prop_assert!(r.start.as_u64() >= 0x4000_0000_0000),
                    Half::Lower => prop_assert!(r.start.as_u64() < 0x4000_0000_0000),
                }
            }
        }
    }

    /// Reads observe the most recent write at every offset.
    #[test]
    fn read_sees_last_write(
        writes in proptest::collection::vec((0u64..8192, 1usize..128, any::<u8>()), 1..32)
    ) {
        let mut space = AddressSpace::new_no_aslr();
        let base = space.mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "rw")).unwrap();
        let mut shadow = vec![0u8; 4 * PAGE_SIZE as usize];
        for (off, len, byte) in writes {
            let off = off.min(4 * PAGE_SIZE - len as u64);
            let data = vec![byte; len];
            space.write(base + off, &data).unwrap();
            shadow[off as usize..off as usize + len].fill(byte);
        }
        let mut out = vec![0u8; shadow.len()];
        space.read(base, &mut out).unwrap();
        prop_assert_eq!(out, shadow);
    }

    /// The merged maps view covers exactly the mapped byte ranges (no bytes
    /// gained or lost by merging).
    #[test]
    fn maps_view_preserves_total_bytes(sizes in proptest::collection::vec(1u64..32, 1..20)) {
        let mut space = AddressSpace::new_no_aslr();
        let mut total = 0u64;
        for (i, pages) in sizes.iter().enumerate() {
            let half = if i % 3 == 0 { Half::Lower } else { Half::Upper };
            space.mmap(MapRequest::anon(pages * PAGE_SIZE, half, "m")).unwrap();
            total += pages * PAGE_SIZE;
        }
        let merged: u64 = space.proc_maps().iter().map(|e| e.len()).sum();
        prop_assert_eq!(merged, total);
        // Merging can only reduce the entry count.
        prop_assert!(space.proc_maps().len() <= space.region_count());
    }

    /// Without ASLR, two identical allocation sequences produce identical
    /// addresses — the determinism CRAC's replay relies on.
    #[test]
    fn no_aslr_is_deterministic(sizes in proptest::collection::vec(1u64..64, 1..30)) {
        let run = |sizes: &[u64]| -> Vec<u64> {
            let mut s = AddressSpace::new_no_aslr();
            sizes
                .iter()
                .map(|p| s.mmap(MapRequest::anon(p * PAGE_SIZE, Half::Lower, "d")).unwrap().as_u64())
                .collect()
        };
        prop_assert_eq!(run(&sizes), run(&sizes));
    }
}

#[test]
fn oversized_mapping_reports_out_of_space() {
    let mut s = AddressSpace::new_no_aslr();
    // The upper half is < 2^47 bytes; ask for more than it can hold.
    let err = s
        .mmap(MapRequest::anon(1 << 47, Half::Upper, "too-big"))
        .unwrap_err();
    assert_eq!(err, MemError::OutOfSpace);
}
