//! Addresses, page arithmetic and protection bits.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a simulated page, matching the x86-64 base page size used by the
/// paper's hosts.
pub const PAGE_SIZE: u64 = 4096;

/// A virtual address in the simulated process address space.
///
/// Addresses are plain 64-bit values; the newtype exists so that region
/// arithmetic cannot be accidentally mixed with lengths or other integers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Returns the raw 64-bit value.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if the address is page-aligned.
    #[inline]
    pub fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Index of the page containing this address.
    #[inline]
    pub fn page_index(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Checked addition, returning `None` on overflow.
    #[inline]
    pub fn checked_add(self, len: u64) -> Option<Addr> {
        self.0.checked_add(len).map(Addr)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// Rounds `v` down to the nearest page boundary.
#[inline]
pub fn page_align_down(v: u64) -> u64 {
    v - (v % PAGE_SIZE)
}

/// Rounds `v` up to the nearest page boundary.
#[inline]
pub fn page_align_up(v: u64) -> u64 {
    match v % PAGE_SIZE {
        0 => v,
        r => v + (PAGE_SIZE - r),
    }
}

/// Memory-protection bits for a mapping (subset of `PROT_*`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prot {
    bits: u8,
}

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot { bits: 0 };
    /// Readable.
    pub const READ: Prot = Prot { bits: 1 };
    /// Writable.
    pub const WRITE: Prot = Prot { bits: 2 };
    /// Executable.
    pub const EXEC: Prot = Prot { bits: 4 };
    /// Read + write, the most common data mapping.
    pub const RW: Prot = Prot { bits: 1 | 2 };
    /// Read + exec, the most common text mapping.
    pub const RX: Prot = Prot { bits: 1 | 4 };
    /// Read + write + exec.
    pub const RWX: Prot = Prot { bits: 1 | 2 | 4 };

    /// Returns `true` if all bits of `other` are present in `self`.
    #[inline]
    pub fn contains(self, other: Prot) -> bool {
        (self.bits & other.bits) == other.bits
    }

    /// Union of two protection sets.
    #[inline]
    pub fn union(self, other: Prot) -> Prot {
        Prot {
            bits: self.bits | other.bits,
        }
    }

    /// Returns `true` if the mapping is readable.
    #[inline]
    pub fn readable(self) -> bool {
        self.contains(Prot::READ)
    }

    /// Returns `true` if the mapping is writable.
    #[inline]
    pub fn writable(self) -> bool {
        self.contains(Prot::WRITE)
    }

    /// Returns `true` if the mapping is executable.
    #[inline]
    pub fn executable(self) -> bool {
        self.contains(Prot::EXEC)
    }

    /// The raw `PROT_*`-style bit pattern (bit 0 = read, 1 = write,
    /// 2 = exec), for serialisation into checkpoint images.
    #[inline]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Reconstructs protection bits from [`Prot::bits`].  Unknown high bits
    /// are rejected so a corrupted image byte cannot round-trip silently.
    #[inline]
    pub fn from_bits(bits: u8) -> Option<Prot> {
        if bits & !0b111 != 0 {
            return None;
        }
        Some(Prot { bits })
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_alignment_round_trip() {
        assert_eq!(page_align_up(0), 0);
        assert_eq!(page_align_up(1), PAGE_SIZE);
        assert_eq!(page_align_up(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(page_align_up(PAGE_SIZE + 1), 2 * PAGE_SIZE);
        assert_eq!(page_align_down(PAGE_SIZE - 1), 0);
        assert_eq!(page_align_down(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(page_align_down(2 * PAGE_SIZE + 17), 2 * PAGE_SIZE);
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr(0x1000);
        assert!(a.is_page_aligned());
        assert_eq!((a + 8).page_offset(), 8);
        assert_eq!((a + 8) - a, 8);
        assert_eq!(a.page_index(), 1);
        assert_eq!(Addr(u64::MAX).checked_add(1), None);
    }

    #[test]
    fn prot_bits_behave_like_sets() {
        assert!(Prot::RW.readable());
        assert!(Prot::RW.writable());
        assert!(!Prot::RW.executable());
        assert!(Prot::RWX.contains(Prot::RW));
        assert!(!Prot::READ.contains(Prot::WRITE));
        assert_eq!(Prot::READ.union(Prot::EXEC), Prot::RX);
        assert_eq!(format!("{}", Prot::RX), "r-x");
        assert_eq!(format!("{}", Prot::NONE), "---");
    }

    #[test]
    fn prot_bits_round_trip() {
        for p in [
            Prot::NONE,
            Prot::READ,
            Prot::WRITE,
            Prot::RW,
            Prot::RX,
            Prot::RWX,
        ] {
            assert_eq!(Prot::from_bits(p.bits()), Some(p));
        }
        assert_eq!(Prot::from_bits(0b1000), None);
        assert_eq!(Prot::from_bits(0xff), None);
    }
}
