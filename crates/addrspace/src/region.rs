//! Memory regions with sparse page-granular backing storage.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::addr::{Addr, Prot, PAGE_SIZE};

/// Which half of the split process a region belongs to.
///
/// The paper's central bookkeeping question — *does this mapping belong to the
/// checkpointed application (upper half) or to the discarded helper/CUDA
/// library (lower half)?* — is carried as an explicit tag here.  The merged
/// `/proc/PID/maps` view produced by [`crate::maps`] intentionally drops this
/// tag, reproducing why CRAC must keep its own region table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Half {
    /// The end-user CUDA application plus its libraries: saved at checkpoint.
    Upper,
    /// The helper program plus the real CUDA library: discarded at checkpoint,
    /// re-loaded fresh at restart.
    Lower,
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Half::Upper => write!(f, "upper"),
            Half::Lower => write!(f, "lower"),
        }
    }
}

/// Stable identifier of a region within an [`crate::AddressSpace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// A materialised page: its content, shareable without copying, plus the
/// write-epoch stamp of the last mutation that touched it.
///
/// Content lives behind an `Arc` so a checkpointer can capture a consistent
/// snapshot of a page ([`Page::share`]) while the process keeps running:
/// the next write to a shared page copies it first (copy-on-write), leaving
/// every outstanding snapshot untouched.
#[derive(Clone, Debug)]
pub struct Page {
    epoch: u64,
    bytes: Arc<[u8]>,
}

impl Page {
    /// Write epoch of the last mutation that touched this page.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The page's bytes (always exactly [`PAGE_SIZE`] long).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A zero-copy snapshot of the page content.  Later writes to the page
    /// copy-on-write, so the returned `Arc` stays frozen at capture time.
    #[inline]
    pub fn share(&self) -> Arc<[u8]> {
        Arc::clone(&self.bytes)
    }
}

/// Sparse page store: only pages that have been written are materialised.
///
/// Logical sizes can be multiple gigabytes (the HYPRE workload maps ~2.3 GB of
/// UVM), but tests and benchmarks only touch a small fraction of those pages,
/// so storage is a `BTreeMap` keyed by page index relative to the region
/// start.
///
/// Every mutation stamps the touched pages with the store's current *write
/// epoch* ([`PageStore::set_write_epoch`], advanced space-wide by
/// `AddressSpace::snapshot_epoch`), so a checkpointer can ask for exactly the
/// pages dirtied since a snapshot point ([`PageStore::pages_since`]).
#[derive(Clone, Default)]
pub struct PageStore {
    pages: BTreeMap<u64, Page>,
    epoch: u64,
    /// Pages declared *absent*: mapped and accounted for, but whose bytes
    /// have not been populated yet (lazy restore).  A first touch of an
    /// absent page must fault it in; the privileged install path
    /// (`AddressSpace::install_resident`) clears entries as content lands.
    absent: std::collections::BTreeSet<u64>,
}

fn zero_page() -> Arc<[u8]> {
    vec![0u8; PAGE_SIZE as usize].into()
}

impl PageStore {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Self {
            pages: BTreeMap::new(),
            epoch: 0,
            absent: std::collections::BTreeSet::new(),
        }
    }

    /// Number of materialised (dirty) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The epoch new mutations are stamped with.
    pub fn write_epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the stamping epoch.  Epochs only move forward; a lower value
    /// is ignored so adopted/merged stores can't roll a space backwards.
    pub fn set_write_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Mutable access to a page's bytes, materialising and copy-on-writing
    /// as needed, and stamping it with the current write epoch.
    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        let p = self.pages.entry(page).or_insert_with(|| Page {
            epoch: self.epoch,
            bytes: zero_page(),
        });
        p.epoch = self.epoch;
        if Arc::get_mut(&mut p.bytes).is_none() {
            // Shared with an outstanding snapshot: copy before writing.
            p.bytes = p.bytes.to_vec().into();
        }
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        Arc::get_mut(&mut p.bytes).expect("freshly copied page is unshared")
    }

    /// Reads `buf.len()` bytes starting at byte offset `off`.
    /// Unmaterialised pages read as zero.
    pub fn read(&self, off: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = off + done as u64;
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p.bytes[in_page..in_page + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Writes `data` starting at byte offset `off`, materialising pages as
    /// needed.
    pub fn write(&mut self, off: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let cur = off + done as u64;
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(data.len() - done);
            let p = self.page_mut(page);
            p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Fills `len` bytes starting at `off` with `byte`.
    pub fn fill(&mut self, off: u64, len: u64, byte: u8) {
        // Chunked so that huge fills do not allocate a huge temporary.
        let chunk = vec![byte; PAGE_SIZE as usize];
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(PAGE_SIZE) as usize;
            self.write(off + done, &chunk[..n]);
            done += n as u64;
        }
    }

    /// Iterates over the materialised pages as `(page_index, bytes)` pairs.
    pub fn dirty_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(k, v)| (*k, v.bytes()))
    }

    /// Iterates over the materialised pages stamped at or after `epoch` —
    /// i.e. dirtied since the `snapshot_epoch` call that returned `epoch`.
    pub fn pages_since(&self, epoch: u64) -> impl Iterator<Item = (u64, &Page)> {
        self.pages
            .iter()
            .filter(move |(_, p)| p.epoch >= epoch)
            .map(|(k, v)| (*k, v))
    }

    /// The materialised page at `page`, if any.
    pub fn page(&self, page: u64) -> Option<&Page> {
        self.pages.get(&page)
    }

    /// Installs a page's content wholesale (used when restoring from a
    /// checkpoint image).
    pub fn install_page(&mut self, page: u64, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE as usize, "page must be PAGE_SIZE");
        self.pages.insert(
            page,
            Page {
                epoch: self.epoch,
                bytes: bytes.to_vec().into(),
            },
        );
    }

    /// Discards pages at or beyond `first_page` (used when a region is split
    /// or truncated).
    pub fn truncate_pages(&mut self, first_page: u64) -> BTreeMap<u64, Page> {
        self.pages.split_off(&first_page)
    }

    /// Inserts pre-existing pages, with their keys shifted by `shift` pages
    /// (negative shifts move pages toward lower indices; used when a region is
    /// split or merged).  Page epochs are preserved, so dirty-since queries
    /// survive region splits and merges.
    pub fn adopt_pages(&mut self, pages: BTreeMap<u64, Page>, shift: i64) {
        for (k, v) in pages {
            let new_key = (k as i64 + shift) as u64;
            self.epoch = self.epoch.max(v.epoch);
            self.pages.insert(new_key, v);
        }
    }

    // -----------------------------------------------------------------
    // Residency (lazy restore)
    // -----------------------------------------------------------------

    /// Declares `count` pages starting at `first` absent: their bytes are
    /// known to exist (in a checkpoint image) but have not been populated.
    /// Until installed or marked resident they must not be read or written
    /// through the normal access paths.
    pub fn declare_absent(&mut self, first: u64, count: u64) {
        for page in first..first + count {
            self.absent.insert(page);
        }
    }

    /// `true` if the store tracks any absent pages (fast path guard).
    pub fn has_absent(&self) -> bool {
        !self.absent.is_empty()
    }

    /// Number of pages currently declared absent.
    pub fn absent_pages(&self) -> u64 {
        self.absent.len() as u64
    }

    /// `true` if `page` is declared absent.
    pub fn is_absent(&self, page: u64) -> bool {
        self.absent.contains(&page)
    }

    /// The first absent page index in `[first, first+count)`, if any.
    pub fn first_absent_in(&self, first: u64, count: u64) -> Option<u64> {
        self.absent.range(first..first + count).next().copied()
    }

    /// Clears the absent mark on `page` (its bytes have been installed, or
    /// the caller decided it resolves to zero).  Returns whether the page
    /// was absent.
    pub fn mark_resident(&mut self, page: u64) -> bool {
        self.absent.remove(&page)
    }

    /// Splits off the absent marks at or beyond `first_page` (the residency
    /// counterpart of [`PageStore::truncate_pages`]).
    pub fn split_absent(&mut self, first_page: u64) -> std::collections::BTreeSet<u64> {
        self.absent.split_off(&first_page)
    }

    /// Adopts absent marks with their indices shifted by `shift` pages (the
    /// residency counterpart of [`PageStore::adopt_pages`]).
    pub fn adopt_absent(&mut self, absent: std::collections::BTreeSet<u64>, shift: i64) {
        for page in absent {
            self.absent.insert((page as i64 + shift) as u64);
        }
    }
}

impl fmt::Debug for PageStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageStore({} resident pages)", self.pages.len())
    }
}

/// A maximal run of consecutive dirty pages: `count` pages starting at page
/// index `first`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRun {
    /// Index of the first page in the run (relative to its region start).
    pub first: u64,
    /// Number of consecutive pages in the run.
    pub count: u64,
}

impl PageRun {
    /// Iterates the page indices covered by the run.
    pub fn pages(self) -> impl Iterator<Item = u64> {
        self.first..self.first + self.count
    }
}

/// Groups page indices into maximal runs of consecutive values.
///
/// The input must be strictly increasing (which `BTreeMap` key order and
/// sorted dirty-page lists both guarantee); out-of-order input panics in
/// debug builds and starts a fresh run in release builds.
pub fn page_runs(indices: impl IntoIterator<Item = u64>) -> Vec<PageRun> {
    page_runs_coalesced(indices, 0)
}

/// Like [`page_runs`], but bridges gaps of at most `max_gap` clean pages
/// between dirty runs, producing fewer, longer runs.
///
/// Bridged pages are *clean* — a consumer that emits run contents must be
/// willing to re-emit their unchanged bytes.  For fragmented dirty sets this
/// trades a little redundant page copying for far less per-run framing and
/// hashing overhead downstream.  `max_gap == 0` degenerates to exact runs.
pub fn page_runs_coalesced(indices: impl IntoIterator<Item = u64>, max_gap: u64) -> Vec<PageRun> {
    let mut runs: Vec<PageRun> = Vec::new();
    for idx in indices {
        match runs.last_mut() {
            Some(run) if idx < run.first + run.count => {
                debug_assert!(false, "page indices must be increasing");
                runs.push(PageRun {
                    first: idx,
                    count: 1,
                });
            }
            Some(run) if idx - (run.first + run.count) <= max_gap => {
                // Extends the run, bridging any clean pages in between.
                run.count = idx - run.first + 1;
            }
            _ => runs.push(PageRun {
                first: idx,
                count: 1,
            }),
        }
    }
    runs
}

/// A single contiguous mapping in the simulated address space.
#[derive(Clone, Debug)]
pub struct Region {
    /// Stable identifier.
    pub id: RegionId,
    /// First address of the mapping (page-aligned).
    pub start: Addr,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Protection bits.
    pub prot: Prot,
    /// Which half of the split process created the mapping.
    pub half: Half,
    /// Human-readable label, e.g. `"libcuda.so"` or `"[heap]"`.
    pub label: String,
    /// Sparse backing storage.
    pub store: PageStore,
}

impl Region {
    /// Exclusive end address of the mapping.
    #[inline]
    pub fn end(&self) -> Addr {
        self.start + self.len
    }

    /// Returns `true` if `addr` lies inside the region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if `[addr, addr+len)` overlaps this region.
    #[inline]
    pub fn overlaps(&self, addr: Addr, len: u64) -> bool {
        addr < self.end() && addr + len > self.start
    }

    /// Number of pages in the region.
    #[inline]
    pub fn page_count(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Number of pages that have actually been written.
    #[inline]
    pub fn resident_pages(&self) -> usize {
        self.store.resident_pages()
    }

    /// Number of pages declared absent (awaiting lazy population).
    #[inline]
    pub fn absent_pages(&self) -> u64 {
        self.store.absent_pages()
    }

    /// Reads bytes from the region. `addr` must lie inside the region and the
    /// read must not run past its end (callers check this; the address-space
    /// API enforces it).
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        debug_assert!(self.contains(addr));
        debug_assert!(addr + buf.len() as u64 <= self.end());
        self.store.read(addr - self.start, buf);
    }

    /// Writes bytes into the region.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        debug_assert!(self.contains(addr));
        debug_assert!(addr + data.len() as u64 <= self.end());
        self.store.write(addr - self.start, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, len: u64) -> Region {
        Region {
            id: RegionId(1),
            start: Addr(start),
            len,
            prot: Prot::RW,
            half: Half::Upper,
            label: "test".to_string(),
            store: PageStore::new(),
        }
    }

    #[test]
    fn page_store_reads_zero_when_unwritten() {
        let store = PageStore::new();
        let mut buf = [0xffu8; 64];
        store.read(10_000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn page_store_write_read_round_trip_across_page_boundary() {
        let mut store = PageStore::new();
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        store.write(PAGE_SIZE - 100, &data);
        let mut out = vec![0u8; data.len()];
        store.read(PAGE_SIZE - 100, &mut out);
        assert_eq!(out, data);
        // 10_000 bytes starting 100 bytes before a boundary touch 4 pages.
        assert_eq!(store.resident_pages(), 4);
    }

    #[test]
    fn page_store_fill_is_visible() {
        let mut store = PageStore::new();
        store.fill(5, 3 * PAGE_SIZE, 0xab);
        let mut buf = [0u8; 16];
        store.read(PAGE_SIZE, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xab));
        let mut head = [1u8; 5];
        store.read(0, &mut head);
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn region_overlap_and_containment() {
        let r = region(0x10_000, 4 * PAGE_SIZE);
        assert!(r.contains(Addr(0x10_000)));
        assert!(r.contains(Addr(0x10_000 + 4 * PAGE_SIZE - 1)));
        assert!(!r.contains(Addr(0x10_000 + 4 * PAGE_SIZE)));
        assert!(r.overlaps(Addr(0x10_000 - PAGE_SIZE), 2 * PAGE_SIZE));
        assert!(!r.overlaps(Addr(0x10_000 - PAGE_SIZE), PAGE_SIZE));
        assert!(r.overlaps(Addr(0x10_000 + 3 * PAGE_SIZE), 64 * PAGE_SIZE));
    }

    #[test]
    fn region_read_write_round_trip() {
        let mut r = region(0x20_000, 2 * PAGE_SIZE);
        r.write(Addr(0x20_010), b"hello CRAC");
        let mut buf = [0u8; 10];
        r.read(Addr(0x20_010), &mut buf);
        assert_eq!(&buf, b"hello CRAC");
        assert_eq!(r.resident_pages(), 1);
    }

    #[test]
    fn truncate_and_adopt_pages_preserve_content() {
        let mut store = PageStore::new();
        store.write(0, &[1u8; PAGE_SIZE as usize]);
        store.write(PAGE_SIZE * 3, &[3u8; PAGE_SIZE as usize]);
        let tail = store.truncate_pages(2);
        assert_eq!(store.resident_pages(), 1);
        let mut other = PageStore::new();
        other.adopt_pages(tail, -2);
        let mut buf = [0u8; 4];
        other.read(PAGE_SIZE, &mut buf);
        assert_eq!(buf, [3u8; 4]);
    }

    #[test]
    fn shared_snapshot_survives_later_writes() {
        let mut store = PageStore::new();
        store.write(0, &[7u8; PAGE_SIZE as usize]);
        let snap = store.page(0).unwrap().share();
        store.write(16, &[9u8; 8]);
        // Snapshot still sees the pre-write content; store sees the new.
        assert!(snap.iter().all(|&b| b == 7));
        let mut now = [0u8; 8];
        store.read(16, &mut now);
        assert_eq!(now, [9u8; 8]);
    }

    #[test]
    fn pages_since_tracks_write_epochs() {
        let mut store = PageStore::new();
        store.write(0, &[1u8; 4]);
        store.write(PAGE_SIZE * 5, &[5u8; 4]);
        store.set_write_epoch(1);
        store.write(PAGE_SIZE * 5, &[6u8; 4]);
        store.write(PAGE_SIZE * 9, &[9u8; 4]);
        let dirty: Vec<u64> = store.pages_since(1).map(|(k, _)| k).collect();
        assert_eq!(dirty, vec![5, 9]);
        // Epoch survives a split/adopt round trip.
        let tail = store.truncate_pages(6);
        let mut other = PageStore::new();
        other.adopt_pages(tail, -6);
        let dirty: Vec<u64> = other.pages_since(1).map(|(k, _)| k).collect();
        assert_eq!(dirty, vec![3]);
    }

    #[test]
    fn coalesced_runs_bridge_small_gaps_only() {
        let idx = [0, 1, 4, 5, 10, 20];
        assert_eq!(
            page_runs_coalesced(idx.iter().copied(), 2),
            vec![
                PageRun { first: 0, count: 6 },
                PageRun {
                    first: 10,
                    count: 1
                },
                PageRun {
                    first: 20,
                    count: 1
                },
            ]
        );
        // Zero gap degenerates to exact maximal runs.
        assert_eq!(
            page_runs_coalesced(idx.iter().copied(), 0),
            page_runs(idx.iter().copied())
        );
    }
}
