//! Shared-ownership wrapper around an [`AddressSpace`].
//!
//! The simulated process address space is touched from several places at
//! once: the upper-half application, the lower-half CUDA library, the GPU
//! executor (kernels read and write buffers), and the checkpointer.  All of
//! them hold a [`SharedSpace`], which is a cheap-to-clone handle around a
//! `crac_sync::RwLock<AddressSpace>`.

use std::sync::Arc;

use crac_sync::{Mutex, RwLock};

use crate::addr::Addr;
use crate::space::{AddressSpace, MapRequest, MemError};

/// Resolves first touches of absent pages during a lazy restore.
///
/// Installed on a [`SharedSpace`] with
/// [`SharedSpace::install_fault_handler`].  When a convenience accessor
/// (`read_bytes`, `write_bytes`, `fill`, `sparse_copy` and the typed
/// helpers on top of them) hits [`MemError::NotResident`], the handler is
/// invoked **with no space lock held**: it must block until the faulting
/// page's bytes have been installed (via
/// [`AddressSpace::install_resident`]) and return `Ok`, after which the
/// interrupted access retries transparently.  Returning an error aborts
/// the access with that error — the restore source is gone and the page
/// can never materialise.
///
/// The raw [`SharedSpace::with`]/[`SharedSpace::with_mut`] escape hatches
/// do *not* fault — a closure runs under the space lock, where blocking on
/// a handler that needs the same lock to install pages would deadlock.
pub trait PageFaultHandler: Send + Sync {
    /// Faults in the absent page containing `addr`.
    fn fault(&self, addr: Addr) -> Result<(), MemError>;
}

/// Cheaply cloneable, thread-safe handle to a simulated address space.
#[derive(Clone)]
pub struct SharedSpace {
    inner: Arc<RwLock<AddressSpace>>,
    /// The demand-paging hook, shared by every clone of the handle so the
    /// application, the GPU executor and the checkpointer all fault through
    /// the same resolver.  Behind its own lock (not the space lock): the
    /// handler is consulted only after an access already failed, and
    /// installing one mid-restore must not contend with accesses.
    fault_handler: Arc<Mutex<Option<Arc<dyn PageFaultHandler>>>>,
}

impl Default for SharedSpace {
    fn default() -> Self {
        Self::new_no_aslr()
    }
}

impl SharedSpace {
    /// Wraps an existing address space.
    pub fn from_space(space: AddressSpace) -> Self {
        Self {
            inner: Arc::new(RwLock::new("addrspace.shared.space", space)),
            fault_handler: Arc::new(Mutex::new("addrspace.shared.fault_handler", None)),
        }
    }

    /// Installs the demand-paging fault handler (see [`PageFaultHandler`]).
    /// Replaces any previous handler; all clones of this handle observe it.
    pub fn install_fault_handler(&self, handler: Arc<dyn PageFaultHandler>) {
        *self.fault_handler.lock() = Some(handler);
    }

    /// Removes the fault handler: subsequent touches of absent pages surface
    /// [`MemError::NotResident`] directly.
    pub fn clear_fault_handler(&self) {
        *self.fault_handler.lock() = None;
    }

    /// `true` while a fault handler is installed.
    pub fn has_fault_handler(&self) -> bool {
        self.fault_handler.lock().is_some()
    }

    /// Runs `attempt` until it stops reporting [`MemError::NotResident`],
    /// resolving each reported page through the installed fault handler.
    /// The handler runs with no space lock held (the failed attempt already
    /// released it), so it can install pages through `with_mut`.
    fn with_demand_paging<R>(
        &self,
        mut attempt: impl FnMut() -> Result<R, MemError>,
    ) -> Result<R, MemError> {
        loop {
            match attempt() {
                Err(MemError::NotResident(addr)) => {
                    let handler = self.fault_handler.lock().clone();
                    match handler {
                        Some(h) => h.fault(addr)?,
                        None => return Err(MemError::NotResident(addr)),
                    }
                }
                other => return other,
            }
        }
    }

    /// Creates a fresh address space with ASLR enabled.
    pub fn new() -> Self {
        Self::from_space(AddressSpace::new())
    }

    /// Creates a fresh address space with ASLR disabled (what CRAC does).
    pub fn new_no_aslr() -> Self {
        Self::from_space(AddressSpace::new_no_aslr())
    }

    /// Runs `f` with shared (read) access to the space.
    pub fn with<R>(&self, f: impl FnOnce(&AddressSpace) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive (write) access to the space.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut AddressSpace) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Convenience: start a new write epoch through the lock (see
    /// [`AddressSpace::snapshot_epoch`]).
    pub fn snapshot_epoch(&self) -> u64 {
        self.inner.write().snapshot_epoch()
    }

    /// Convenience: `mmap` through the lock.
    pub fn mmap(&self, req: MapRequest) -> Result<Addr, MemError> {
        self.inner.write().mmap(req)
    }

    /// Convenience: `munmap` through the lock.
    pub fn munmap(&self, addr: Addr, len: u64) -> Result<(), MemError> {
        self.inner.write().munmap(addr, len)
    }

    /// Convenience: raw byte read through the lock.  Faults absent pages in
    /// through the installed [`PageFaultHandler`], if any.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemError> {
        self.with_demand_paging(|| self.inner.read().read(addr, buf))
    }

    /// Convenience: raw byte write through the lock.  Faults absent pages in
    /// through the installed [`PageFaultHandler`], if any.
    pub fn write_bytes(&self, addr: Addr, data: &[u8]) -> Result<(), MemError> {
        self.with_demand_paging(|| self.inner.write().write(addr, data))
    }

    /// Convenience: bulk fill through the lock.  Faults absent pages in
    /// through the installed [`PageFaultHandler`], if any.
    pub fn fill(&self, addr: Addr, len: u64, byte: u8) -> Result<(), MemError> {
        self.with_demand_paging(|| self.inner.write().fill(addr, len, byte))
    }

    /// Convenience: sparse copy through the lock (see
    /// [`AddressSpace::sparse_copy`]).  Faults absent pages in — on either
    /// side — through the installed [`PageFaultHandler`], if any.
    pub fn sparse_copy(&self, dst: Addr, src: Addr, len: u64) -> Result<u64, MemError> {
        self.with_demand_paging(|| self.inner.write().sparse_copy(dst, src, len))
    }

    /// Reads a little-endian `f32` slice starting at `addr`.
    pub fn read_f32(&self, addr: Addr, out: &mut [f32]) -> Result<(), MemError> {
        let mut bytes = vec![0u8; out.len() * 4];
        self.read_bytes(addr, &mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Ok(())
    }

    /// Writes a little-endian `f32` slice starting at `addr`.
    pub fn write_f32(&self, addr: Addr, data: &[f32]) -> Result<(), MemError> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes)
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&self, addr: Addr, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Half;
    use crate::PAGE_SIZE;

    #[test]
    fn shared_space_clones_alias_the_same_memory() {
        let a = SharedSpace::new_no_aslr();
        let b = a.clone();
        let addr = a
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        b.write_bytes(addr, b"shared").unwrap();
        let mut buf = [0u8; 6];
        a.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn typed_f32_round_trip() {
        let s = SharedSpace::new_no_aslr();
        let addr = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "f"))
            .unwrap();
        let data = [1.5f32, -2.25, 3.0, 0.0];
        s.write_f32(addr, &data).unwrap();
        let mut out = [0f32; 4];
        s.read_f32(addr, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn typed_u64_round_trip() {
        let s = SharedSpace::new_no_aslr();
        let addr = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "u"))
            .unwrap();
        s.write_u64(addr + 16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(s.read_u64(addr + 16).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn fault_handler_resolves_first_touch_transparently() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Installer {
            space: SharedSpace,
            faults: AtomicU64,
        }
        impl PageFaultHandler for Installer {
            fn fault(&self, addr: Addr) -> Result<(), MemError> {
                self.faults.fetch_add(1, Ordering::Relaxed);
                let page = Addr(crate::page_align_down(addr.as_u64()));
                self.space
                    .with_mut(|s| s.install_resident(page, &vec![0xAB; PAGE_SIZE as usize]))?;
                Ok(())
            }
        }

        let s = SharedSpace::new_no_aslr();
        let addr = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "lazy"))
            .unwrap();
        s.with_mut(|sp| sp.declare_absent(addr, 4 * PAGE_SIZE))
            .unwrap();
        let handler = Arc::new(Installer {
            space: s.clone(),
            faults: AtomicU64::new(0),
        });
        s.install_fault_handler(handler.clone());

        // A read spanning three absent pages faults each in, then succeeds.
        let mut buf = vec![0u8; PAGE_SIZE as usize + 8];
        s.read_bytes(addr + (PAGE_SIZE - 4), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xAB));
        assert_eq!(handler.faults.load(Ordering::Relaxed), 3);
        // Second touch of the same pages is resident — no more faults.
        s.read_bytes(addr + PAGE_SIZE, &mut buf[..8]).unwrap();
        assert_eq!(handler.faults.load(Ordering::Relaxed), 3);

        // Clearing the handler re-exposes NotResident on untouched pages.
        s.clear_fault_handler();
        let err = s.read_bytes(addr + 3 * PAGE_SIZE, &mut buf[..1]);
        assert!(matches!(err, Err(MemError::NotResident(_))));
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_disjoint_buffers() {
        let s = SharedSpace::new_no_aslr();
        let addr = s
            .mmap(MapRequest::anon(64 * PAGE_SIZE, Half::Upper, "par"))
            .unwrap();
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let s = s.clone();
                scope.spawn(move || {
                    let base = addr + (t as u64) * 8 * PAGE_SIZE;
                    s.fill(base, 8 * PAGE_SIZE, t + 1).unwrap();
                });
            }
        });
        for t in 0..8u8 {
            let mut buf = [0u8; 8];
            s.read_bytes(addr + (t as u64) * 8 * PAGE_SIZE, &mut buf)
                .unwrap();
            assert_eq!(buf, [t + 1; 8]);
        }
    }
}
