//! The simulated address space: `mmap`, `munmap`, `mprotect`, ASLR and the
//! upper/lower-half layout.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{page_align_up, Addr, Prot, PAGE_SIZE};
use crate::maps::MapsEntry;
use crate::region::{Half, PageStore, Region, RegionId};

/// Base of the address range used for lower-half (helper / CUDA library)
/// mappings.
pub const LOWER_BASE: u64 = 0x0000_1000_0000;
/// Exclusive end of the lower-half range and base of the upper-half range.
pub const UPPER_BASE: u64 = 0x4000_0000_0000;
/// Exclusive end of the upper-half range.
pub const SPACE_END: u64 = 0x7fff_ffff_f000;

/// Errors returned by address-space operations (the moral equivalent of
/// `errno` values from `mmap`/`munmap`/`mprotect`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Requested address or length was not page-aligned where required.
    Unaligned,
    /// A zero-length mapping or access was requested.
    ZeroLength,
    /// No free gap large enough for the request (ENOMEM).
    OutOfSpace,
    /// A `MAP_FIXED` request fell outside the requested half's range.
    OutsideHalf,
    /// An access touched an address with no mapping behind it (SIGSEGV).
    Fault(Addr),
    /// An access violated the mapping's protection bits.
    Protection(Addr),
    /// An access touched a page that is mapped but declared absent — its
    /// bytes have not been demand-paged in yet.  With a
    /// [`crate::PageFaultHandler`] installed on the [`crate::SharedSpace`],
    /// the handler resolves the page and the access retries transparently;
    /// without one, the error surfaces to the caller.
    NotResident(Addr),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unaligned => write!(f, "address or length not page-aligned"),
            MemError::ZeroLength => write!(f, "zero-length request"),
            MemError::OutOfSpace => write!(f, "no free virtual address range large enough"),
            MemError::OutsideHalf => write!(f, "MAP_FIXED address outside the requested half"),
            MemError::Fault(a) => write!(f, "segmentation fault at {a}"),
            MemError::Protection(a) => write!(f, "protection violation at {a}"),
            MemError::NotResident(a) => write!(f, "page not resident at {a}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Parameters of an `mmap` request.
#[derive(Clone, Debug)]
pub struct MapRequest {
    /// Requested length in bytes (rounded up to a page multiple).
    pub len: u64,
    /// Protection bits of the new mapping.
    pub prot: Prot,
    /// Which half the mapping belongs to (determines the search range).
    pub half: Half,
    /// Human-readable label recorded on the region.
    pub label: String,
    /// `Some(addr)` requests `MAP_FIXED` placement at `addr`, silently
    /// replacing any existing overlapping mappings — exactly the hazard
    /// described in Section 3.2.2 of the paper.
    pub fixed: Option<Addr>,
}

impl MapRequest {
    /// Convenience constructor for an anonymous RW mapping.
    pub fn anon(len: u64, half: Half, label: &str) -> Self {
        Self {
            len,
            prot: Prot::RW,
            half,
            label: label.to_string(),
            fixed: None,
        }
    }

    /// Requests `MAP_FIXED` placement at `addr`.
    pub fn at(mut self, addr: Addr) -> Self {
        self.fixed = Some(addr);
        self
    }

    /// Overrides the protection bits.
    pub fn prot(mut self, prot: Prot) -> Self {
        self.prot = prot;
        self
    }
}

/// Aggregate statistics over an address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Number of distinct regions currently mapped.
    pub region_count: usize,
    /// Total mapped bytes in the upper half.
    pub upper_bytes: u64,
    /// Total mapped bytes in the lower half.
    pub lower_bytes: u64,
    /// Pages actually written (resident) across all regions.
    pub resident_pages: usize,
    /// Pages declared absent (awaiting lazy population) across all regions.
    pub absent_pages: u64,
    /// Cumulative number of `mmap` calls served.
    pub mmap_calls: u64,
    /// Cumulative number of `munmap` calls served.
    pub munmap_calls: u64,
}

/// A simulated process virtual address space.
///
/// Regions are kept in a `BTreeMap` ordered by start address so that overlap
/// queries, first-fit searches and the `/proc/PID/maps` view are all simple
/// ordered traversals.
pub struct AddressSpace {
    regions: BTreeMap<Addr, Region>,
    next_id: u64,
    aslr_enabled: bool,
    rng_state: u64,
    stats: SpaceStats,
    write_epoch: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with ASLR enabled (the Linux default).
    pub fn new() -> Self {
        Self {
            regions: BTreeMap::new(),
            next_id: 1,
            aslr_enabled: true,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            stats: SpaceStats::default(),
            write_epoch: 0,
        }
    }

    /// The current space-wide write epoch: every mutation since the last
    /// [`AddressSpace::snapshot_epoch`] call is stamped with this value.
    pub fn current_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Starts a new write epoch and returns it.  Pages written *from now on*
    /// are stamped at or above the returned epoch, so
    /// `store.pages_since(epoch)` yields exactly the pages dirtied after this
    /// call — the dirty-tracking primitive behind pre-copy checkpointing.
    pub fn snapshot_epoch(&mut self) -> u64 {
        self.write_epoch += 1;
        for region in self.regions.values_mut() {
            region.store.set_write_epoch(self.write_epoch);
        }
        self.write_epoch
    }

    /// Creates an address space with ASLR already disabled, as CRAC does via
    /// `personality(ADDR_NO_RANDOMIZE)` before loading the halves.
    pub fn new_no_aslr() -> Self {
        let mut s = Self::new();
        s.personality_no_randomize();
        s
    }

    /// Disables address-space layout randomisation.  Subsequent non-fixed
    /// `mmap` calls become fully deterministic, which is what CRAC's
    /// log-and-replay address determinism relies on.
    pub fn personality_no_randomize(&mut self) {
        self.aslr_enabled = false;
    }

    /// Returns `true` if ASLR is currently enabled.
    pub fn aslr_enabled(&self) -> bool {
        self.aslr_enabled
    }

    /// Seeds the internal ASLR offset generator (useful to make "randomised"
    /// layouts reproducible in tests while still exercising the ASLR path).
    pub fn seed_aslr(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, no external dependency.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Maps a new region, returning its start address.
    pub fn mmap(&mut self, req: MapRequest) -> Result<Addr, MemError> {
        if req.len == 0 {
            return Err(MemError::ZeroLength);
        }
        let len = page_align_up(req.len);
        self.stats.mmap_calls += 1;

        let start = match req.fixed {
            Some(addr) => {
                if !addr.is_page_aligned() {
                    return Err(MemError::Unaligned);
                }
                let (lo, hi) = Self::half_range(req.half);
                if addr.as_u64() < lo || addr.as_u64() + len > hi {
                    return Err(MemError::OutsideHalf);
                }
                // MAP_FIXED silently replaces whatever was there.
                self.unmap_range(addr, len);
                addr
            }
            None => self.find_free(len, req.half)?,
        };

        let id = RegionId(self.next_id);
        self.next_id += 1;
        let mut store = PageStore::new();
        store.set_write_epoch(self.write_epoch);
        let region = Region {
            id,
            start,
            len,
            prot: req.prot,
            half: req.half,
            label: req.label,
            store,
        };
        self.regions.insert(start, region);
        Ok(start)
    }

    /// Unmaps `[addr, addr+len)`.  Like Linux, unmapping a range with no
    /// mappings in it is not an error; partial overlaps split regions.
    pub fn munmap(&mut self, addr: Addr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !addr.is_page_aligned() {
            return Err(MemError::Unaligned);
        }
        let len = page_align_up(len);
        self.stats.munmap_calls += 1;
        self.unmap_range(addr, len);
        Ok(())
    }

    /// Changes protection bits over `[addr, addr+len)`, splitting regions at
    /// the boundaries when necessary.
    pub fn mprotect(&mut self, addr: Addr, len: u64, prot: Prot) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !addr.is_page_aligned() {
            return Err(MemError::Unaligned);
        }
        let len = page_align_up(len);
        // Split at both boundaries so the target range is covered by whole
        // regions, then flip the protection on those regions.
        self.split_at(addr);
        self.split_at(addr + len);
        let keys: Vec<Addr> = self
            .regions
            .range(..Addr(addr.as_u64() + len))
            .filter(|(_, r)| r.overlaps(addr, len))
            .map(|(k, _)| *k)
            .collect();
        if keys.is_empty() {
            return Err(MemError::Fault(addr));
        }
        for k in keys {
            if let Some(r) = self.regions.get_mut(&k) {
                r.prot = prot;
            }
        }
        Ok(())
    }

    /// Reads bytes starting at `addr`.  The range may span several adjacent
    /// regions but every byte must be mapped and readable.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemError> {
        self.access(addr, buf.len() as u64, false)?;
        self.check_resident(addr, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr + done as u64;
            let region = self.region_at(cur).ok_or(MemError::Fault(cur))?;
            let n = ((region.end() - cur) as usize).min(buf.len() - done);
            region.read(cur, &mut buf[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes bytes starting at `addr`.
    pub fn write(&mut self, addr: Addr, data: &[u8]) -> Result<(), MemError> {
        self.access(addr, data.len() as u64, true)?;
        self.check_resident(addr, data.len() as u64)?;
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let key = self
                .region_at(cur)
                .map(|r| r.start)
                .ok_or(MemError::Fault(cur))?;
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            let region = self.regions.get_mut(&key).expect("region key just found");
            let n = ((region.end() - cur) as usize).min(data.len() - done);
            region.write(cur, &data[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `byte` (cheap bulk initialisation for
    /// workloads).
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemError> {
        self.access(addr, len, true)?;
        self.check_resident(addr, len)?;
        let mut done = 0u64;
        while done < len {
            let cur = addr + done;
            let key = self
                .region_at(cur)
                .map(|r| r.start)
                .ok_or(MemError::Fault(cur))?;
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            let region = self.regions.get_mut(&key).expect("region key just found");
            let n = (region.end() - cur).min(len - done);
            region.store.fill(cur - region.start, n, byte);
            done += n;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst`, touching only the bytes backed
    /// by dirty (materialised) pages of the source range.  Bytes backed by
    /// never-written pages are zero on both sides already (the destination
    /// must be freshly mapped or otherwise known-zero), so multi-gigabyte
    /// logical copies stay cheap.  Returns the number of bytes physically
    /// copied.
    ///
    /// This is the primitive behind CRAC's drain (device → upper-half
    /// staging) and refill (staging → device) of active allocations.
    pub fn sparse_copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<u64, MemError> {
        self.access(src, len, false)?;
        self.access(dst, len, true)?;
        // Absent source pages hold real (not-yet-fetched) content that the
        // dirty-page walk below would silently miss; absent destination
        // pages would be clobbered later by their install.  Both must be
        // paged in first.
        self.check_resident(src, len)?;
        self.check_resident(dst, len)?;
        let src_end = src + len;
        // Collect the dirty byte ranges first (read-only pass), then write.
        let mut pieces: Vec<(u64, Vec<u8>)> = Vec::new();
        for region in self.regions.values() {
            if !region.overlaps(src, len) {
                continue;
            }
            for (page_idx, bytes) in region.store.dirty_pages() {
                let page_start = region.start + page_idx * PAGE_SIZE;
                let page_end = page_start + PAGE_SIZE;
                let start = page_start.max(src);
                let end = page_end.min(src_end);
                if start >= end {
                    continue;
                }
                let off_in_page = (start - page_start) as usize;
                let n = (end - start) as usize;
                pieces.push((start - src, bytes[off_in_page..off_in_page + n].to_vec()));
            }
        }
        let mut copied = 0u64;
        for (off, data) in pieces {
            self.write(dst + off, &data)?;
            copied += data.len() as u64;
        }
        Ok(copied)
    }

    /// Rejects the access if any touched page is declared absent, reporting
    /// the first such page's address.  Ranges were validated by `access`
    /// first, so only overlap bookkeeping happens here; regions with no
    /// absent pages are skipped on a cheap emptiness test.
    fn check_resident(&self, addr: Addr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        for region in self.regions.range(..addr + len).map(|(_, r)| r) {
            if !region.store.has_absent() || !region.overlaps(addr, len) {
                continue;
            }
            let start = addr.max(region.start);
            let end = (addr + len).min(region.end());
            let first = (start - region.start) / PAGE_SIZE;
            let count = (end - region.start).div_ceil(PAGE_SIZE) - first;
            if let Some(page) = region.store.first_absent_in(first, count) {
                return Err(MemError::NotResident(region.start + page * PAGE_SIZE));
            }
        }
        Ok(())
    }

    /// Declares every page of `[addr, addr+len)` absent: mapped, length and
    /// protection known, but no bytes — a first touch through the normal
    /// access paths reports [`MemError::NotResident`] until the page's
    /// content is installed with [`AddressSpace::install_resident`].  The
    /// range must be page-aligned and fully mapped (protection bits are
    /// irrelevant — this is restore bookkeeping, not an access).
    pub fn declare_absent(&mut self, addr: Addr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !addr.is_page_aligned() || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        // Validate the whole range is mapped before mutating anything.
        let mut cur = addr;
        let end = addr.checked_add(len).ok_or(MemError::Fault(addr))?;
        while cur < end {
            let region = self.region_at(cur).ok_or(MemError::Fault(cur))?;
            cur = region.end();
        }
        let mut cur = addr;
        while cur < end {
            let key = self
                .region_at(cur)
                .map(|r| r.start)
                // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
                .expect("range validated above");
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            let region = self.regions.get_mut(&key).expect("region key just found");
            let seg_end = region.end().min(end);
            let first = (cur - region.start) / PAGE_SIZE;
            let count = (seg_end - cur) / PAGE_SIZE;
            region.store.declare_absent(first, count);
            cur = seg_end;
        }
        Ok(())
    }

    /// Privileged page install for demand paging: writes whole, page-aligned
    /// pages *ignoring protection bits* (the recorded protection may be
    /// read-only — content still has to land) and clears their absent marks.
    /// Pages that are no longer mapped — the application unmapped them while
    /// the restore was still streaming — are skipped, not errors: their
    /// content is dead.  Returns the number of pages actually installed.
    pub fn install_resident(&mut self, addr: Addr, bytes: &[u8]) -> Result<u64, MemError> {
        if !addr.is_page_aligned() || !(bytes.len() as u64).is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        let mut installed = 0u64;
        for (i, page_bytes) in bytes.chunks_exact(PAGE_SIZE as usize).enumerate() {
            let page_addr = addr + i as u64 * PAGE_SIZE;
            let Some(key) = self.region_at(page_addr).map(|r| r.start) else {
                continue;
            };
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            let region = self.regions.get_mut(&key).expect("region key just found");
            let page = (page_addr - region.start) / PAGE_SIZE;
            region.store.install_page(page, page_bytes);
            region.store.mark_resident(page);
            installed += 1;
        }
        Ok(installed)
    }

    /// Total pages currently declared absent across all regions.
    pub fn absent_pages(&self) -> u64 {
        self.regions.values().map(Region::absent_pages).sum()
    }

    fn access(&self, addr: Addr, len: u64, write: bool) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let mut cur = addr;
        let end = addr.checked_add(len).ok_or(MemError::Fault(addr))?;
        while cur < end {
            let region = self.region_at(cur).ok_or(MemError::Fault(cur))?;
            if write && !region.prot.writable() {
                return Err(MemError::Protection(cur));
            }
            if !write && !region.prot.readable() {
                return Err(MemError::Protection(cur));
            }
            cur = region.end();
        }
        Ok(())
    }

    /// Returns the region containing `addr`, if any.
    pub fn region_at(&self, addr: Addr) -> Option<&Region> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(addr))
    }

    /// Iterates over all regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Iterates over the regions belonging to one half.
    pub fn regions_in_half(&self, half: Half) -> impl Iterator<Item = &Region> {
        self.regions.values().filter(move |r| r.half == half)
    }

    /// Number of regions currently mapped.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Relabels the region starting exactly at `addr` (used by loaders).
    pub fn relabel(&mut self, addr: Addr, label: &str) -> bool {
        match self.regions.get_mut(&addr) {
            Some(r) => {
                r.label = label.to_string();
                true
            }
            None => false,
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SpaceStats {
        let mut s = self.stats;
        s.region_count = self.regions.len();
        s.upper_bytes = self.regions_in_half(Half::Upper).map(|r| r.len).sum();
        s.lower_bytes = self.regions_in_half(Half::Lower).map(|r| r.len).sum();
        s.resident_pages = self.regions.values().map(|r| r.resident_pages()).sum();
        s.absent_pages = self.regions.values().map(Region::absent_pages).sum();
        s
    }

    /// Produces the merged `/proc/PID/maps`-style view.  Adjacent regions with
    /// identical protection bits are coalesced into a single entry and the
    /// upper/lower-half tag is *not* part of the output — this is the view a
    /// naive checkpointer would have to work from.
    pub fn proc_maps(&self) -> Vec<MapsEntry> {
        crate::maps::merged_view(self.regions.values())
    }

    /// Consolidates adjacent upper-half regions with identical protections
    /// into single regions (Section 3.2.2: CRAC "tries to consolidate memory
    /// regions created by the upper half").  Returns the number of regions
    /// eliminated.
    pub fn consolidate_upper_half(&mut self) -> usize {
        let keys: Vec<Addr> = self
            .regions
            .values()
            .filter(|r| r.half == Half::Upper)
            .map(|r| r.start)
            .collect();
        let mut eliminated = 0usize;
        let mut i = 0usize;
        while i + 1 < keys.len() {
            let a = keys[i];
            let b = keys[i + 1];
            let merge = {
                let ra = &self.regions[&a];
                let rb = &self.regions[&b];
                ra.end() == rb.start && ra.prot == rb.prot && ra.half == rb.half
            };
            if merge {
                // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
                let mut rb = self.regions.remove(&b).expect("rb exists");
                // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
                let ra = self.regions.get_mut(&a).expect("ra exists");
                let shift_pages = (ra.len / PAGE_SIZE) as i64;
                // Pages keep their epoch stamps through the merge, so
                // dirty-since queries stay accurate across consolidation.
                let pages = rb.store.truncate_pages(0);
                ra.store.adopt_pages(pages, shift_pages);
                let absent = rb.store.split_absent(0);
                ra.store.adopt_absent(absent, shift_pages);
                ra.len += rb.len;
                if ra.label != rb.label {
                    ra.label = format!("{}+{}", ra.label, rb.label);
                }
                eliminated += 1;
                // Re-run from the same index: the merged region may now abut
                // the next one as well.  Rebuild the key list lazily by
                // restarting the scan.
                return eliminated + self.consolidate_upper_half();
            }
            i += 1;
        }
        eliminated
    }

    fn half_range(half: Half) -> (u64, u64) {
        match half {
            Half::Lower => (LOWER_BASE, UPPER_BASE),
            Half::Upper => (UPPER_BASE, SPACE_END),
        }
    }

    fn find_free(&mut self, len: u64, half: Half) -> Result<Addr, MemError> {
        let (lo, hi) = Self::half_range(half);
        let slide = if self.aslr_enabled {
            // Up to 1 GiB of page-aligned slide, as a stand-in for mmap ASLR.
            (self.next_rand() % (1 << 18)) * PAGE_SIZE
        } else {
            0
        };
        let mut cursor = lo + slide;
        let mut wrapped = slide == 0;
        loop {
            if cursor + len > hi {
                // Wrap once to the un-slid base before giving up.
                if !wrapped {
                    wrapped = true;
                    cursor = lo;
                    continue;
                }
                return Err(MemError::OutOfSpace);
            }
            // Find the first region that ends after `cursor`.
            let conflict = self
                .regions
                .values()
                .find(|r| r.overlaps(Addr(cursor), len));
            match conflict {
                None => return Ok(Addr(cursor)),
                Some(r) => {
                    cursor = r.end().as_u64();
                    if cursor < lo {
                        cursor = lo;
                    }
                }
            }
        }
    }

    /// Splits the region containing `addr` so that `addr` becomes a region
    /// boundary (no-op if it already is, or if nothing is mapped there).
    fn split_at(&mut self, addr: Addr) {
        let key = match self.region_at(addr) {
            Some(r) if r.start != addr => r.start,
            _ => return,
        };
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        let region = self.regions.get_mut(&key).expect("region key just found");
        let head_len = addr - region.start;
        let tail_len = region.len - head_len;
        let tail_first_page = head_len / PAGE_SIZE;
        let tail_pages = region.store.truncate_pages(tail_first_page);
        let tail_absent = region.store.split_absent(tail_first_page);
        region.len = head_len;
        let id = RegionId(self.next_id);
        self.next_id += 1;
        let mut store = PageStore::new();
        store.set_write_epoch(region.store.write_epoch());
        let mut tail = Region {
            id,
            start: addr,
            len: tail_len,
            prot: region.prot,
            half: region.half,
            label: region.label.clone(),
            store,
        };
        tail.store
            .adopt_pages(tail_pages, -(tail_first_page as i64));
        tail.store
            .adopt_absent(tail_absent, -(tail_first_page as i64));
        self.regions.insert(addr, tail);
    }

    /// Removes all mappings intersecting `[addr, addr+len)`, splitting
    /// partially covered regions.
    fn unmap_range(&mut self, addr: Addr, len: u64) {
        self.split_at(addr);
        self.split_at(addr + len);
        let doomed: Vec<Addr> = self
            .regions
            .values()
            .filter(|r| r.overlaps(addr, len))
            .map(|r| r.start)
            .collect();
        for k in doomed {
            self.regions.remove(&k);
        }
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AddressSpace ({} regions):", self.regions.len())?;
        for r in self.regions.values() {
            writeln!(
                f,
                "  {:?}-{:?} {} {} {} ({} pages resident)",
                r.start,
                r.end(),
                r.prot,
                r.half,
                r.label,
                r.resident_pages()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new_no_aslr()
    }

    #[test]
    fn mmap_places_halves_in_disjoint_ranges() {
        let mut s = space();
        let lo = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Lower, "lower"))
            .unwrap();
        let up = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "upper"))
            .unwrap();
        assert!(lo.as_u64() >= LOWER_BASE && lo.as_u64() < UPPER_BASE);
        assert!(up.as_u64() >= UPPER_BASE && up.as_u64() < SPACE_END);
    }

    #[test]
    fn mmap_is_deterministic_without_aslr() {
        let addrs: Vec<_> = (0..2)
            .map(|_| {
                let mut s = AddressSpace::new_no_aslr();
                (0..5)
                    .map(|i| {
                        s.mmap(MapRequest::anon((i + 1) * PAGE_SIZE, Half::Upper, "x"))
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(addrs[0], addrs[1]);
    }

    #[test]
    fn mmap_differs_with_aslr() {
        let mut a = AddressSpace::new();
        a.seed_aslr(1);
        let mut b = AddressSpace::new();
        b.seed_aslr(2);
        let ra = a
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        let rb = b
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        assert_ne!(ra, rb);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "data"))
            .unwrap();
        s.write(a + 100, b"checkpoint me").unwrap();
        let mut buf = [0u8; 13];
        s.read(a + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"checkpoint me");
    }

    #[test]
    fn read_unmapped_faults() {
        let s = space();
        let mut buf = [0u8; 4];
        assert!(matches!(
            s.read(Addr(UPPER_BASE), &mut buf),
            Err(MemError::Fault(_))
        ));
    }

    #[test]
    fn write_readonly_is_protection_error() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "ro").prot(Prot::READ))
            .unwrap();
        assert!(matches!(s.write(a, b"x"), Err(MemError::Protection(_))));
        let mut buf = [0u8; 1];
        assert!(s.read(a, &mut buf).is_ok());
    }

    #[test]
    fn munmap_then_access_faults() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(2 * PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        s.write(a, &[1, 2, 3]).unwrap();
        s.munmap(a, 2 * PAGE_SIZE).unwrap();
        let mut buf = [0u8; 3];
        assert!(matches!(s.read(a, &mut buf), Err(MemError::Fault(_))));
    }

    #[test]
    fn partial_munmap_splits_region_and_keeps_content() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        s.write(a, &[0xaa; 8]).unwrap();
        s.write(a + 3 * PAGE_SIZE, &[0xbb; 8]).unwrap();
        // Punch out the middle two pages.
        s.munmap(a + PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(s.region_count(), 2);
        let mut head = [0u8; 8];
        s.read(a, &mut head).unwrap();
        assert_eq!(head, [0xaa; 8]);
        let mut tail = [0u8; 8];
        s.read(a + 3 * PAGE_SIZE, &mut tail).unwrap();
        assert_eq!(tail, [0xbb; 8]);
        let mut buf = [0u8; 1];
        assert!(s.read(a + PAGE_SIZE, &mut buf).is_err());
    }

    #[test]
    fn map_fixed_overwrites_existing_mapping() {
        // Reproduces the Section 3.2.2 hazard: a lower-half MAP_FIXED call can
        // silently clobber upper-half pages.
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "victim"))
            .unwrap();
        s.write(a + PAGE_SIZE, &[7u8; 16]).unwrap();
        // Upper-half range address, but mapped on behalf of the lower half is
        // not allowed (OutsideHalf); overwrite within the same half instead.
        let b = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "intruder").at(a + PAGE_SIZE))
            .unwrap();
        assert_eq!(b, a + PAGE_SIZE);
        // The overwritten page reads as zero now (fresh mapping).
        let mut buf = [1u8; 16];
        s.read(a + PAGE_SIZE, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        // Head and tail of the victim still exist.
        assert!(s.region_at(a).is_some());
        assert!(s.region_at(a + 2 * PAGE_SIZE).is_some());
    }

    #[test]
    fn map_fixed_outside_half_is_rejected() {
        let mut s = space();
        let err = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Lower, "x").at(Addr(UPPER_BASE)))
            .unwrap_err();
        assert_eq!(err, MemError::OutsideHalf);
    }

    #[test]
    fn mprotect_splits_and_applies() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "x"))
            .unwrap();
        s.mprotect(a + PAGE_SIZE, PAGE_SIZE, Prot::READ).unwrap();
        assert_eq!(s.region_count(), 3);
        assert!(s.write(a, &[1]).is_ok());
        assert!(matches!(
            s.write(a + PAGE_SIZE, &[1]),
            Err(MemError::Protection(_))
        ));
        assert!(s.write(a + 2 * PAGE_SIZE, &[1]).is_ok());
    }

    #[test]
    fn mprotect_unmapped_faults() {
        let mut s = space();
        assert!(matches!(
            s.mprotect(Addr(UPPER_BASE), PAGE_SIZE, Prot::READ),
            Err(MemError::Fault(_))
        ));
    }

    #[test]
    fn consolidate_merges_adjacent_upper_regions() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "a"))
            .unwrap();
        let b = s
            .mmap(MapRequest::anon(PAGE_SIZE, Half::Upper, "b"))
            .unwrap();
        assert_eq!(b, a + PAGE_SIZE);
        s.write(b, &[9u8; 4]).unwrap();
        let eliminated = s.consolidate_upper_half();
        assert_eq!(eliminated, 1);
        assert_eq!(s.region_count(), 1);
        let mut buf = [0u8; 4];
        s.read(b, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 4]);
    }

    #[test]
    fn stats_track_halves_separately() {
        let mut s = space();
        s.mmap(MapRequest::anon(3 * PAGE_SIZE, Half::Upper, "u"))
            .unwrap();
        s.mmap(MapRequest::anon(5 * PAGE_SIZE, Half::Lower, "l"))
            .unwrap();
        let st = s.stats();
        assert_eq!(st.upper_bytes, 3 * PAGE_SIZE);
        assert_eq!(st.lower_bytes, 5 * PAGE_SIZE);
        assert_eq!(st.region_count, 2);
        assert_eq!(st.mmap_calls, 2);
    }

    #[test]
    fn zero_length_requests_are_rejected() {
        let mut s = space();
        assert_eq!(
            s.mmap(MapRequest::anon(0, Half::Upper, "x")).unwrap_err(),
            MemError::ZeroLength
        );
        assert_eq!(
            s.munmap(Addr(UPPER_BASE), 0).unwrap_err(),
            MemError::ZeroLength
        );
    }

    #[test]
    fn sparse_copy_moves_only_dirty_bytes() {
        let mut s = space();
        let src = s
            .mmap(MapRequest::anon(1 << 20, Half::Upper, "src"))
            .unwrap();
        let dst = s
            .mmap(MapRequest::anon(1 << 20, Half::Upper, "dst"))
            .unwrap();
        // Write two small islands far apart, at unaligned offsets.
        s.write(src + 100, b"island one").unwrap();
        s.write(src + 700_000, b"island two").unwrap();
        let copied = s.sparse_copy(dst, src, 1 << 20).unwrap();
        assert!(copied <= 2 * PAGE_SIZE);
        let mut buf = [0u8; 10];
        s.read(dst + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"island one");
        s.read(dst + 700_000, &mut buf).unwrap();
        assert_eq!(&buf, b"island two");
        // Untouched bytes read back as zero.
        s.read(dst + 5_000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 10]);
        // The destination stayed sparse.
        let dst_region = s.region_at(dst).unwrap();
        assert!(dst_region.resident_pages() <= 3);
    }

    #[test]
    fn sparse_copy_respects_sub_range_boundaries() {
        let mut s = space();
        let src = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "src"))
            .unwrap();
        let dst = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "dst"))
            .unwrap();
        s.fill(src, 4 * PAGE_SIZE, 0x11).unwrap();
        // Copy only an interior window starting at an unaligned offset.
        let copied = s.sparse_copy(dst, src + 300, 5000).unwrap();
        assert_eq!(copied, 5000);
        let mut buf = [0u8; 1];
        s.read(dst + 4999, &mut buf).unwrap();
        assert_eq!(buf, [0x11]);
        s.read(dst + 5000, &mut buf).unwrap();
        assert_eq!(buf, [0x00]);
    }

    #[test]
    fn absent_pages_fault_until_installed() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(4 * PAGE_SIZE, Half::Upper, "lazy"))
            .unwrap();
        s.declare_absent(a + PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(s.absent_pages(), 2);
        let mut buf = [0u8; 4];
        // Resident neighbours stay accessible.
        assert!(s.read(a, &mut buf).is_ok());
        assert!(s.write(a + 3 * PAGE_SIZE, &[1]).is_ok());
        // First touch of an absent page — read, write or fill — faults.
        assert_eq!(
            s.read(a + PAGE_SIZE, &mut buf),
            Err(MemError::NotResident(a + PAGE_SIZE))
        );
        assert!(matches!(
            s.write(a + 2 * PAGE_SIZE, &[1]),
            Err(MemError::NotResident(_))
        ));
        assert!(matches!(
            s.fill(a, 4 * PAGE_SIZE, 0x77),
            Err(MemError::NotResident(_))
        ));
        // The privileged install ignores protection bits and clears marks.
        s.mprotect(a, 4 * PAGE_SIZE, Prot::READ).unwrap();
        let content = vec![0xCD; 2 * PAGE_SIZE as usize];
        assert_eq!(s.install_resident(a + PAGE_SIZE, &content).unwrap(), 2);
        assert_eq!(s.absent_pages(), 0);
        s.read(a + PAGE_SIZE, &mut buf).unwrap();
        assert_eq!(buf, [0xCD; 4]);
    }

    #[test]
    fn absent_marks_survive_region_splits_and_unmap() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(6 * PAGE_SIZE, Half::Upper, "lazy"))
            .unwrap();
        s.declare_absent(a, 6 * PAGE_SIZE).unwrap();
        // Splitting the region (mprotect boundary) keeps both sides absent.
        s.mprotect(a + 2 * PAGE_SIZE, 2 * PAGE_SIZE, Prot::READ)
            .unwrap();
        let mut buf = [0u8; 1];
        assert!(matches!(s.read(a, &mut buf), Err(MemError::NotResident(_))));
        assert!(matches!(
            s.read(a + 3 * PAGE_SIZE, &mut buf),
            Err(MemError::NotResident(_))
        ));
        assert_eq!(s.absent_pages(), 6);
        // Unmapping drops the covered marks; installing over the hole is a
        // silent skip (the content is dead), not an error.
        s.munmap(a + 4 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(s.absent_pages(), 5);
        let page = vec![0xEE; PAGE_SIZE as usize];
        assert_eq!(s.install_resident(a + 4 * PAGE_SIZE, &page).unwrap(), 0);
        assert_eq!(s.install_resident(a + 5 * PAGE_SIZE, &page).unwrap(), 1);
        s.read(a + 5 * PAGE_SIZE, &mut buf).unwrap();
        assert_eq!(buf, [0xEE]);
    }

    #[test]
    fn fill_initialises_large_region_sparsely() {
        let mut s = space();
        let a = s
            .mmap(MapRequest::anon(1 << 20, Half::Upper, "big"))
            .unwrap();
        s.fill(a, 1 << 20, 0x5a).unwrap();
        let mut buf = [0u8; 2];
        s.read(a + (1 << 19), &mut buf).unwrap();
        assert_eq!(buf, [0x5a, 0x5a]);
    }
}
