//! Simulated process virtual address space.
//!
//! CRAC's split-process architecture places two programs — the CUDA
//! application (*upper half*) and a helper program containing the CUDA
//! library (*lower half*) — into a single process address space.  The
//! checkpoint logic then has to answer questions like *which memory regions
//! belong to the upper half?* in the presence of `/proc/PID/maps` region
//! merging, library-allocated arenas and `MAP_FIXED` overwrites.
//!
//! This crate reproduces exactly those address-space phenomena in a
//! deterministic, in-process model:
//!
//! * [`AddressSpace`] — `mmap` / `munmap` / `mprotect` with optional
//!   `MAP_FIXED` placement, first-fit allocation, and an ASLR toggle
//!   (the analogue of `personality(ADDR_NO_RANDOMIZE)`).
//! * [`Region`] — a mapping with protection bits, an upper/lower-half tag,
//!   a human-readable label and sparse page-granular backing storage.
//! * [`maps`] — the *merged* `/proc/PID/maps`-style view in which adjacent
//!   regions with equal protection coalesce, deliberately losing the
//!   upper/lower-half tag (the Section 3.2.2 problem CRAC must work around).
//!
//! The backing store is sparse: only pages that have actually been written
//! consume host memory, so multi-gigabyte simulated allocations (e.g. the
//! HYPRE workload's 2.3 GB footprint) remain cheap while logical sizes — and
//! therefore checkpoint-image sizes — stay faithful.

pub mod addr;
pub mod maps;
pub mod region;
pub mod shared;
pub mod space;

pub use addr::{page_align_down, page_align_up, Addr, Prot, PAGE_SIZE};
pub use maps::MapsEntry;
pub use region::PageStore;
pub use region::{page_runs, page_runs_coalesced, Half, Page, PageRun, Region, RegionId};
pub use shared::{PageFaultHandler, SharedSpace};
pub use space::{AddressSpace, MapRequest, MemError, SpaceStats};
