//! The merged `/proc/PID/maps`-style view of an address space.
//!
//! DMTCP (the host checkpointer) decides what to save by reading
//! `/proc/PID/maps`.  The kernel merges adjacent VMAs with identical
//! permissions, so two logically distinct mappings — one created by the
//! upper-half application and one by the lower-half CUDA library — can appear
//! as a *single* entry.  Section 3.2.2 of the paper identifies this as one of
//! the reasons CRAC must track upper-half allocations itself instead of
//! trusting the maps view.  [`merged_view`] reproduces that merging.

use std::fmt;

use crate::addr::{Addr, Prot};
use crate::region::Region;

/// One line of the merged `/proc/PID/maps` view.
///
/// Note the deliberate absence of a [`crate::Half`] field: the kernel has no
/// idea which half created a mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapsEntry {
    /// Start address of the merged range.
    pub start: Addr,
    /// Exclusive end address of the merged range.
    pub end: Addr,
    /// Protection bits shared by every region merged into this entry.
    pub prot: Prot,
    /// Labels of the constituent regions, joined with `' '` (roughly the
    /// pathname column; merged entries keep the first label like the kernel
    /// keeps the first VMA's file).
    pub label: String,
    /// How many distinct regions were merged into this entry.
    pub merged_regions: usize,
}

impl MapsEntry {
    /// Length of the merged range in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the entry covers no bytes (never produced by
    /// [`merged_view`], present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

impl fmt::Display for MapsEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:012x}-{:012x} {}p {}",
            self.start.as_u64(),
            self.end.as_u64(),
            self.prot,
            self.label
        )
    }
}

/// Builds the merged view from regions already sorted by start address.
///
/// Adjacent regions are coalesced when they are contiguous and share the same
/// protection bits — regardless of which half created them, matching kernel
/// VMA merging behaviour.
pub fn merged_view<'a, I>(regions: I) -> Vec<MapsEntry>
where
    I: IntoIterator<Item = &'a Region>,
{
    let mut out: Vec<MapsEntry> = Vec::new();
    for r in regions {
        match out.last_mut() {
            Some(last) if last.end == r.start && last.prot == r.prot => {
                last.end = r.end();
                last.merged_regions += 1;
            }
            _ => out.push(MapsEntry {
                start: r.start,
                end: r.end(),
                prot: r.prot,
                label: r.label.clone(),
                merged_regions: 1,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Half, PageStore, RegionId};
    use crate::PAGE_SIZE;

    fn region(id: u64, start: u64, pages: u64, prot: Prot, half: Half, label: &str) -> Region {
        Region {
            id: RegionId(id),
            start: Addr(start),
            len: pages * PAGE_SIZE,
            prot,
            half,
            label: label.to_string(),
            store: PageStore::new(),
        }
    }

    #[test]
    fn contiguous_same_prot_regions_merge() {
        let a = region(1, 0x1000, 1, Prot::RW, Half::Upper, "app-heap");
        let b = region(2, 0x2000, 2, Prot::RW, Half::Lower, "cuda-arena");
        let merged = merged_view([&a, &b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].merged_regions, 2);
        assert_eq!(merged[0].len(), 3 * PAGE_SIZE);
        // The merged entry keeps only the first label; the half distinction is
        // gone — this is the information loss CRAC works around.
        assert_eq!(merged[0].label, "app-heap");
    }

    #[test]
    fn different_prot_regions_do_not_merge() {
        let a = region(1, 0x1000, 1, Prot::RX, Half::Upper, "text");
        let b = region(2, 0x2000, 1, Prot::RW, Half::Upper, "data");
        let merged = merged_view([&a, &b]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn gap_prevents_merging() {
        let a = region(1, 0x1000, 1, Prot::RW, Half::Upper, "a");
        let b = region(2, 0x4000, 1, Prot::RW, Half::Upper, "b");
        let merged = merged_view([&a, &b]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn display_formats_like_proc_maps() {
        let a = region(1, 0x1000, 1, Prot::RW, Half::Upper, "[heap]");
        let merged = merged_view([&a]);
        let line = format!("{}", merged[0]);
        assert!(line.contains("000000001000-000000002000"));
        assert!(line.contains("rw-p"));
        assert!(line.contains("[heap]"));
    }
}
