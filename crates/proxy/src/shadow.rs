//! CRUM-style shadow-page UVM support, with its cost and its restriction.
//!
//! CRUM keeps a *shadow copy* of every managed buffer in the application
//! process.  Around every kernel launch it must synchronise: ship the pages
//! the host modified to the proxy (and on to the device), run the kernel,
//! and ship back the pages the kernel modified.  Two consequences the paper
//! highlights:
//!
//! * every launch pays a synchronisation cost proportional to the managed
//!   working set (plus `mprotect`/`userfaultfd` bookkeeping), which is where
//!   CRUM's 6–12 % overhead comes from; and
//! * the scheme only works if the application follows a strict
//!   read-modify-write cycle between launches — concurrent writers from two
//!   streams to the same page, or host writes racing a running kernel, are
//!   unsupported.

use std::collections::{BTreeMap, BTreeSet};

use crac_addrspace::Addr;

/// Errors produced by the shadow-page scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShadowError {
    /// Two different streams wrote the same managed page between two
    /// synchronisation points — CRUM's scheme cannot order those writes.
    ConcurrentWriters { page: u64 },
    /// The pointer is not a registered managed buffer.
    NotManaged(u64),
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::ConcurrentWriters { page } => {
                write!(f, "concurrent stream writers to managed page {page}")
            }
            ShadowError::NotManaged(p) => write!(f, "0x{p:x} is not a managed buffer"),
        }
    }
}

impl std::error::Error for ShadowError {}

/// Book-keeping for one epoch (the interval between two kernel launches).
#[derive(Debug, Default)]
struct Epoch {
    /// Pages dirtied by the host since the last sync.
    host_dirty: BTreeSet<u64>,
    /// Pages dirtied by kernels, with the stream that wrote them.
    device_dirty: BTreeMap<u64, u32>,
}

/// The shadow-page UVM manager of a CRUM-like system.
#[derive(Debug, Default)]
pub struct ShadowUvm {
    /// Managed ranges: start → length.
    ranges: BTreeMap<u64, u64>,
    page_bytes: u64,
    epoch: Epoch,
    /// Cumulative pages synchronised in either direction.
    pub pages_synced: u64,
    /// Cumulative mprotect/userfaultfd operations performed.
    pub protection_flips: u64,
}

impl ShadowUvm {
    /// Creates a manager with the given shadow-page granularity.
    pub fn new(page_bytes: u64) -> Self {
        Self {
            page_bytes: page_bytes.max(1),
            ..Default::default()
        }
    }

    /// Registers a managed buffer.
    pub fn register(&mut self, ptr: Addr, len: u64) {
        self.ranges.insert(ptr.as_u64(), len);
    }

    /// Total managed bytes.
    pub fn managed_bytes(&self) -> u64 {
        self.ranges.values().sum()
    }

    fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_bytes
    }

    fn check_managed(&self, ptr: Addr) -> Result<(), ShadowError> {
        let ok = self
            .ranges
            .range(..=ptr.as_u64())
            .next_back()
            .map(|(start, len)| ptr.as_u64() < start + len)
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            Err(ShadowError::NotManaged(ptr.as_u64()))
        }
    }

    /// Records a host write to managed memory (detected via mprotect traps in
    /// the real CRUM; each trap is a protection flip).
    pub fn host_write(&mut self, ptr: Addr, len: u64) -> Result<(), ShadowError> {
        self.check_managed(ptr)?;
        let first = self.page_of(ptr.as_u64());
        let last = self.page_of(ptr.as_u64() + len.max(1) - 1);
        for p in first..=last {
            if self.epoch.host_dirty.insert(p) {
                self.protection_flips += 1;
            }
        }
        Ok(())
    }

    /// Records a kernel (device-side) write to managed memory by a stream.
    pub fn device_write(&mut self, ptr: Addr, len: u64, stream: u32) -> Result<(), ShadowError> {
        self.check_managed(ptr)?;
        let first = self.page_of(ptr.as_u64());
        let last = self.page_of(ptr.as_u64() + len.max(1) - 1);
        for p in first..=last {
            match self.epoch.device_dirty.get(&p) {
                Some(&other) if other != stream => {
                    return Err(ShadowError::ConcurrentWriters { page: p });
                }
                _ => {
                    self.epoch.device_dirty.insert(p, stream);
                }
            }
        }
        Ok(())
    }

    /// Synchronises shadow pages around a kernel launch and returns the
    /// number of bytes that must cross the IPC channel (host-dirty pages to
    /// the proxy plus device-dirty pages back).
    pub fn sync_for_launch(&mut self) -> u64 {
        let pages = (self.epoch.host_dirty.len() + self.epoch.device_dirty.len()) as u64;
        self.pages_synced += pages;
        // Re-protecting every synced page costs another flip each.
        self.protection_flips += pages;
        self.epoch = Epoch::default();
        pages * self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    fn shadow_with_range(len: u64) -> (ShadowUvm, Addr) {
        let mut s = ShadowUvm::new(PAGE);
        let base = Addr(PAGE * 100);
        s.register(base, len);
        (s, base)
    }

    #[test]
    fn read_modify_write_cycle_is_supported() {
        let (mut s, base) = shadow_with_range(16 * PAGE);
        s.host_write(base, 2 * PAGE).unwrap();
        let shipped = s.sync_for_launch();
        assert_eq!(shipped, 2 * PAGE);
        s.device_write(base, 2 * PAGE, 1).unwrap();
        let back = s.sync_for_launch();
        assert_eq!(back, 2 * PAGE);
        assert_eq!(s.pages_synced, 4);
        assert!(s.protection_flips >= 4);
    }

    #[test]
    fn concurrent_stream_writers_to_one_page_fail() {
        let (mut s, base) = shadow_with_range(4 * PAGE);
        s.device_write(base, PAGE, 1).unwrap();
        // Same stream again: fine.
        s.device_write(base, PAGE, 1).unwrap();
        // A different stream touching the same page: unsupported.
        let err = s.device_write(base, PAGE, 2).unwrap_err();
        assert!(matches!(err, ShadowError::ConcurrentWriters { .. }));
    }

    #[test]
    fn sync_cost_scales_with_dirty_footprint_not_allocation_size() {
        let (mut s, base) = shadow_with_range(1 << 20);
        s.host_write(base, 3 * PAGE).unwrap();
        assert_eq!(s.sync_for_launch(), 3 * PAGE);
        // Nothing dirtied since: the next launch ships nothing.
        assert_eq!(s.sync_for_launch(), 0);
    }

    #[test]
    fn unmanaged_pointers_are_rejected() {
        let (mut s, base) = shadow_with_range(PAGE);
        assert!(s.host_write(base + 10 * PAGE, 8).is_err());
        assert!(s.device_write(Addr(1), 8, 0).is_err());
        assert_eq!(s.managed_bytes(), PAGE);
    }
}
