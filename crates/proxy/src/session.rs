//! A proxy-process CUDA session: every call is forwarded over IPC.
//!
//! The proxy process owns the real CUDA library (and therefore the GPU);
//! the application holds only opaque handles.  Host buffers live in the
//! application, so every `cudaMemcpy` of host data and every kernel argument
//! buffer must be shipped across the process boundary — the overhead CRAC's
//! single-address-space design eliminates.

use std::sync::Arc;

use crac_addrspace::{Addr, SharedSpace};
use crac_cudart::{CudaError, CudaResult, CudaRuntime, FunctionHandle, MemcpyKind, RuntimeConfig};
use crac_gpu::{KernelCost, LaunchDims, StreamId};

use crate::ipc::{CmaChannel, IpcStats};

/// Size of the marshalled argument block shipped with every forwarded call
/// (call id, handles, scalar arguments).
const CALL_HEADER_BYTES: u64 = 256;

/// A CUDA application talking to the GPU through a proxy process.
pub struct ProxySession {
    /// The proxy process's CUDA runtime (owns the GPU).
    runtime: Arc<CudaRuntime>,
    /// The IPC channel between application and proxy.
    cma: CmaChannel,
    /// The (shared, simulated) address space — used to model the fact that
    /// the application's host buffers must be shipped by value.
    space: SharedSpace,
}

impl ProxySession {
    /// Launches an application under the proxy-based system.
    pub fn launch(config: RuntimeConfig) -> Self {
        let space = SharedSpace::new_no_aslr();
        let runtime = CudaRuntime::new(config, space.clone());
        let cma = CmaChannel::new(Arc::clone(runtime.device().clock()));
        Self {
            runtime,
            cma,
            space,
        }
    }

    /// The proxy-side runtime (for metrics and assertions).
    pub fn runtime(&self) -> &Arc<CudaRuntime> {
        &self.runtime
    }

    /// The simulated address space.
    pub fn space(&self) -> &SharedSpace {
        &self.space
    }

    /// Cumulative IPC statistics.
    pub fn ipc_stats(&self) -> IpcStats {
        self.cma.stats()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.runtime.device().clock().now()
    }

    /// `cudaMalloc`, forwarded.
    pub fn malloc(&self, bytes: u64) -> CudaResult<Addr> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.malloc(bytes)
        })
    }

    /// `cudaMallocManaged`, forwarded.  (CRCUDA rejects this entirely; CRUM
    /// supports it through shadow pages — see [`crate::shadow`].)
    pub fn malloc_managed(&self, bytes: u64) -> CudaResult<Addr> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.malloc_managed(bytes)
        })
    }

    /// `cudaFree`, forwarded.
    pub fn free(&self, ptr: Addr) -> CudaResult<()> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.free(ptr)
        })
    }

    /// `cudaMemcpy`, forwarded.  Host-sourced data is shipped to the proxy by
    /// value; device-to-host results are shipped back.
    pub fn memcpy(&self, dst: Addr, src: Addr, bytes: u64, kind: MemcpyKind) -> CudaResult<()> {
        let (to_proxy, from_proxy) = match kind {
            MemcpyKind::HostToDevice | MemcpyKind::HostToHost => (bytes, 0),
            MemcpyKind::DeviceToHost => (0, bytes),
            MemcpyKind::DeviceToDevice | MemcpyKind::Default => (0, 0),
        };
        self.cma.forward(
            CALL_HEADER_BYTES + to_proxy,
            CALL_HEADER_BYTES + from_proxy,
            || self.runtime.memcpy(dst, src, bytes, kind),
        )
    }

    /// `cudaStreamCreate`, forwarded.
    pub fn stream_create(&self) -> CudaResult<StreamId> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.stream_create()
        })
    }

    /// `cudaStreamSynchronize`, forwarded.
    pub fn stream_synchronize(&self, s: StreamId) -> CudaResult<()> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.stream_synchronize(s)
        })
    }

    /// `__cudaRegisterFatBinary` + `__cudaRegisterFunction`, forwarded (the
    /// whole fat binary image must be shipped to the proxy).
    pub fn register_kernel(
        &self,
        name: &str,
        body: Option<crac_gpu::kernel::KernelBody>,
        fatbin_bytes: u64,
    ) -> CudaResult<FunctionHandle> {
        self.cma
            .forward(CALL_HEADER_BYTES + fatbin_bytes, CALL_HEADER_BYTES, || {
                let fb = self.runtime.register_fat_binary();
                self.runtime.register_function(fb, name, body)
            })
    }

    /// `cudaLaunchKernel`, forwarded.  `arg_buffer_bytes` is how much user
    /// data must be shipped with the launch (zero when all arguments are
    /// device pointers; large when the application passes host buffers by
    /// value, as the Table 3 harness does).
    #[allow(clippy::too_many_arguments)]
    pub fn launch_kernel(
        &self,
        function: FunctionHandle,
        dims: LaunchDims,
        cost: KernelCost,
        args: Vec<u64>,
        stream: StreamId,
        arg_buffer_bytes: u64,
        result_bytes: u64,
    ) -> CudaResult<()> {
        self.cma.forward(
            CALL_HEADER_BYTES + arg_buffer_bytes,
            CALL_HEADER_BYTES + result_bytes,
            || {
                self.runtime
                    .launch_kernel(function, dims, cost, args, stream)
            },
        )
    }

    /// `cudaDeviceSynchronize`, forwarded.
    pub fn device_synchronize(&self) -> CudaResult<()> {
        self.cma.forward(CALL_HEADER_BYTES, CALL_HEADER_BYTES, || {
            self.runtime.device_synchronize()
        })
    }

    /// Host access to managed memory under a proxy-based system.  The
    /// application process does not own the UVM mapping, so this is where
    /// CRUM must interpose with shadow pages; plain proxy systems (CRCUDA)
    /// simply cannot support it.
    pub fn host_touch_managed_unsupported(&self) -> CudaError {
        CudaError::InvalidValue("UVM host access is not supported by a plain proxy (CRCUDA)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> ProxySession {
        ProxySession::launch(RuntimeConfig::test())
    }

    #[test]
    fn forwarded_calls_work_but_cost_ipc_time() {
        let s = session();
        let dev = s.malloc(4096).unwrap();
        let host = s
            .space()
            .mmap(crac_addrspace::MapRequest::anon(
                4096,
                crac_addrspace::Half::Upper,
                "app-buf",
            ))
            .unwrap();
        s.space().write_bytes(host, &[3u8; 1024]).unwrap();
        let before = s.now_ns();
        s.memcpy(dev, host, 1024, MemcpyKind::HostToDevice).unwrap();
        let elapsed = s.now_ns() - before;
        // Per-call cost alone is 30 µs; a direct call would be ~1 µs.
        assert!(elapsed >= CmaChannel::DEFAULT_PER_CALL_NS);
        let mut out = [0u8; 16];
        s.space().read_bytes(dev, &mut out).unwrap();
        assert_eq!(out, [3u8; 16]);
        assert_eq!(s.ipc_stats().calls, 2);
        s.free(dev).unwrap();
    }

    #[test]
    fn launch_ships_argument_buffers_by_value() {
        let s = session();
        let k = s.register_kernel("noop", None, 1 << 20).unwrap();
        let before = s.now_ns();
        s.launch_kernel(
            k,
            LaunchDims::linear(1, 32),
            KernelCost::compute(10),
            vec![],
            StreamId::DEFAULT,
            10 << 20,
            0,
        )
        .unwrap();
        let elapsed = s.now_ns() - before;
        // 10 MB at 6 B/ns ≈ 1.7 ms of pure IPC before the kernel even runs.
        assert!(elapsed >= 1_500_000, "elapsed {elapsed}");
    }

    #[test]
    fn device_to_host_results_are_shipped_back() {
        let s = session();
        let dev = s.malloc(1 << 20).unwrap();
        let host = s
            .space()
            .mmap(crac_addrspace::MapRequest::anon(
                1 << 20,
                crac_addrspace::Half::Upper,
                "out",
            ))
            .unwrap();
        s.memcpy(host, dev, 1 << 20, MemcpyKind::DeviceToHost)
            .unwrap();
        let stats = s.ipc_stats();
        assert!(stats.bytes_from_proxy >= 1 << 20);
    }

    #[test]
    fn plain_proxy_reports_uvm_host_access_unsupported() {
        let s = session();
        let err = s.host_touch_managed_unsupported();
        assert!(matches!(err, CudaError::InvalidValue(_)));
    }
}
