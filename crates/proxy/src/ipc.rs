//! The Cross-Memory-Attach (CMA) / IPC cost model.
//!
//! Table 3's CMA/IPC column is produced by copying every operand buffer from
//! the application process to the proxy process (`process_vm_readv`) before
//! the CUDA call and copying results back afterwards.  The dominant costs are
//! a per-call marshalling/syscall overhead and a per-byte copy cost well
//! below PCIe bandwidth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crac_gpu::VirtualClock;

/// Cumulative IPC activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpcStats {
    /// Forwarded calls.
    pub calls: u64,
    /// Bytes copied application → proxy.
    pub bytes_to_proxy: u64,
    /// Bytes copied proxy → application.
    pub bytes_from_proxy: u64,
}

/// A simulated CMA channel between the application and the proxy process.
pub struct CmaChannel {
    clock: Arc<VirtualClock>,
    /// Fixed cost of forwarding one call (marshalling + wakeup + syscalls).
    per_call_ns: u64,
    /// Copy bandwidth in bytes per nanosecond.
    bw_bytes_per_ns: f64,
    calls: AtomicU64,
    to_proxy: AtomicU64,
    from_proxy: AtomicU64,
}

impl CmaChannel {
    /// Default per-call forwarding cost (~30 µs: two syscalls, marshalling,
    /// and a proxy wakeup).
    pub const DEFAULT_PER_CALL_NS: u64 = 30_000;
    /// Default CMA copy bandwidth (~6 GB/s, in line with the effective
    /// `process_vm_readv` rates behind the paper's Table 3 numbers).
    pub const DEFAULT_BW_BYTES_PER_NS: f64 = 6.0;

    /// Creates a channel with the default cost parameters.
    pub fn new(clock: Arc<VirtualClock>) -> Self {
        Self::with_costs(
            clock,
            Self::DEFAULT_PER_CALL_NS,
            Self::DEFAULT_BW_BYTES_PER_NS,
        )
    }

    /// Creates a channel with explicit cost parameters.
    pub fn with_costs(clock: Arc<VirtualClock>, per_call_ns: u64, bw_bytes_per_ns: f64) -> Self {
        Self {
            clock,
            per_call_ns,
            bw_bytes_per_ns: bw_bytes_per_ns.max(f64::MIN_POSITIVE),
            calls: AtomicU64::new(0),
            to_proxy: AtomicU64::new(0),
            from_proxy: AtomicU64::new(0),
        }
    }

    /// Time to copy `bytes` over the channel, in nanoseconds.
    pub fn copy_ns(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            ((bytes as f64 / self.bw_bytes_per_ns).ceil() as u64).max(1)
        }
    }

    /// Forwards one call that ships `bytes_in` to the proxy and receives
    /// `bytes_out` back, charging the virtual clock and running `f` (the
    /// actual CUDA work in the proxy).
    pub fn forward<R>(&self, bytes_in: u64, bytes_out: u64, f: impl FnOnce() -> R) -> R {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.to_proxy.fetch_add(bytes_in, Ordering::Relaxed);
        self.from_proxy.fetch_add(bytes_out, Ordering::Relaxed);
        self.clock
            .advance(self.per_call_ns + self.copy_ns(bytes_in) + self.copy_ns(bytes_out));
        f()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IpcStats {
        IpcStats {
            calls: self.calls.load(Ordering::Relaxed),
            bytes_to_proxy: self.to_proxy.load(Ordering::Relaxed),
            bytes_from_proxy: self.from_proxy.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_charges_per_call_and_per_byte() {
        let clock = VirtualClock::new_shared();
        let cma = CmaChannel::with_costs(Arc::clone(&clock), 1_000, 2.0);
        let r = cma.forward(4_000, 2_000, || 99);
        assert_eq!(r, 99);
        // 1_000 + 4_000/2 + 2_000/2 = 4_000 ns.
        assert_eq!(clock.now(), 4_000);
        let s = cma.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.bytes_to_proxy, 4_000);
        assert_eq!(s.bytes_from_proxy, 2_000);
    }

    #[test]
    fn zero_byte_calls_still_pay_the_per_call_cost() {
        let clock = VirtualClock::new_shared();
        let cma = CmaChannel::with_costs(Arc::clone(&clock), 777, 5.0);
        cma.forward(0, 0, || ());
        assert_eq!(clock.now(), 777);
    }

    #[test]
    fn ipc_is_far_slower_than_direct_calls_for_large_buffers() {
        // The Table 3 effect: for a 100 MB operand the IPC copy dominates.
        let clock = VirtualClock::new_shared();
        let cma = CmaChannel::new(Arc::clone(&clock));
        let bytes = 100 << 20;
        cma.forward(bytes, 0, || ());
        // At 5 B/ns, 100 MB takes ~21 ms — vs ~0.28 ms for the native call.
        assert!(clock.now() > 10_000_000);
    }
}
