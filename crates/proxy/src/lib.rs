//! Proxy-process checkpointing baselines (CRCUDA / CRUM style).
//!
//! Before CRAC, the way to checkpoint CUDA 4.0+ applications was to keep the
//! un-checkpointable CUDA library in a *separate proxy process*: the
//! application never talks to the GPU directly, every CUDA call is forwarded
//! over IPC, and argument/result buffers are copied between the two
//! processes (CRCUDA, CRUM).  The paper's Table 3 quantifies what that
//! forwarding costs, and Section 2.3 describes why CRUM's shadow-page
//! approach to UVM is both slow and incomplete.
//!
//! This crate is that baseline:
//!
//! * [`ipc`] — the Cross-Memory-Attach (CMA) cost model: a fixed per-call
//!   marshalling cost plus a per-byte copy cost, charged to the same virtual
//!   clock the rest of the simulation uses;
//! * [`session`] — [`ProxySession`]: a CUDA session in which every API call
//!   is forwarded through the IPC channel to a runtime owned by the proxy,
//!   and user buffers travel through CMA;
//! * [`shadow`] — CRUM-style shadow-page UVM: managed buffers are mirrored
//!   in the application process and synchronised around every kernel launch,
//!   with the read-modify-write-per-launch restriction the paper calls out;
//! * [`crum`] — a CRUM-style checkpointer over a proxy session: device state
//!   is drained *through the IPC channel*, so checkpoint time scales with the
//!   IPC bandwidth rather than the PCIe bandwidth.

pub mod crum;
pub mod ipc;
pub mod session;
pub mod shadow;

pub use crum::CrumCheckpointer;
pub use ipc::{CmaChannel, IpcStats};
pub use session::ProxySession;
pub use shadow::{ShadowError, ShadowUvm};
