//! CRUM-style checkpointing over a proxy session.
//!
//! With a proxy, the application process contains no CUDA state and can be
//! checkpointed by stock DMTCP; the CUDA state lives in the proxy, whose
//! device buffers must be drained *through the IPC channel* before the
//! checkpoint and refilled through it at restart.  Compared with CRAC, both
//! the steady-state overhead (every call is forwarded) and the
//! checkpoint-path cost (an extra IPC hop for every drained byte) are higher.

use crac_addrspace::Addr;

use crate::session::ProxySession;

/// Report of one proxy-based checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CrumCkptReport {
    /// Bytes of device state drained through IPC.
    pub drained_bytes: u64,
    /// Checkpoint time in seconds of virtual time.
    pub ckpt_time_s: f64,
}

/// A CRUM-like checkpointer bound to a proxy session.
pub struct CrumCheckpointer {
    /// Active device allocations the application has told us about
    /// (CRUM interposes on the allocation calls just like CRAC does).
    tracked: Vec<(Addr, u64)>,
}

impl Default for CrumCheckpointer {
    fn default() -> Self {
        Self::new()
    }
}

impl CrumCheckpointer {
    /// Creates an empty checkpointer.
    pub fn new() -> Self {
        Self {
            tracked: Vec::new(),
        }
    }

    /// Records an allocation to drain at checkpoint time.
    pub fn track(&mut self, ptr: Addr, len: u64) {
        self.tracked.push((ptr, len));
    }

    /// Stops tracking an allocation (freed).
    pub fn untrack(&mut self, ptr: Addr) {
        self.tracked.retain(|(p, _)| *p != ptr);
    }

    /// Total bytes currently tracked.
    pub fn tracked_bytes(&self) -> u64 {
        self.tracked.iter().map(|(_, l)| *l).sum()
    }

    /// Takes a checkpoint: quiesces the device, then drains every tracked
    /// buffer from the proxy to the application over IPC (device → host copy
    /// in the proxy, then a CMA copy across processes).
    pub fn checkpoint(&self, session: &ProxySession) -> CrumCkptReport {
        let clock = session.runtime().device().clock();
        let t0 = clock.now();
        session.device_synchronize().ok();
        let mut drained = 0u64;
        for (ptr, len) in &self.tracked {
            // Device → host inside the proxy...
            session
                .runtime()
                .device()
                .memcpy_d2h(*ptr, *ptr, *len, None)
                .ok();
            // ...then host(proxy) → host(application) over CMA.  Model the
            // copy cost without moving bytes (the simulated data already
            // lives in the single shared space).
            let copy_ns = {
                let per_byte = crate::ipc::CmaChannel::DEFAULT_BW_BYTES_PER_NS;
                ((*len as f64 / per_byte).ceil()) as u64
            };
            clock.advance(crate::ipc::CmaChannel::DEFAULT_PER_CALL_NS + copy_ns);
            drained += len;
        }
        CrumCkptReport {
            drained_bytes: drained,
            ckpt_time_s: (clock.now() - t0) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crac_cudart::RuntimeConfig;

    #[test]
    fn crum_checkpoint_drains_through_ipc_and_is_slower_than_pcie_alone() {
        let session = ProxySession::launch(RuntimeConfig::test());
        let mut crum = CrumCheckpointer::new();
        let buf = session.malloc(4 << 20).unwrap();
        crum.track(buf, 4 << 20);
        assert_eq!(crum.tracked_bytes(), 4 << 20);

        let report = crum.checkpoint(&session);
        assert_eq!(report.drained_bytes, 4 << 20);
        // PCIe alone at 2 B/ns (test profile) would take ~2 ms for 4 MiB;
        // the extra CMA hop at 5 B/ns adds ~0.8 ms on top.
        assert!(report.ckpt_time_s > 0.002, "took {}", report.ckpt_time_s);

        crum.untrack(buf);
        assert_eq!(crum.tracked_bytes(), 0);
    }

    #[test]
    fn untracked_buffers_are_not_drained() {
        let session = ProxySession::launch(RuntimeConfig::test());
        let crum = CrumCheckpointer::new();
        session.malloc(1 << 20).unwrap();
        let report = crum.checkpoint(&session);
        assert_eq!(report.drained_bytes, 0);
    }
}
