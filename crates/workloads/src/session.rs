//! A mode-agnostic CUDA session so the same application code runs natively
//! or under CRAC.

use std::collections::BTreeMap;
use std::sync::Arc;

use crac_sync::Mutex;

use crac_addrspace::{Addr, SharedSpace};
use crac_core::{CracConfig, CracEvent, CracKernel, CracProcess, CracStream, KernelRegistry};
use crac_cudart::{CudaRuntime, FatBinaryHandle, FunctionHandle, MemcpyKind, RuntimeConfig};
use crac_gpu::{EventId, KernelCost, LaunchDims, StreamId};

/// Error type shared by both modes (stringly typed: the workloads only need
/// to propagate, not to match).
pub type SessionError = String;

/// Result alias for session operations.
pub type SessionResult<T> = Result<T, SessionError>;

/// A running CUDA application, either native or under CRAC.
///
/// Handles (`CracStream`, `CracEvent`, `CracKernel`) are reused for both
/// modes; in native mode they are just indices into the session's own
/// translation tables.
pub enum Session {
    /// Direct calls into the CUDA runtime — the paper's "native" baseline.
    Native(NativeSession),
    /// Calls interposed by CRAC (split process, trampolines, logging).
    Crac(Box<CracProcess>),
}

/// The native (no checkpointing) execution mode.
pub struct NativeSession {
    runtime: Arc<CudaRuntime>,
    registry: Arc<KernelRegistry>,
    fatbin: FatBinaryHandle,
    state: Mutex<NativeState>,
}

#[derive(Default)]
struct NativeState {
    kernels: BTreeMap<u64, FunctionHandle>,
    streams: BTreeMap<u64, StreamId>,
    events: BTreeMap<u64, EventId>,
    next: u64,
}

impl NativeSession {
    fn new(config: RuntimeConfig, registry: Arc<KernelRegistry>) -> Self {
        let runtime = CudaRuntime::new(config, SharedSpace::new_no_aslr());
        let fatbin = runtime.register_fat_binary();
        Self {
            runtime,
            registry,
            fatbin,
            state: Mutex::new(
                "workloads.session.state",
                NativeState {
                    next: 1,
                    ..Default::default()
                },
            ),
        }
    }
}

impl Session {
    /// Launches a native session.
    pub fn native(config: RuntimeConfig, registry: Arc<KernelRegistry>) -> Self {
        Session::Native(NativeSession::new(config, registry))
    }

    /// Launches an application under CRAC.
    pub fn crac(config: CracConfig, registry: Arc<KernelRegistry>) -> Self {
        Session::Crac(Box::new(CracProcess::launch(config, registry)))
    }

    /// Wraps an already-running CRAC process (e.g. one that was just
    /// restarted from a checkpoint image).
    pub fn from_crac(proc: CracProcess) -> Self {
        Session::Crac(Box::new(proc))
    }

    /// The CRAC process inside, if this session runs under CRAC.
    pub fn as_crac(&self) -> Option<&CracProcess> {
        match self {
            Session::Crac(p) => Some(p),
            Session::Native(_) => None,
        }
    }

    /// The simulated address space.
    pub fn space(&self) -> SharedSpace {
        match self {
            Session::Native(n) => n.runtime.space().clone(),
            Session::Crac(p) => p.space().clone(),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            Session::Native(n) => n.runtime.device().clock().now(),
            Session::Crac(p) => p.now_ns(),
        }
    }

    /// Current virtual time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// The paper's "total CUDA calls" counter (3 × launches + other API).
    pub fn total_cuda_calls(&self) -> u64 {
        match self {
            Session::Native(n) => n.runtime.counters().total_cuda_calls(),
            Session::Crac(p) => p.counters().total_cuda_calls(),
        }
    }

    /// The device profile this session runs on.
    pub fn device_profile(&self) -> crac_gpu::DeviceProfile {
        match self {
            Session::Native(n) => n.profile(),
            Session::Crac(p) => p.config().runtime.profile.clone(),
        }
    }

    /// UVM fault/migration counters.
    pub fn uvm_stats(&self) -> crac_gpu::UvmStats {
        match self {
            Session::Native(n) => n.uvm_stats(),
            Session::Crac(p) => p.uvm_stats(),
        }
    }

    /// Peak number of concurrently scheduled kernels observed by the device.
    pub fn peak_concurrent_kernels(&self) -> usize {
        match self {
            Session::Native(n) => n.runtime.device().peak_concurrent_kernels(),
            Session::Crac(p) => p.runtime().device().peak_concurrent_kernels(),
        }
    }

    /// Registers a kernel by name (body taken from the session's registry).
    pub fn register_kernel(&self, name: &str) -> SessionResult<CracKernel> {
        match self {
            Session::Native(n) => {
                let body = n.registry.get(name);
                let h = n
                    .runtime
                    .register_function(n.fatbin, name, body)
                    .map_err(|e| e.to_string())?;
                let mut st = n.state.lock();
                st.next += 1;
                let v = st.next;
                st.kernels.insert(v, h);
                Ok(CracKernel(v))
            }
            Session::Crac(p) => {
                // A CRAC application registers its fat binary once; reuse a
                // per-session fat binary keyed by a fixed virtual handle.
                let fatbin = p.register_fat_binary();
                p.register_function(fatbin, name).map_err(|e| e.to_string())
            }
        }
    }

    /// `cudaMalloc`.
    pub fn malloc(&self, bytes: u64) -> SessionResult<Addr> {
        match self {
            Session::Native(n) => n.runtime.malloc(bytes).map_err(|e| e.to_string()),
            Session::Crac(p) => p.malloc(bytes).map_err(|e| e.to_string()),
        }
    }

    /// `cudaMallocHost`.
    pub fn malloc_host(&self, bytes: u64) -> SessionResult<Addr> {
        match self {
            Session::Native(n) => n.runtime.malloc_host(bytes).map_err(|e| e.to_string()),
            Session::Crac(p) => p.malloc_host(bytes).map_err(|e| e.to_string()),
        }
    }

    /// `cudaMallocManaged`.
    pub fn malloc_managed(&self, bytes: u64) -> SessionResult<Addr> {
        match self {
            Session::Native(n) => n.runtime.malloc_managed(bytes).map_err(|e| e.to_string()),
            Session::Crac(p) => p.malloc_managed(bytes).map_err(|e| e.to_string()),
        }
    }

    /// `cudaFree`.
    pub fn free(&self, ptr: Addr) -> SessionResult<()> {
        match self {
            Session::Native(n) => n.runtime.free(ptr).map_err(|e| e.to_string()),
            Session::Crac(p) => p.free(ptr).map_err(|e| e.to_string()),
        }
    }

    /// `cudaMemcpy`.
    pub fn memcpy(&self, dst: Addr, src: Addr, bytes: u64, kind: MemcpyKind) -> SessionResult<()> {
        match self {
            Session::Native(n) => n
                .runtime
                .memcpy(dst, src, bytes, kind)
                .map_err(|e| e.to_string()),
            Session::Crac(p) => p.memcpy(dst, src, bytes, kind).map_err(|e| e.to_string()),
        }
    }

    /// `cudaMemcpyAsync`.
    pub fn memcpy_async(
        &self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: MemcpyKind,
        stream: CracStream,
    ) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let s = n.lookup_stream(stream)?;
                n.runtime
                    .memcpy_async(dst, src, bytes, kind, s)
                    .map_err(|e| e.to_string())
            }
            Session::Crac(p) => p
                .memcpy_async(dst, src, bytes, kind, stream)
                .map_err(|e| e.to_string()),
        }
    }

    /// `cudaMemset`.
    pub fn memset(&self, ptr: Addr, value: u8, bytes: u64) -> SessionResult<()> {
        match self {
            Session::Native(n) => n
                .runtime
                .memset(ptr, value, bytes)
                .map_err(|e| e.to_string()),
            Session::Crac(p) => p.memset(ptr, value, bytes).map_err(|e| e.to_string()),
        }
    }

    /// `cudaMemPrefetchAsync`.
    pub fn mem_prefetch_async(
        &self,
        ptr: Addr,
        bytes: u64,
        to_device: bool,
        stream: CracStream,
    ) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let s = n.lookup_stream(stream)?;
                n.runtime
                    .mem_prefetch_async(ptr, bytes, to_device, s)
                    .map_err(|e| e.to_string())
            }
            Session::Crac(p) => p
                .mem_prefetch_async(ptr, bytes, to_device, stream)
                .map_err(|e| e.to_string()),
        }
    }

    /// Host access to managed memory.
    pub fn host_touch_managed(&self, ptr: Addr, bytes: u64) {
        match self {
            Session::Native(n) => n.runtime.host_touch_managed(ptr, bytes),
            Session::Crac(p) => p.host_touch_managed(ptr, bytes),
        }
    }

    /// `cudaStreamCreate`.
    pub fn stream_create(&self) -> SessionResult<CracStream> {
        match self {
            Session::Native(n) => {
                let s = n.runtime.stream_create().map_err(|e| e.to_string())?;
                let mut st = n.state.lock();
                st.next += 1;
                let v = st.next;
                st.streams.insert(v, s);
                Ok(CracStream(v))
            }
            Session::Crac(p) => p.stream_create().map_err(|e| e.to_string()),
        }
    }

    /// `cudaStreamDestroy`.
    pub fn stream_destroy(&self, stream: CracStream) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let s = n.lookup_stream(stream)?;
                n.state.lock().streams.remove(&stream.0);
                n.runtime.stream_destroy(s).map_err(|e| e.to_string())
            }
            Session::Crac(p) => p.stream_destroy(stream).map_err(|e| e.to_string()),
        }
    }

    /// `cudaStreamSynchronize`.
    pub fn stream_synchronize(&self, stream: CracStream) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let s = n.lookup_stream(stream)?;
                n.runtime.stream_synchronize(s).map_err(|e| e.to_string())
            }
            Session::Crac(p) => p.stream_synchronize(stream).map_err(|e| e.to_string()),
        }
    }

    /// `cudaEventCreate`.
    pub fn event_create(&self) -> SessionResult<CracEvent> {
        match self {
            Session::Native(n) => {
                let e = n.runtime.event_create().map_err(|e| e.to_string())?;
                let mut st = n.state.lock();
                st.next += 1;
                let v = st.next;
                st.events.insert(v, e);
                Ok(CracEvent(v))
            }
            Session::Crac(p) => p.event_create().map_err(|e| e.to_string()),
        }
    }

    /// `cudaEventRecord`.
    pub fn event_record(&self, event: CracEvent, stream: CracStream) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let e = n.lookup_event(event)?;
                let s = n.lookup_stream(stream)?;
                n.runtime.event_record(e, s).map_err(|e| e.to_string())
            }
            Session::Crac(p) => p.event_record(event, stream).map_err(|e| e.to_string()),
        }
    }

    /// `cudaEventSynchronize`.
    pub fn event_synchronize(&self, event: CracEvent) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let e = n.lookup_event(event)?;
                n.runtime.event_synchronize(e).map_err(|e| e.to_string())
            }
            Session::Crac(p) => p.event_synchronize(event).map_err(|e| e.to_string()),
        }
    }

    /// `cudaEventElapsedTime` (milliseconds).
    pub fn event_elapsed_ms(&self, start: CracEvent, end: CracEvent) -> SessionResult<f64> {
        match self {
            Session::Native(n) => {
                let s = n.lookup_event(start)?;
                let e = n.lookup_event(end)?;
                n.runtime.event_elapsed_ms(s, e).map_err(|e| e.to_string())
            }
            Session::Crac(p) => p.event_elapsed_ms(start, end).map_err(|e| e.to_string()),
        }
    }

    /// `cudaLaunchKernel`.
    pub fn launch(
        &self,
        kernel: CracKernel,
        dims: LaunchDims,
        cost: KernelCost,
        args: Vec<u64>,
        stream: CracStream,
    ) -> SessionResult<()> {
        match self {
            Session::Native(n) => {
                let f = n
                    .state
                    .lock()
                    .kernels
                    .get(&kernel.0)
                    .copied()
                    .ok_or_else(|| "unknown kernel handle".to_string())?;
                let s = n.lookup_stream(stream)?;
                n.runtime
                    .launch_kernel(f, dims, cost, args, s)
                    .map_err(|e| e.to_string())
            }
            Session::Crac(p) => p
                .launch_kernel(kernel, dims, cost, args, stream)
                .map_err(|e| e.to_string()),
        }
    }

    /// `cudaDeviceSynchronize`.
    pub fn device_synchronize(&self) -> SessionResult<()> {
        match self {
            Session::Native(n) => n.runtime.device_synchronize().map_err(|e| e.to_string()),
            Session::Crac(p) => p.device_synchronize().map_err(|e| e.to_string()),
        }
    }
}

impl NativeSession {
    /// The underlying runtime (for metrics and assertions).
    pub fn runtime(&self) -> &Arc<CudaRuntime> {
        &self.runtime
    }

    /// The device profile this session runs on.
    pub fn profile(&self) -> crac_gpu::DeviceProfile {
        self.runtime.config().profile.clone()
    }

    /// UVM fault/migration counters.
    pub fn uvm_stats(&self) -> crac_gpu::UvmStats {
        self.runtime.device().uvm_stats()
    }

    fn lookup_stream(&self, stream: CracStream) -> SessionResult<StreamId> {
        if stream == CracStream::DEFAULT {
            return Ok(StreamId::DEFAULT);
        }
        self.state
            .lock()
            .streams
            .get(&stream.0)
            .copied()
            .ok_or_else(|| "unknown stream handle".to_string())
    }

    fn lookup_event(&self, event: CracEvent) -> SessionResult<EventId> {
        self.state
            .lock()
            .events
            .get(&event.0)
            .copied()
            .ok_or_else(|| "unknown event handle".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::registry;

    fn both_sessions() -> Vec<Session> {
        vec![
            Session::native(RuntimeConfig::test(), registry()),
            Session::crac(CracConfig::test("session-test"), registry()),
        ]
    }

    #[test]
    fn same_application_code_runs_in_both_modes() {
        for session in both_sessions() {
            let k = session.register_kernel("iota").unwrap();
            let dev = session.malloc(1024).unwrap();
            let s = session.stream_create().unwrap();
            session
                .launch(
                    k,
                    LaunchDims::linear(1, 64),
                    KernelCost::new(256, 1024),
                    vec![dev.as_u64(), 256],
                    s,
                )
                .unwrap();
            session.stream_synchronize(s).unwrap();
            let mut out = vec![0f32; 256];
            session.space().read_f32(dev, &mut out).unwrap();
            assert_eq!(out[200], 200.0);
            session.free(dev).unwrap();
            session.stream_destroy(s).unwrap();
            assert!(session.total_cuda_calls() > 0);
            assert!(session.now_ns() > 0);
        }
    }

    #[test]
    fn events_measure_kernel_time_in_both_modes() {
        for session in both_sessions() {
            let k = session.register_kernel("work").unwrap();
            let s = session.stream_create().unwrap();
            let start = session.event_create().unwrap();
            let end = session.event_create().unwrap();
            session.event_record(start, s).unwrap();
            session
                .launch(
                    k,
                    LaunchDims::linear(8, 128),
                    KernelCost::compute(5_000_000),
                    vec![],
                    s,
                )
                .unwrap();
            session.event_record(end, s).unwrap();
            session.event_synchronize(end).unwrap();
            let ms = session.event_elapsed_ms(start, end).unwrap();
            assert!(ms >= 1.0, "elapsed {ms}");
        }
    }

    #[test]
    fn unknown_handles_are_rejected_in_both_modes() {
        for session in both_sessions() {
            assert!(session.stream_synchronize(CracStream(9999)).is_err());
            assert!(session
                .launch(
                    CracKernel(9999),
                    LaunchDims::linear(1, 1),
                    KernelCost::compute(1),
                    vec![],
                    CracStream::DEFAULT
                )
                .is_err());
        }
    }
}
