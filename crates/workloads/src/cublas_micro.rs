//! The Table 3 micro-benchmark: cuBLAS calls under native, CRAC and a
//! proxy/IPC (CMA) regime.
//!
//! The paper times `cublasSdot`, `cublasSgemv` and `cublasSgemm` with 1 MB,
//! 10 MB and 100 MB operands over a 10 000-call loop and reports the
//! per-call time in milliseconds for: native CUDA, CRAC (the cuBLAS library
//! sits in the lower half and is called directly through the trampoline),
//! and CMA/IPC (the operand buffers are copied to a proxy process before the
//! call and the result copied back — what CRCUDA/CRUM-style systems do).

use std::sync::Arc;

use crac_addrspace::SharedSpace;
use crac_cudart::{Cublas, CudaRuntime, RuntimeConfig};
use crac_gpu::{StreamId, VirtualClock};
use crac_proxy::CmaChannel;
use crac_splitproc::{FsRegisterMode, TrampolineTable};

/// Which BLAS routine a row measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlasRoutine {
    /// Inner product of two vectors.
    Sdot,
    /// Matrix-vector product.
    Sgemv,
    /// Matrix-matrix product.
    Sgemm,
}

impl BlasRoutine {
    /// Name as printed in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            BlasRoutine::Sdot => "cublasSdot",
            BlasRoutine::Sgemv => "cublasSgemv",
            BlasRoutine::Sgemm => "cublasSgemm",
        }
    }
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// The routine measured.
    pub routine: BlasRoutine,
    /// Operand size in MB (1, 10 or 100).
    pub data_mb: u64,
    /// Native per-call time in milliseconds.
    pub native_ms: f64,
    /// CRAC per-call time in milliseconds.
    pub crac_ms: f64,
    /// CRAC overhead over native, in percent.
    pub crac_overhead_pct: f64,
    /// CMA/IPC per-call time in milliseconds.
    pub ipc_ms: f64,
    /// CMA/IPC overhead over native, in percent.
    pub ipc_overhead_pct: f64,
}

struct BlasBench {
    rt: Arc<CudaRuntime>,
    blas: Cublas,
    x: crac_addrspace::Addr,
    y: crac_addrspace::Addr,
    z: crac_addrspace::Addr,
}

impl BlasBench {
    fn new() -> Self {
        let rt = CudaRuntime::new(RuntimeConfig::v100(), SharedSpace::new_no_aslr());
        // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
        let blas = Cublas::new(Arc::clone(&rt)).unwrap();
        // Largest operands are 100 MB; allocate three of them once.
        let bytes = 100 << 20;
        // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
        let x = rt.malloc(bytes).unwrap();
        // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
        let y = rt.malloc(bytes).unwrap();
        // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
        let z = rt.malloc(bytes).unwrap();
        Self { rt, blas, x, y, z }
    }

    /// Issues one call of `routine` with `data_mb` operands and waits for it.
    fn one_call(&self, routine: BlasRoutine, data_mb: u64) {
        match routine {
            BlasRoutine::Sdot => {
                let n = (data_mb << 20) / 4;
                self.blas
                    .sdot(n, self.x, self.y, self.z, StreamId::DEFAULT)
                    // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
                    .unwrap();
            }
            BlasRoutine::Sgemv => {
                let dim = (((data_mb << 20) / 4) as f64).sqrt() as u64;
                self.blas
                    .sgemv(dim, dim, self.x, self.y, self.z, StreamId::DEFAULT)
                    // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
                    .unwrap();
            }
            BlasRoutine::Sgemm => {
                let dim = (((data_mb << 20) / 4) as f64).sqrt() as u64;
                self.blas
                    .sgemm(dim, dim, dim, self.x, self.y, self.z, StreamId::DEFAULT)
                    // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
                    .unwrap();
            }
        }
        // crac-lint: allow(no-unwrap) — deterministic simulated device — an op failure is a harness bug, abort
        self.rt.device_synchronize().unwrap();
    }

    /// Bytes of operand data the application would have to ship to a proxy
    /// for one call (all input operands) and receive back (the result).
    fn ipc_bytes(routine: BlasRoutine, data_mb: u64) -> (u64, u64) {
        let b = data_mb << 20;
        match routine {
            BlasRoutine::Sdot => (2 * b, 4),
            BlasRoutine::Sgemv => (
                b + (b as f64).sqrt() as u64 * 4,
                (b as f64).sqrt() as u64 * 4,
            ),
            BlasRoutine::Sgemm => (2 * b, b),
        }
    }

    fn clock(&self) -> &Arc<VirtualClock> {
        self.rt.device().clock()
    }
}

/// Measures one Table 3 row with `iters` calls per regime.
pub fn measure_row(routine: BlasRoutine, data_mb: u64, iters: u32) -> Table3Row {
    let bench = BlasBench::new();
    let per_call_ms = |total_ns: u64| total_ns as f64 / 1e6 / iters as f64;

    // Native: direct calls.
    let t0 = bench.clock().now();
    for _ in 0..iters {
        bench.one_call(routine, data_mb);
    }
    let native_ms = per_call_ms(bench.clock().now() - t0);

    // CRAC: the same calls, each crossing the upper→lower trampoline with
    // CRAC's per-call bookkeeping cost.
    let trampolines = TrampolineTable::new(FsRegisterMode::KernelCall, Arc::clone(bench.clock()));
    trampolines.set_extra_crossing_cost(120);
    let t0 = bench.clock().now();
    for _ in 0..iters {
        trampolines.call(|| bench.one_call(routine, data_mb));
    }
    let crac_ms = per_call_ms(bench.clock().now() - t0);

    // CMA/IPC: each call additionally ships its operand buffers to the proxy
    // and the result back.
    let cma = CmaChannel::new(Arc::clone(bench.clock()));
    let (to_proxy, from_proxy) = BlasBench::ipc_bytes(routine, data_mb);
    let t0 = bench.clock().now();
    for _ in 0..iters {
        cma.forward(to_proxy, from_proxy, || bench.one_call(routine, data_mb));
    }
    let ipc_ms = per_call_ms(bench.clock().now() - t0);

    Table3Row {
        routine,
        data_mb,
        native_ms,
        crac_ms,
        crac_overhead_pct: (crac_ms - native_ms) / native_ms * 100.0,
        ipc_ms,
        ipc_overhead_pct: (ipc_ms - native_ms) / native_ms * 100.0,
    }
}

/// Regenerates the whole of Table 3 (three routines × three sizes).
pub fn run_table3(iters: u32) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for routine in [BlasRoutine::Sdot, BlasRoutine::Sgemv, BlasRoutine::Sgemm] {
        for data_mb in [1u64, 10, 100] {
            rows.push(measure_row(routine, data_mb, iters));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crac_overhead_is_small_and_ipc_overhead_is_huge() {
        let row = measure_row(BlasRoutine::Sdot, 10, 3);
        assert!(row.native_ms > 0.0);
        // CRAC stays within a few percent of native.
        assert!(
            row.crac_overhead_pct < 5.0,
            "CRAC overhead {:.2}%",
            row.crac_overhead_pct
        );
        // The IPC regime pays orders of magnitude more (paper: 577–17 812 %).
        assert!(
            row.ipc_overhead_pct > 100.0,
            "IPC overhead {:.2}%",
            row.ipc_overhead_pct
        );
    }

    #[test]
    fn ipc_overhead_grows_with_operand_size_for_sdot() {
        let small = measure_row(BlasRoutine::Sdot, 1, 2);
        let large = measure_row(BlasRoutine::Sdot, 100, 2);
        assert!(large.ipc_overhead_pct > small.ipc_overhead_pct);
    }

    #[test]
    fn gemm_is_less_dominated_by_ipc_than_sdot() {
        // Table 3: Sgemm overhead (142–400 %) is far below Sdot's (698–17 766 %)
        // because the O(n³) compute amortises the copies.
        let sdot = measure_row(BlasRoutine::Sdot, 10, 2);
        let gemm = measure_row(BlasRoutine::Sgemm, 10, 2);
        assert!(gemm.ipc_overhead_pct < sdot.ipc_overhead_pct);
    }

    #[test]
    fn full_table_has_nine_rows() {
        let rows = run_table3(1);
        assert_eq!(rows.len(), 9);
        assert!(rows
            .iter()
            .all(|r| r.native_ms > 0.0 && r.ipc_ms > r.native_ms));
    }
}
