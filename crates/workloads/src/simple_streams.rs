//! The `simpleStreams` NVIDIA sample (Section 4.4.2, Figures 4a and 4b).
//!
//! The sample initialises a large integer array on the device with a kernel
//! whose inner loop runs `niterations` times, then copies the array back to
//! the host.  The non-streamed variant serialises kernel and copy; the
//! streamed variant splits the array into `nstreams` chunks, each processed
//! by its own kernel/`memcpyAsync` pair in its own stream, so copies overlap
//! compute.  The paper sweeps `niterations` ∈ {5, 10, 100, 500} with
//! `nreps = 1000` repetitions and 128 streams (the V100 maximum) and shows
//! that CRAC's overhead stays under 1% in every configuration.

use crac_core::CracStream;
use crac_cudart::MemcpyKind;
use crac_gpu::{KernelCost, LaunchDims};

use crate::session::{Session, SessionResult};

/// Configuration of one `simpleStreams` run.
#[derive(Clone, Copy, Debug)]
pub struct SimpleStreamsConfig {
    /// Number of CUDA streams (128 in the paper's experiments).
    pub nstreams: u32,
    /// Number of repetitions of the kernel/copy experiment (1000 in the
    /// paper).
    pub nreps: u32,
    /// Iterations of the loop inside the kernel (5, 10, 100 or 500).
    pub niterations: u32,
    /// Array size in 4-byte elements (16 Mi elements = 64 MiB, the sample's
    /// default).
    pub elements: u64,
}

impl Default for SimpleStreamsConfig {
    fn default() -> Self {
        Self {
            nstreams: 128,
            nreps: 1000,
            niterations: 500,
            elements: 16 << 20,
        }
    }
}

/// Results of one `simpleStreams` run.
#[derive(Clone, Copy, Debug)]
pub struct SimpleStreamsResult {
    /// Total runtime in seconds (Figure 4a).
    pub total_runtime_s: f64,
    /// Time to process the array once without streams, in ms (Figure 4b).
    pub nonstreamed_ms: f64,
    /// Time to process the array once with `nstreams` streams, in ms
    /// (Figure 4b).
    pub streamed_ms: f64,
    /// Total CUDA calls issued.
    pub total_cuda_calls: u64,
}

/// Runs `simpleStreams` on the given session.  `scale` multiplies `nreps`
/// (1.0 = the paper's 1000 repetitions).
pub fn run_simple_streams(
    session: &Session,
    config: SimpleStreamsConfig,
    scale: f64,
) -> SessionResult<SimpleStreamsResult> {
    let nreps = ((config.nreps as f64) * scale).round().max(1.0) as u32;
    let bytes = config.elements * 4;
    let chunk_elems = config.elements / config.nstreams as u64;
    let chunk_bytes = chunk_elems * 4;

    let init = session.register_kernel("work")?;
    let dev = session.malloc(bytes)?;
    let host = session.malloc_host(bytes)?;
    let streams: Vec<CracStream> = (0..config.nstreams)
        .map(|_| session.stream_create())
        .collect::<SessionResult<Vec<_>>>()?;

    // The kernel's work: `niterations` passes over its elements.
    let flops_full = config.elements * config.niterations as u64;
    let flops_chunk = chunk_elems * config.niterations as u64;

    let mut nonstreamed_ms = 0.0;
    let mut streamed_ms = 0.0;

    for rep in 0..nreps {
        // --- Non-streamed: one kernel over the whole array, then one
        //     synchronous copy back to the host.
        let t0 = session.now_ns();
        session.launch(
            init,
            LaunchDims::linear(1024, 256),
            KernelCost::new(flops_full, bytes),
            vec![dev.as_u64()],
            CracStream::DEFAULT,
        )?;
        session.stream_synchronize(CracStream::DEFAULT)?;
        session.memcpy(host, dev, bytes, MemcpyKind::DeviceToHost)?;
        let t1 = session.now_ns();

        // --- Streamed: one kernel + async copy per chunk, each in its own
        //     stream; copies overlap the other chunks' kernels.
        for (i, s) in streams.iter().enumerate() {
            let off = (i as u64) * chunk_bytes;
            session.launch(
                init,
                LaunchDims::linear(8, 256),
                KernelCost::new(flops_chunk, chunk_bytes),
                vec![dev.as_u64() + off],
                *s,
            )?;
            session.memcpy_async(
                host + off,
                dev + off,
                chunk_bytes,
                MemcpyKind::DeviceToHost,
                *s,
            )?;
        }
        session.device_synchronize()?;
        let t2 = session.now_ns();

        if rep == 0 {
            nonstreamed_ms = (t1 - t0) as f64 / 1e6;
            streamed_ms = (t2 - t1) as f64 / 1e6;
        }
    }

    session.device_synchronize()?;
    for s in streams {
        session.stream_destroy(s)?;
    }
    session.free(dev)?;
    session.free(host)?;

    Ok(SimpleStreamsResult {
        total_runtime_s: session.elapsed_s(),
        nonstreamed_ms,
        streamed_ms,
        total_cuda_calls: session.total_cuda_calls(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::registry;
    use crac_core::CracConfig;
    use crac_cudart::RuntimeConfig;

    fn config(niter: u32) -> SimpleStreamsConfig {
        SimpleStreamsConfig {
            nstreams: 32,
            nreps: 4,
            niterations: niter,
            elements: 16 << 20,
        }
    }

    #[test]
    fn streams_overlap_copies_with_compute() {
        let session = Session::native(RuntimeConfig::v100(), registry());
        let r = run_simple_streams(&session, config(500), 1.0).unwrap();
        assert!(
            r.streamed_ms < r.nonstreamed_ms,
            "streamed {} vs non-streamed {}",
            r.streamed_ms,
            r.nonstreamed_ms
        );
        assert!(r.total_runtime_s > 0.0);
        assert!(r.total_cuda_calls > 100);
        // Kernels from different streams were in flight at once.
        assert!(session.peak_concurrent_kernels() >= 4);
    }

    #[test]
    fn longer_kernels_mean_longer_runtimes() {
        let short = Session::native(RuntimeConfig::v100(), registry());
        let r_short = run_simple_streams(&short, config(5), 1.0).unwrap();
        let long = Session::native(RuntimeConfig::v100(), registry());
        let r_long = run_simple_streams(&long, config(500), 1.0).unwrap();
        assert!(r_long.total_runtime_s > r_short.total_runtime_s);
        assert!(r_long.nonstreamed_ms > r_short.nonstreamed_ms);
    }

    #[test]
    fn crac_overhead_stays_low_with_max_streams() {
        let native = Session::native(RuntimeConfig::v100(), registry());
        let rn = run_simple_streams(&native, config(100), 1.0).unwrap();
        let mut cfg = CracConfig::v100("simpleStreams");
        cfg.dmtcp_startup_ns = 0;
        let crac = Session::crac(cfg, registry());
        let rc = run_simple_streams(&crac, config(100), 1.0).unwrap();
        let overhead = (rc.total_runtime_s - rn.total_runtime_s) / rn.total_runtime_s * 100.0;
        assert!(overhead < 5.0, "overhead {overhead:.2}%");
    }
}
