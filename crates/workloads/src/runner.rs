//! High-level drivers: run an application natively, under CRAC, or under
//! CRAC with a mid-run checkpoint followed by a restart.

use crac_core::{CracConfig, CracProcess};
use crac_cudart::RuntimeConfig;

use crate::apps::{run_app, run_app_phase, setup_app, AppSpec, RunResult};
use crate::kernels::registry;
use crate::session::{Session, SessionResult};

/// Which execution mode a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Direct CUDA calls (the paper's "native" bars).
    Native,
    /// Under CRAC (split process + interposition + DMTCP).
    Crac,
}

/// Result of a CRAC run that included a checkpoint and a restart.
#[derive(Clone, Debug)]
pub struct CracRunResult {
    /// The (partial) run that preceded the checkpoint.
    pub run: RunResult,
    /// Checkpoint time in seconds (Figures 3 and 5c).
    pub ckpt_time_s: f64,
    /// Restart time in seconds (Figures 3 and 5c).
    pub restart_time_s: f64,
    /// Checkpoint image size in bytes (the Figure 3 / 5c annotations).
    pub image_bytes: u64,
    /// Bytes of device/managed state drained into the image.
    pub drained_bytes: u64,
    /// Log entries replayed at restart.
    pub replayed_calls: usize,
}

/// Runs `spec` natively on the given GPU profile.
pub fn run_native(spec: &AppSpec, runtime: RuntimeConfig, scale: f64) -> SessionResult<RunResult> {
    let session = Session::native(runtime, registry());
    run_app(&session, spec, scale)
}

/// Runs `spec` under CRAC (no checkpoint taken).
pub fn run_crac(spec: &AppSpec, config: CracConfig, scale: f64) -> SessionResult<RunResult> {
    let session = Session::crac(config, registry());
    run_app(&session, spec, scale)
}

/// Runs `spec` under CRAC, checkpoints at `checkpoint_at` of the way through
/// the work (the paper triggers checkpoints "at random times during an
/// entire run"), restarts from the image in a fresh process, and finishes
/// the remaining work there.
pub fn run_crac_with_checkpoint(
    spec: &AppSpec,
    config: CracConfig,
    scale: f64,
    checkpoint_at: f64,
) -> SessionResult<CracRunResult> {
    let reg = registry();
    let session = Session::crac(config.clone(), reg.clone());
    let buffers = setup_app(&session, spec)?;
    run_app_phase(
        &session,
        spec,
        &buffers,
        scale,
        checkpoint_at.clamp(0.0, 1.0),
    )?;
    session.device_synchronize()?;

    // crac-lint: allow(no-unwrap) — the session was constructed in CRAC mode a few lines above
    let proc = session.as_crac().expect("session runs under CRAC");
    let report = proc.checkpoint();

    // Restart in a brand-new process and finish the remaining fraction there.
    let (proc2, restart) =
        CracProcess::restart(&report.image, config, reg).map_err(|e| e.to_string())?;
    let session2 = Session::from_crac(proc2);
    let remaining = 1.0 - checkpoint_at.clamp(0.0, 1.0);
    if remaining > 0.0 {
        run_app_phase(&session2, spec, &buffers, scale, remaining)?;
        session2.device_synchronize()?;
    }

    let elapsed_s = session.elapsed_s();
    let total = session.total_cuda_calls();
    let run = RunResult {
        name: spec.name.to_string(),
        mode: "CRAC+ckpt".to_string(),
        elapsed_s,
        total_cuda_calls: total,
        cps: if elapsed_s > 0.0 {
            total as f64 / elapsed_s
        } else {
            0.0
        },
        kernel_launches: ((spec.kernel_launches as f64) * scale * checkpoint_at) as u64,
        peak_concurrent_kernels: session.peak_concurrent_kernels(),
        uvm_device_faults: session.uvm_stats().device_faults,
        uvm_host_faults: session.uvm_stats().host_faults,
    };
    Ok(CracRunResult {
        run,
        ckpt_time_s: report.ckpt_time_s,
        restart_time_s: restart.restart_time_s,
        image_bytes: report.image_bytes,
        drained_bytes: report.drained_bytes,
        replayed_calls: restart.replayed_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::all_rodinia;

    fn tiny_spec() -> AppSpec {
        AppSpec {
            name: "tiny",
            cmdline: "",
            uses_uvm: true,
            streams: 4,
            device_mb: 4,
            pinned_host_mb: 2,
            managed_mb: 2,
            kernel_launches: 200,
            memcpy_calls: 50,
            target_native_s: 0.2,
            default_scale: 1.0,
        }
    }

    #[test]
    fn native_and_crac_runs_produce_comparable_call_counts() {
        let spec = tiny_spec();
        let rn = run_native(&spec, RuntimeConfig::v100(), 1.0).unwrap();
        let mut cfg = CracConfig::v100("tiny");
        cfg.dmtcp_startup_ns = 0;
        let rc = run_crac(&spec, cfg, 1.0).unwrap();
        let ratio = rc.total_cuda_calls as f64 / rn.total_cuda_calls as f64;
        assert!((0.9..1.2).contains(&ratio), "call ratio {ratio}");
    }

    #[test]
    fn checkpoint_restart_mid_run_completes_the_work() {
        let spec = tiny_spec();
        let result = run_crac_with_checkpoint(&spec, CracConfig::test("tiny"), 1.0, 0.5).unwrap();
        assert!(result.ckpt_time_s > 0.0);
        assert!(result.restart_time_s > 0.0);
        assert!(result.image_bytes > 1 << 20);
        assert!(result.drained_bytes >= (spec.device_mb + spec.managed_mb) << 20);
        assert!(result.replayed_calls > 0);
    }

    #[test]
    fn rodinia_bfs_runs_quickly_at_small_scale() {
        let bfs = all_rodinia().into_iter().find(|s| s.name == "BFS").unwrap();
        let r = run_native(&bfs, RuntimeConfig::v100(), 1.0).unwrap();
        // BFS's full run is only ~100 CUDA calls, so even scale 1.0 is cheap;
        // the native runtime should land near the 2.5 s calibration target.
        assert!(
            r.elapsed_s > 1.5 && r.elapsed_s < 3.5,
            "elapsed {}",
            r.elapsed_s
        );
    }
}
