//! The synthetic-application engine and the specification of every benchmark
//! application used in the paper's evaluation.
//!
//! Each [`AppSpec`] is calibrated to the characteristics the paper reports
//! for the real application: native runtime on the reference GPU, total CUDA
//! API calls (the Figure 2 annotations), stream count, UVM usage, and the
//! memory footprint that determines the checkpoint-image size (Figure 3 /
//! Figure 5c).  The [`run_app`] engine turns a spec into an actual sequence
//! of CUDA calls against a [`Session`], so the same code path measures
//! native and CRAC executions.

use crac_core::CracStream;
use crac_cudart::MemcpyKind;
use crac_gpu::{KernelCost, LaunchDims};

use crate::session::{Session, SessionResult};

/// Specification of one synthetic application.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Application name as used in the paper's figures.
    pub name: &'static str,
    /// Command-line arguments of the real application (Table 2 and
    /// Section 4.4.3) — informational, reproduced in the harness output.
    pub cmdline: &'static str,
    /// Whether the application uses Unified Virtual Memory.
    pub uses_uvm: bool,
    /// Number of user CUDA streams (0 = default stream only).
    pub streams: u32,
    /// Device-memory footprint in MiB (`cudaMalloc`).
    pub device_mb: u64,
    /// Pinned host-memory footprint in MiB (`cudaMallocHost`).
    pub pinned_host_mb: u64,
    /// Managed (UVM) footprint in MiB (`cudaMallocManaged`).
    pub managed_mb: u64,
    /// Total kernel launches over a full run.
    pub kernel_launches: u64,
    /// Total `cudaMemcpyAsync`/`cudaMemcpy` calls over a full run.
    pub memcpy_calls: u64,
    /// Native runtime on the reference GPU, in seconds (calibration target).
    pub target_native_s: f64,
    /// Default scale factor used by the figure harness so very call-heavy
    /// applications stay tractable (1.0 = the full run).  Scaling reduces
    /// launches and runtime proportionally, leaving CPS and footprints
    /// unchanged.
    pub default_scale: f64,
}

impl AppSpec {
    /// Approximate total CUDA API calls of a full run
    /// (3 × launches + memcpys + allocation/sync calls).
    pub fn approx_total_calls(&self) -> u64 {
        3 * self.kernel_launches + self.memcpy_calls + 64
    }
}

/// Result of running one application in one mode.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Application name.
    pub name: String,
    /// `"native"` or `"CRAC"`.
    pub mode: String,
    /// Virtual runtime in seconds (includes launch/startup costs).
    pub elapsed_s: f64,
    /// Total CUDA calls (the paper's 3×launch formula).
    pub total_cuda_calls: u64,
    /// CUDA calls per second.
    pub cps: f64,
    /// Kernel launches performed.
    pub kernel_launches: u64,
    /// Peak concurrently scheduled kernels observed.
    pub peak_concurrent_kernels: usize,
    /// UVM device faults observed.
    pub uvm_device_faults: u64,
    /// UVM host faults observed.
    pub uvm_host_faults: u64,
}

/// Buffers allocated for a run (kept so a caller can checkpoint mid-run with
/// live allocations, then free them later).
pub struct AppBuffers {
    /// Device allocations.
    pub device: Vec<(crac_addrspace::Addr, u64)>,
    /// Pinned host allocations.
    pub pinned: Vec<(crac_addrspace::Addr, u64)>,
    /// Managed allocations.
    pub managed: Vec<(crac_addrspace::Addr, u64)>,
    /// User streams.
    pub streams: Vec<CracStream>,
}

/// Maximum size of a single allocation made by the engine (MiB); larger
/// footprints are split across several allocations, as real applications do.
const ALLOC_CHUNK_MB: u64 = 64;

fn alloc_footprint(
    session: &Session,
    total_mb: u64,
    mut alloc: impl FnMut(&Session, u64) -> SessionResult<crac_addrspace::Addr>,
) -> SessionResult<Vec<(crac_addrspace::Addr, u64)>> {
    let mut out = Vec::new();
    let mut remaining = total_mb;
    while remaining > 0 {
        let mb = remaining.min(ALLOC_CHUNK_MB);
        let bytes = mb << 20;
        let ptr = alloc(session, bytes)?;
        // Touch a little of the buffer so checkpoints have real content to
        // carry (sparse storage keeps this cheap).
        session
            .space()
            .write_bytes(ptr, &[0xC5; 256])
            .map_err(|e| e.to_string())?;
        out.push((ptr, bytes));
        remaining -= mb;
    }
    Ok(out)
}

/// Sets up the application's buffers, streams and kernels.
pub fn setup_app(session: &Session, spec: &AppSpec) -> SessionResult<AppBuffers> {
    let device = alloc_footprint(session, spec.device_mb, |s, b| s.malloc(b))?;
    let pinned = alloc_footprint(session, spec.pinned_host_mb, |s, b| s.malloc_host(b))?;
    let managed = alloc_footprint(session, spec.managed_mb, |s, b| s.malloc_managed(b))?;
    let streams = (0..spec.streams)
        .map(|_| session.stream_create())
        .collect::<SessionResult<Vec<_>>>()?;
    Ok(AppBuffers {
        device,
        pinned,
        managed,
        streams,
    })
}

/// Runs `fraction` of the application's work (1.0 = the whole run) at the
/// given `scale`.  The session is left alive (buffers allocated, streams
/// open) so the caller can checkpoint afterwards.
pub fn run_app_phase(
    session: &Session,
    spec: &AppSpec,
    buffers: &AppBuffers,
    scale: f64,
    fraction: f64,
) -> SessionResult<()> {
    let launches = ((spec.kernel_launches as f64) * scale * fraction)
        .round()
        .max(1.0) as u64;
    let memcpys = ((spec.memcpy_calls as f64) * scale * fraction).round() as u64;
    let profile = session.device_profile();

    // Calibrate per-kernel execution time so that the *native* full run hits
    // the paper-reported runtime: the device is busy ~90% of the time and
    // kernels from different streams overlap.
    let concurrency = if spec.streams <= 1 {
        1
    } else {
        (spec.streams as u64).min(profile.max_concurrent_kernels as u64)
    };
    let busy_ns = spec.target_native_s * 1e9 * 0.90;
    let per_kernel_exec_ns = (busy_ns * concurrency as f64 / spec.kernel_launches as f64).max(1.0);
    let flops_per_kernel = (per_kernel_exec_ns * profile.flops_per_ns) as u64;

    let work = session.register_kernel("work")?;
    let memcpy_chunk: u64 = 1 << 20;

    let nstreams = buffers.streams.len().max(1);
    let mut memcpys_done = 0u64;
    let sync_every = (launches / 50).max(1);

    for i in 0..launches {
        let stream = if buffers.streams.is_empty() {
            CracStream::DEFAULT
        } else {
            buffers.streams[(i as usize) % nstreams]
        };

        // Managed-memory activity: periodically touch UVM from the host and
        // hand the managed pointer to the kernel, so pages migrate both ways.
        let mut args = Vec::new();
        if spec.uses_uvm && !buffers.managed.is_empty() && i % 16 == 0 {
            let (mptr, mlen) = buffers.managed[(i as usize / 16) % buffers.managed.len()];
            session.host_touch_managed(mptr, memcpy_chunk.min(mlen));
            session.mem_prefetch_async(mptr, memcpy_chunk.min(mlen), true, stream)?;
            args.push(mptr.as_u64());
        } else if let Some((dptr, _)) = buffers.device.first() {
            args.push(dptr.as_u64());
        }

        session.launch(
            work,
            LaunchDims::linear(64, 256),
            KernelCost::new(flops_per_kernel, 4096),
            args,
            stream,
        )?;

        // Interleave memcpys at the spec's ratio.  The device-side operand is
        // a device allocation when the application has one, otherwise a
        // managed allocation (the UnifiedMemoryStreams pattern).
        let device_side: &[(crac_addrspace::Addr, u64)] = if buffers.device.is_empty() {
            &buffers.managed
        } else {
            &buffers.device
        };
        let target_memcpys = (memcpys as f64 * (i + 1) as f64 / launches as f64) as u64;
        while memcpys_done < target_memcpys {
            if device_side.is_empty() {
                memcpys_done = target_memcpys;
                break;
            }
            let (dptr, dlen) = device_side[(memcpys_done as usize) % device_side.len()];
            if let Some((hptr, hlen)) = buffers.pinned.first() {
                let bytes = memcpy_chunk.min(dlen).min(*hlen);
                let kind = if memcpys_done.is_multiple_of(2) {
                    MemcpyKind::HostToDevice
                } else {
                    MemcpyKind::DeviceToHost
                };
                let (dst, src) = if memcpys_done.is_multiple_of(2) {
                    (dptr, *hptr)
                } else {
                    (*hptr, dptr)
                };
                session.memcpy_async(dst, src, bytes, kind, stream)?;
            }
            memcpys_done += 1;
        }

        if (i + 1) % sync_every == 0 {
            session.stream_synchronize(stream)?;
        }
    }
    session.device_synchronize()?;
    Ok(())
}

/// Tears the application down (frees buffers, destroys streams).
pub fn teardown_app(session: &Session, buffers: AppBuffers) -> SessionResult<()> {
    for (ptr, _) in buffers
        .device
        .iter()
        .chain(buffers.pinned.iter())
        .chain(buffers.managed.iter())
    {
        session.free(*ptr)?;
    }
    for s in buffers.streams {
        session.stream_destroy(s)?;
    }
    Ok(())
}

/// Runs a complete application (setup → work → teardown) and reports the
/// paper's metrics.
pub fn run_app(session: &Session, spec: &AppSpec, scale: f64) -> SessionResult<RunResult> {
    let buffers = setup_app(session, spec)?;
    run_app_phase(session, spec, &buffers, scale, 1.0)?;
    teardown_app(session, buffers)?;
    let elapsed_s = session.elapsed_s();
    let total = session.total_cuda_calls();
    let uvm = session.uvm_stats();
    let (df, hf) = (uvm.device_faults, uvm.host_faults);
    Ok(RunResult {
        name: spec.name.to_string(),
        mode: match session {
            Session::Native(_) => "native".to_string(),
            Session::Crac(_) => "CRAC".to_string(),
        },
        elapsed_s,
        total_cuda_calls: total,
        cps: if elapsed_s > 0.0 {
            total as f64 / elapsed_s
        } else {
            0.0
        },
        kernel_launches: ((spec.kernel_launches as f64) * scale).round() as u64,
        peak_concurrent_kernels: session.peak_concurrent_kernels(),
        uvm_device_faults: df,
        uvm_host_faults: hf,
    })
}

// ---------------------------------------------------------------------------
// Application specifications
// ---------------------------------------------------------------------------

/// The 14 Rodinia benchmark applications used in Figures 2, 3 and 6, with the
/// command-line arguments of Table 2.
pub fn all_rodinia() -> Vec<AppSpec> {
    // (name, cmdline, total-call annotation of Figure 2, native seconds,
    //  checkpoint-size target in MB from Figure 3)
    let rows: [(&str, &str, u64, f64, u64); 14] = [
        ("BFS", "graph1MW_6.txt", 100, 2.5, 39),
        ("CFD", "fvcorr.domn.193K", 72_000, 35.0, 39),
        (
            "DWT2D",
            "rgb.bmp -d 1024x1024 -f -5 -l 100000",
            800_000,
            6.0,
            40,
        ),
        ("Gaussian", "-s 8192 -q", 18_000, 70.0, 783),
        ("Heartwall", "test.avi 104", 1_700, 5.0, 16),
        ("Hotspot", "temp_512 power_512 output.out", 7_000, 3.0, 18),
        (
            "Hotspot3D",
            "512 8 1000 power_512x8 temp_512x8 output.out",
            3_000,
            25.0,
            54,
        ),
        ("Kmeans", "kdd_cup -l 1000", 30_000, 20.0, 374),
        ("LUD", "-s 2048 -v", 1_000, 4.0, 695),
        ("Leukocyte", "testfile.avi 500", 12_000, 6.0, 57),
        ("NW", "40960 10", 15_000, 12.0, 45),
        (
            "Particlefilter",
            "-x 128 -y 128 -z 10 -np 100000",
            120,
            5.0,
            36,
        ),
        ("SRAD", "2048 2048 0 127 0 127 0.5 1000", 8_000, 6.0, 53),
        (
            "Streamcluster",
            "10 20 256 65536 65536 1000 none output.txt 1",
            69_000,
            6.5,
            83,
        ),
    ];
    rows.iter()
        .map(|&(name, cmdline, total_calls, native_s, ckpt_mb)| {
            // Work backwards from the Figure 2 call annotation:
            // total ≈ 3 × launches + memcpys, with memcpys ≈ launches / 4.
            let launches = (total_calls as f64 / 3.25).max(8.0) as u64;
            let memcpys = launches / 4;
            // The checkpoint image ≈ application image (~14 MB) + pinned host
            // + drained device memory; split the remainder 40/60.
            let payload_mb = ckpt_mb.saturating_sub(14).max(2);
            let device_mb = (payload_mb * 2 / 5).max(1);
            let pinned_mb = payload_mb - device_mb;
            AppSpec {
                name,
                cmdline,
                uses_uvm: false,
                streams: 0,
                device_mb,
                pinned_host_mb: pinned_mb,
                managed_mb: 0,
                kernel_launches: launches,
                memcpy_calls: memcpys,
                target_native_s: native_s,
                default_scale: if total_calls > 100_000 { 0.1 } else { 1.0 },
            }
        })
        .collect()
}

/// LULESH 2.0 (GPU version), structured grid `-s 150` (Section 4.4.2).
pub fn lulesh() -> AppSpec {
    AppSpec {
        name: "LULESH",
        cmdline: "-s 150",
        uses_uvm: false,
        streams: 16,
        device_mb: 72,
        pinned_host_mb: 30,
        managed_mb: 0,
        kernel_launches: 65_000,
        memcpy_calls: 14_000,
        target_native_s: 80.0,
        default_scale: 0.2,
    }
}

/// UnifiedMemoryStreams: 128 streams, 1280 tasks, all data in unified memory
/// (Section 4.4.2).
pub fn unified_memory_streams() -> AppSpec {
    AppSpec {
        name: "UnifiedMemoryStreams",
        cmdline: "128 streams, 1280 tasks, seed 12701",
        uses_uvm: true,
        streams: 128,
        device_mb: 0,
        pinned_host_mb: 16,
        managed_mb: 384,
        kernel_launches: 6_400,
        memcpy_calls: 1_280,
        target_native_s: 16.0,
        default_scale: 1.0,
    }
}

/// HPGMG-FV with arguments `7 8`: ~35 000 CUDA calls per second, UVM, no
/// user streams (Section 4.4.3).
pub fn hpgmg() -> AppSpec {
    AppSpec {
        name: "HPGMG-FV",
        cmdline: "7 8",
        uses_uvm: true,
        streams: 0,
        device_mb: 24,
        pinned_host_mb: 48,
        managed_mb: 64,
        kernel_launches: 1_500_000,
        memcpy_calls: 900_000,
        target_native_s: 170.0,
        default_scale: 0.02,
    }
}

/// HYPRE `ij` solver: ~600 CUDA calls per second, large UVM regions and
/// long-running kernels on up to 10 streams (Section 4.4.3).
pub fn hypre() -> AppSpec {
    AppSpec {
        name: "HYPRE",
        cmdline: "ij -solver 1 -rlx 18 -ns 2 -CF 0 -hmis -interptype 6 -Pmx 4 -keepT 1 -tol 1.e-8 -agg_nl 1 -n 250 250 250 250",
        uses_uvm: true,
        streams: 10,
        device_mb: 96,
        pinned_host_mb: 1_200,
        managed_mb: 1_024,
        kernel_launches: 22_000,
        memcpy_calls: 5_000,
        target_native_s: 150.0,
        default_scale: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::registry;
    use crac_cudart::RuntimeConfig;

    #[test]
    fn rodinia_suite_has_all_14_applications() {
        let suite = all_rodinia();
        assert_eq!(suite.len(), 14);
        let names: Vec<_> = suite.iter().map(|s| s.name).collect();
        assert!(names.contains(&"BFS"));
        assert!(names.contains(&"Streamcluster"));
        // None of the Rodinia applications uses UVM or streams (Table 1).
        assert!(suite.iter().all(|s| !s.uses_uvm && s.streams == 0));
        // Call counts match the Figure 2 annotations to within rounding.
        let dwt = suite.iter().find(|s| s.name == "DWT2D").unwrap();
        assert!(dwt.approx_total_calls() > 700_000);
    }

    #[test]
    fn table1_characteristics_are_respected() {
        assert!(unified_memory_streams().uses_uvm);
        assert_eq!(unified_memory_streams().streams, 128);
        assert!(hpgmg().uses_uvm);
        assert_eq!(hpgmg().streams, 0);
        assert!(hypre().uses_uvm);
        assert!(hypre().streams >= 1 && hypre().streams <= 10);
        assert!(!lulesh().uses_uvm);
        assert!(lulesh().streams >= 2 && lulesh().streams <= 32);
    }

    #[test]
    fn small_app_runs_in_both_modes_with_low_overhead() {
        let spec = AppSpec {
            name: "mini",
            cmdline: "",
            uses_uvm: true,
            streams: 4,
            device_mb: 2,
            pinned_host_mb: 1,
            managed_mb: 1,
            kernel_launches: 400,
            memcpy_calls: 100,
            target_native_s: 0.5,
            default_scale: 1.0,
        };
        let native = Session::native(RuntimeConfig::v100(), registry());
        let rn = run_app(&native, &spec, 1.0).unwrap();
        let mut cfg = crac_core::CracConfig::v100("mini");
        cfg.dmtcp_startup_ns = 0;
        let crac = Session::crac(cfg, registry());
        let rc = run_app(&crac, &spec, 1.0).unwrap();
        assert_eq!(rn.mode, "native");
        assert_eq!(rc.mode, "CRAC");
        assert!(rn.total_cuda_calls > 1200);
        assert!(rc.elapsed_s >= rn.elapsed_s);
        let overhead = (rc.elapsed_s - rn.elapsed_s) / rn.elapsed_s * 100.0;
        assert!(overhead < 10.0, "overhead {overhead:.2}%");
        // Native runtime lands near the calibration target.
        assert!(
            rn.elapsed_s > 0.3 && rn.elapsed_s < 0.8,
            "native {}",
            rn.elapsed_s
        );
        // UVM activity happened.
        assert!(rc.uvm_device_faults > 0 || rc.uvm_host_faults > 0);
        assert!(rc.peak_concurrent_kernels >= 2);
    }

    #[test]
    fn scaling_preserves_cps_but_shortens_the_run() {
        let spec = AppSpec {
            name: "scaled",
            cmdline: "",
            uses_uvm: false,
            streams: 0,
            device_mb: 1,
            pinned_host_mb: 1,
            managed_mb: 0,
            kernel_launches: 2_000,
            memcpy_calls: 500,
            target_native_s: 2.0,
            default_scale: 1.0,
        };
        let full = Session::native(RuntimeConfig::v100(), registry());
        let r_full = run_app(&full, &spec, 1.0).unwrap();
        let half = Session::native(RuntimeConfig::v100(), registry());
        let r_half = run_app(&half, &spec, 0.5).unwrap();
        assert!(r_half.elapsed_s < r_full.elapsed_s * 0.7);
        let rel = (r_half.cps - r_full.cps).abs() / r_full.cps;
        assert!(rel < 0.25, "CPS drifted by {rel:.2}");
    }
}
