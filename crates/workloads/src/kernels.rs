//! Kernel bodies registered by the synthetic applications.
//!
//! Most synthetic kernels are *timing-only*: the experiments of the paper
//! measure overhead, not numerical output, and the functional correctness of
//! checkpoint/restart is covered by kernels that really compute (`iota`,
//! `scale`, `saxpy`) and by the `crac-core` integration tests.

use std::sync::Arc;

use crac_core::KernelRegistry;

/// Names of the kernels every workload may register.
pub const KERNEL_NAMES: &[&str] = &[
    "work",      // generic timing-only compute kernel
    "stencil",   // generic timing-only memory-bound kernel
    "iota",      // writes 0..n into an f32 buffer
    "scale",     // multiplies an f32 buffer in place
    "saxpy",     // y = a*x + y over f32 buffers
    "init_task", // UnifiedMemoryStreams per-task kernel
];

/// Builds the kernel registry shared by all workloads.
pub fn registry() -> Arc<KernelRegistry> {
    let mut reg = KernelRegistry::new();
    reg.insert("work", |_ctx| Ok(()));
    reg.insert("stencil", |_ctx| Ok(()));
    reg.insert("init_task", |_ctx| Ok(()));
    reg.insert("iota", |ctx| {
        let n = ctx.arg_u64(1) as usize;
        let v: Vec<f32> = (0..n).map(|i| i as f32).collect();
        ctx.write_f32_arg(0, &v)
    });
    reg.insert("scale", |ctx| {
        let n = ctx.arg_u64(1) as usize;
        let factor = f32::from_bits(ctx.arg_u64(2) as u32);
        let mut v = ctx.read_f32_arg(0, n)?;
        for x in &mut v {
            *x *= factor;
        }
        ctx.write_f32_arg(0, &v)
    });
    reg.insert("saxpy", |ctx| {
        let n = ctx.arg_u64(2) as usize;
        let a = f32::from_bits(ctx.arg_u64(3) as u32);
        let x = ctx.read_f32_arg(0, n)?;
        let mut y = ctx.read_f32_arg(1, n)?;
        for i in 0..n {
            y[i] += a * x[i];
        }
        ctx.write_f32_arg(1, &y)
    });
    Arc::new(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_advertised_kernel() {
        let reg = registry();
        for name in KERNEL_NAMES {
            assert!(reg.get(name).is_some(), "missing kernel {name}");
        }
        assert_eq!(reg.len(), KERNEL_NAMES.len());
    }
}
