//! Benchmark applications for the CRAC reproduction.
//!
//! The paper evaluates CRAC with six application families (Table 1): the
//! Rodinia suite (14 applications), two stream-oriented NVIDIA samples
//! (`simpleStreams` and `UnifiedMemoryStreams`), and three DOE codes
//! (LULESH, HPGMG-FV, HYPRE), plus a cuBLAS micro-benchmark for the
//! proxy/IPC comparison of Table 3.  None of those codes can run here (no
//! GPU, no CUDA), so this crate provides synthetic equivalents written
//! against the reproduction's CUDA API.  Each synthetic application is
//! calibrated to the characteristics the paper reports and that the
//! experiments actually exercise: CUDA-calls-per-second, number of kernel
//! launches, stream count, UVM usage, and memory footprint.
//!
//! * [`session`] — a mode-agnostic session type so the same application code
//!   runs **natively** (directly against the CUDA runtime) or **under CRAC**
//!   (through the split-process interposition layer).
//! * [`kernels`] — the kernel bodies the applications register.
//! * [`apps`] — the generic synthetic-application engine plus the
//!   specification of every Rodinia, stream-oriented and real-world
//!   application.
//! * [`simple_streams`] — the `simpleStreams` sample, which needs its own
//!   driver because Figure 4b reports per-kernel streamed vs non-streamed
//!   execution times.
//! * [`cublas_micro`] — the Table 3 micro-benchmark (native / CRAC /
//!   CMA-IPC).
//! * [`runner`] — run an application natively or under CRAC, optionally
//!   checkpointing mid-run and measuring restart.

pub mod apps;
pub mod cublas_micro;
pub mod kernels;
pub mod runner;
pub mod session;
pub mod simple_streams;

pub use apps::{all_rodinia, hpgmg, hypre, lulesh, unified_memory_streams, AppSpec, RunResult};
pub use cublas_micro::{run_table3, Table3Row};
pub use runner::{run_crac, run_crac_with_checkpoint, run_native, CracRunResult, ExecMode};
pub use session::Session;
