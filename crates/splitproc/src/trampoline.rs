//! The upper→lower trampoline: how application CUDA calls reach the
//! lower-half library, and what each crossing costs.
//!
//! At launch, the lower-half helper copies the entry points of its CUDA
//! library into an array; DMTCP then patches the application's (dummy) CUDA
//! library so that every call jumps through that array (Figure 1 of the
//! paper).  At runtime the only per-call overhead CRAC adds is therefore:
//! the indirect jump, the fs-register switch, and whatever logging the CRAC
//! plugin does for that call.  This module models the jump table and charges
//! the fs-register cost to the virtual clock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crac_gpu::VirtualClock;

use crate::fsgs::FsRegisterMode;

/// The array of lower-half entry points plus crossing bookkeeping.
pub struct TrampolineTable {
    /// API name → pseudo entry-point address (the lower-half address the
    /// upper half jumps to).  Purely informational in the model, but lets
    /// tests assert the table is rebuilt after restart.
    entries: BTreeMap<String, u64>,
    mode: FsRegisterMode,
    clock: Arc<VirtualClock>,
    crossings: AtomicU64,
    /// Extra per-crossing cost in nanoseconds (the CRAC plugin adds its
    /// logging cost here).
    extra_ns: AtomicU64,
}

impl TrampolineTable {
    /// Builds a table with the given fs-register mode, charging crossings to
    /// `clock`.
    pub fn new(mode: FsRegisterMode, clock: Arc<VirtualClock>) -> Self {
        Self {
            entries: BTreeMap::new(),
            mode,
            clock,
            crossings: AtomicU64::new(0),
            extra_ns: AtomicU64::new(0),
        }
    }

    /// Publishes one lower-half entry point (done by the helper at boot and
    /// again at restart).
    pub fn publish(&mut self, api_name: &str, entry_addr: u64) {
        self.entries.insert(api_name.to_string(), entry_addr);
    }

    /// Looks up a published entry point.
    pub fn entry(&self, api_name: &str) -> Option<u64> {
        self.entries.get(api_name).copied()
    }

    /// Number of published entry points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entry points are published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fs-register mode in use.
    pub fn mode(&self) -> FsRegisterMode {
        self.mode
    }

    /// Sets an additional per-crossing cost (CRAC's logging overhead).
    pub fn set_extra_crossing_cost(&self, ns: u64) {
        self.extra_ns.store(ns, Ordering::Relaxed);
    }

    /// Number of upper→lower crossings made so far.
    pub fn crossings(&self) -> u64 {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Executes `f` as a lower-half call: charges the crossing cost to the
    /// clock, counts the crossing, and runs the closure.
    pub fn call<R>(&self, f: impl FnOnce() -> R) -> R {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        self.clock
            .advance(self.mode.crossing_ns() + self.extra_ns.load(Ordering::Relaxed));
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(mode: FsRegisterMode) -> TrampolineTable {
        TrampolineTable::new(mode, VirtualClock::new_shared())
    }

    #[test]
    fn publish_and_lookup_entries() {
        let mut t = table(FsRegisterMode::KernelCall);
        assert!(t.is_empty());
        t.publish("cudaMalloc", 0x1000);
        t.publish("cudaLaunchKernel", 0x2000);
        assert_eq!(t.len(), 2);
        assert_eq!(t.entry("cudaMalloc"), Some(0x1000));
        assert_eq!(t.entry("cudaFree"), None);
    }

    #[test]
    fn each_call_charges_the_crossing_cost_and_counts() {
        let t = table(FsRegisterMode::KernelCall);
        let before = t.clock.now();
        let r = t.call(|| 7);
        assert_eq!(r, 7);
        assert_eq!(t.crossings(), 1);
        assert_eq!(
            t.clock.now() - before,
            FsRegisterMode::KernelCall.crossing_ns()
        );
        for _ in 0..9 {
            t.call(|| ());
        }
        assert_eq!(t.crossings(), 10);
    }

    #[test]
    fn fsgsbase_crossings_are_cheaper() {
        let slow = table(FsRegisterMode::KernelCall);
        let fast = table(FsRegisterMode::FsGsBase);
        for _ in 0..1000 {
            slow.call(|| ());
            fast.call(|| ());
        }
        assert!(slow.clock.now() > 10 * fast.clock.now());
    }

    #[test]
    fn extra_crossing_cost_is_added() {
        let t = table(FsRegisterMode::FsGsBase);
        t.set_extra_crossing_cost(500);
        let before = t.clock.now();
        t.call(|| ());
        assert_eq!(
            t.clock.now() - before,
            FsRegisterMode::FsGsBase.crossing_ns() + 500
        );
    }
}
