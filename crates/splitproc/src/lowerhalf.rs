//! The lower-half helper program.
//!
//! The helper is "a tiny CUDA application that was loaded into the lower half
//! of the virtual memory address space.  At the time of launch, it copied the
//! entry points of CUDA library calls from the lower-half libcuda to an array
//! of libcuda entry addresses" (Figure 1).  Booting a [`LowerHalf`] performs
//! the simulated equivalent: load the helper's segments (including the large
//! CUDA libraries), create the CUDA runtime, and publish the entry-point
//! table that the upper half's trampolines jump through.

use std::sync::Arc;

use crac_addrspace::{Half, SharedSpace};
use crac_cudart::{CudaRuntime, RuntimeConfig};
use crac_gpu::VirtualClock;

use crate::fsgs::FsRegisterMode;
use crate::loader::{load_program, LoadedProgram, ProgramSpec};
use crate::trampoline::TrampolineTable;

/// The CUDA runtime API entry points the helper publishes.  (A real helper
/// publishes hundreds; these are the ones this reproduction's applications
/// use.)
pub const CUDA_API_NAMES: &[&str] = &[
    "cudaMalloc",
    "cudaMallocHost",
    "cudaMallocManaged",
    "cudaFree",
    "cudaMemcpy",
    "cudaMemcpyAsync",
    "cudaMemset",
    "cudaMemsetAsync",
    "cudaMemPrefetchAsync",
    "cudaStreamCreate",
    "cudaStreamDestroy",
    "cudaStreamSynchronize",
    "cudaStreamWaitEvent",
    "cudaEventCreate",
    "cudaEventDestroy",
    "cudaEventRecord",
    "cudaEventSynchronize",
    "cudaEventQuery",
    "cudaEventElapsedTime",
    "cudaLaunchKernel",
    "cudaDeviceSynchronize",
    "cudaPointerGetAttributes",
    "__cudaRegisterFatBinary",
    "__cudaRegisterFunction",
    "__cudaUnregisterFatBinary",
];

/// A booted lower half: the helper's mapped segments, the live CUDA runtime,
/// and the published trampoline table.
pub struct LowerHalf {
    program: LoadedProgram,
    runtime: Arc<CudaRuntime>,
    trampolines: TrampolineTable,
}

impl LowerHalf {
    /// Boots the helper into `space`.
    ///
    /// `clock` is `None` at initial launch (a fresh clock is created) and
    /// `Some` at restart, when virtual time must keep running across the
    /// reload.
    pub fn boot(
        space: &SharedSpace,
        config: RuntimeConfig,
        clock: Option<Arc<VirtualClock>>,
        fs_mode: FsRegisterMode,
    ) -> Self {
        let program = load_program(space, &ProgramSpec::cuda_helper(), Half::Lower);
        let runtime = match clock {
            Some(c) => CudaRuntime::with_clock(config, space.clone(), c),
            None => CudaRuntime::new(config, space.clone()),
        };
        let mut trampolines = TrampolineTable::new(fs_mode, Arc::clone(runtime.device().clock()));
        // Entry points live in the helper's libcudart text segment; give each
        // published API a distinct pseudo-address inside it.
        let libcudart_text = program
            .segments
            .iter()
            .find(|s| s.label == "libcudart.so.text")
            .map(|s| s.start.as_u64())
            .unwrap_or(0);
        for (i, name) in CUDA_API_NAMES.iter().enumerate() {
            trampolines.publish(name, libcudart_text + (i as u64) * 64);
        }
        Self {
            program,
            runtime,
            trampolines,
        }
    }

    /// The live CUDA runtime (the "real libcudart" of the lower half).
    pub fn runtime(&self) -> &Arc<CudaRuntime> {
        &self.runtime
    }

    /// The published trampoline table.
    pub fn trampolines(&self) -> &TrampolineTable {
        &self.trampolines
    }

    /// The helper's mapped segments.
    pub fn program(&self) -> &LoadedProgram {
        &self.program
    }

    /// Discards the lower half: unmaps the helper's segments and drops the
    /// runtime.  This is what conceptually happens at restart — the old
    /// lower half is simply not part of the restored image.
    pub fn shutdown(self, space: &SharedSpace) {
        self.program.unload(space);
        // Device and managed arena chunks are lower-half library state and go
        // away with the helper.  Pinned-host chunks are upper-half application
        // memory and must survive (DMTCP checkpoints them).
        for (addr, len) in self.runtime.arena_chunks() {
            if addr.as_u64() < 0x4000_0000_0000 {
                let _ = space.munmap(addr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crac_addrspace::Half;

    #[test]
    fn boot_publishes_all_api_entry_points() {
        let space = SharedSpace::new_no_aslr();
        let lh = LowerHalf::boot(
            &space,
            RuntimeConfig::test(),
            None,
            FsRegisterMode::KernelCall,
        );
        assert_eq!(lh.trampolines().len(), CUDA_API_NAMES.len());
        assert!(lh.trampolines().entry("cudaMalloc").is_some());
        assert!(lh.trampolines().entry("cudaLaunchKernel").is_some());
        // Entry points lie in the lower half.
        assert!(lh.trampolines().entry("cudaMalloc").unwrap() < 0x4000_0000_0000);
    }

    #[test]
    fn helper_memory_is_entirely_lower_half() {
        let space = SharedSpace::new_no_aslr();
        let lh = LowerHalf::boot(
            &space,
            RuntimeConfig::test(),
            None,
            FsRegisterMode::KernelCall,
        );
        // Allocate through the runtime so arena chunks appear too.
        lh.runtime().malloc(1 << 20).unwrap();
        let lower_bytes: u64 = space.with(|s| s.regions_in_half(Half::Lower).map(|r| r.len).sum());
        let upper_bytes: u64 = space.with(|s| s.regions_in_half(Half::Upper).map(|r| r.len).sum());
        assert!(lower_bytes > 0);
        assert_eq!(upper_bytes, 0);
    }

    #[test]
    fn reboot_with_shared_clock_preserves_time_and_layout() {
        let space = SharedSpace::new_no_aslr();
        let lh1 = LowerHalf::boot(
            &space,
            RuntimeConfig::test(),
            None,
            FsRegisterMode::KernelCall,
        );
        let addrs1: Vec<u64> = lh1
            .program()
            .segments
            .iter()
            .map(|s| s.start.as_u64())
            .collect();
        let clock = Arc::clone(lh1.runtime().device().clock());
        clock.advance(999);
        lh1.shutdown(&space);
        let lh2 = LowerHalf::boot(
            &space,
            RuntimeConfig::test(),
            Some(Arc::clone(&clock)),
            FsRegisterMode::KernelCall,
        );
        let addrs2: Vec<u64> = lh2
            .program()
            .segments
            .iter()
            .map(|s| s.start.as_u64())
            .collect();
        assert_eq!(addrs1, addrs2);
        assert_eq!(lh2.runtime().device().clock().now(), 999);
    }

    #[test]
    fn shutdown_releases_lower_half_memory() {
        let space = SharedSpace::new_no_aslr();
        let lh = LowerHalf::boot(
            &space,
            RuntimeConfig::test(),
            None,
            FsRegisterMode::KernelCall,
        );
        lh.runtime().malloc(1 << 20).unwrap();
        let before: usize = space.with(|s| s.regions_in_half(Half::Lower).count());
        assert!(before > 0);
        lh.shutdown(&space);
        let after: usize = space.with(|s| s.regions_in_half(Half::Lower).count());
        assert_eq!(after, 0);
    }
}
