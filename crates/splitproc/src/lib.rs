//! The split-process mechanism: two programs in one address space.
//!
//! CRAC adapts MANA's *split process* idea (Section 3.1): a tiny helper
//! program containing the real CUDA library is loaded into the **lower half**
//! of the address space; the end-user CUDA application is loaded into the
//! **upper half**; the application's CUDA calls reach the lower-half library
//! through a trampoline table of entry points.  Only the upper half is
//! checkpointed.
//!
//! This crate provides the loader, the trampoline table, the fs-register
//! switching cost model (the subject of the Figure 6 FSGSBASE experiment)
//! and the upper-half host heap the workloads allocate from:
//!
//! * [`loader`] — a program-loading mechanism imitating the kernel's ELF
//!   loader: text/data/library segments are mapped into a chosen half with
//!   deterministic placement (ASLR disabled), so a fresh lower half loads at
//!   the same addresses on restart;
//! * [`lowerhalf`] — boots the helper program: loads its segments, creates
//!   the CUDA runtime and publishes the entry-point table;
//! * [`trampoline`] — the upper→lower crossing: each call pays the
//!   fs-register switch cost and is counted;
//! * [`fsgs`] — the two ways of setting the `fs` register (kernel call vs
//!   the FSGSBASE instructions) and their per-crossing costs;
//! * [`heap`] — a simple upper-half heap for application host allocations.

pub mod fsgs;
pub mod heap;
pub mod loader;
pub mod lowerhalf;
pub mod trampoline;

pub use fsgs::FsRegisterMode;
pub use heap::HostHeap;
pub use loader::{LoadedProgram, ProgramSpec};
pub use lowerhalf::LowerHalf;
pub use trampoline::TrampolineTable;
