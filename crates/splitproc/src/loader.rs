//! The user-space program loader.
//!
//! CRAC cannot use `dlmopen` (process-in-process) because it must know which
//! mappings belong to which half; instead it imitates the kernel's ELF
//! loader: it maps each segment of the target program — and of every library
//! the program needs — itself, so every `mmap` can be tagged and placed in a
//! restricted portion of the address space (Section 3.1, "split processes").
//! This module is that loader for the simulated address space.

use crac_addrspace::{page_align_up, Addr, Half, MapRequest, Prot, SharedSpace};

/// Description of a program to load: segment sizes plus dependent libraries.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Program name (used as the mapping label prefix).
    pub name: String,
    /// Size of the text (code) segment in bytes.
    pub text_bytes: u64,
    /// Size of the data+bss segment in bytes.
    pub data_bytes: u64,
    /// Initial stack reservation in bytes.
    pub stack_bytes: u64,
    /// Dynamically linked libraries: `(name, text bytes, data bytes)`.
    pub libraries: Vec<(String, u64, u64)>,
}

impl ProgramSpec {
    /// A typical CUDA application image: a few MB of text, some data, the
    /// CUDA runtime, libc and the loader.
    pub fn cuda_application(name: &str) -> Self {
        Self {
            name: name.to_string(),
            text_bytes: 2 << 20,
            data_bytes: 4 << 20,
            stack_bytes: 8 << 20,
            libraries: vec![
                ("libcudart.so (dummy)".to_string(), 1 << 20, 256 << 10),
                ("libc.so".to_string(), 2 << 20, 512 << 10),
                ("ld.so".to_string(), 256 << 10, 64 << 10),
            ],
        }
    }

    /// The lower-half helper: a tiny program linked against the *real* CUDA
    /// libraries (which are large).
    pub fn cuda_helper() -> Self {
        Self {
            name: "crac-helper".to_string(),
            text_bytes: 256 << 10,
            data_bytes: 256 << 10,
            stack_bytes: 1 << 20,
            libraries: vec![
                ("libcudart.so".to_string(), 8 << 20, 2 << 20),
                ("libcuda.so".to_string(), 24 << 20, 8 << 20),
                ("libc.so".to_string(), 2 << 20, 512 << 10),
                ("ld.so".to_string(), 256 << 10, 64 << 10),
            ],
        }
    }

    /// Total bytes the program will map.
    pub fn total_bytes(&self) -> u64 {
        let segs = page_align_up(self.text_bytes)
            + page_align_up(self.data_bytes)
            + page_align_up(self.stack_bytes);
        let libs: u64 = self
            .libraries
            .iter()
            .map(|(_, t, d)| page_align_up(*t) + page_align_up(*d))
            .sum();
        segs + libs
    }
}

/// One mapped segment of a loaded program.
#[derive(Clone, Debug)]
pub struct LoadedSegment {
    /// Mapping label (program or library name plus segment kind).
    pub label: String,
    /// Start address.
    pub start: Addr,
    /// Length in bytes.
    pub len: u64,
    /// Protection bits.
    pub prot: Prot,
}

/// A program that has been loaded into one half of the address space.
#[derive(Clone, Debug)]
pub struct LoadedProgram {
    /// The program's spec.
    pub spec: ProgramSpec,
    /// Which half it was loaded into.
    pub half: Half,
    /// Every segment that was mapped, in load order.
    pub segments: Vec<LoadedSegment>,
}

impl LoadedProgram {
    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Start address of the program's data segment (applications place their
    /// statically allocated state there).
    pub fn data_segment(&self) -> Option<&LoadedSegment> {
        self.segments
            .iter()
            .find(|s| s.label.ends_with(".data") && s.label.starts_with(&self.spec.name))
    }

    /// Unmaps every segment (what discarding the lower half at restart does).
    pub fn unload(&self, space: &SharedSpace) {
        for seg in &self.segments {
            let _ = space.munmap(seg.start, seg.len);
        }
    }
}

/// Loads `spec` into the requested half of `space`, mimicking the kernel
/// loader followed by the dynamic linker: text (r-x), data (rw-), stack
/// (rw-), then each library's text and data.
///
/// Placement is deterministic as long as the space has ASLR disabled, which
/// is what makes a restart's fresh lower half land at the same addresses.
pub fn load_program(space: &SharedSpace, spec: &ProgramSpec, half: Half) -> LoadedProgram {
    let mut segments = Vec::new();
    let mut map = |label: String, bytes: u64, prot: Prot| {
        if bytes == 0 {
            return;
        }
        let len = page_align_up(bytes);
        let start = space
            .mmap(MapRequest {
                len,
                prot,
                half,
                label: label.clone(),
                fixed: None,
            })
            // crac-lint: allow(no-unwrap) — program segments load into a fresh reserved half; exhaustion is impossible by construction
            .expect("program loading must not run out of address space");
        segments.push(LoadedSegment {
            label,
            start,
            len,
            prot,
        });
    };

    map(format!("{}.text", spec.name), spec.text_bytes, Prot::RX);
    map(format!("{}.data", spec.name), spec.data_bytes, Prot::RW);
    map(format!("{}.stack", spec.name), spec.stack_bytes, Prot::RW);
    for (lib, text, data) in &spec.libraries {
        map(format!("{lib}.text"), *text, Prot::RX);
        map(format!("{lib}.data"), *data, Prot::RW);
    }

    LoadedProgram {
        spec: spec.clone(),
        half,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loader_places_program_in_requested_half() {
        let space = SharedSpace::new_no_aslr();
        let helper = load_program(&space, &ProgramSpec::cuda_helper(), Half::Lower);
        let app = load_program(
            &space,
            &ProgramSpec::cuda_application("lulesh"),
            Half::Upper,
        );
        for seg in &helper.segments {
            assert!(seg.start.as_u64() < 0x4000_0000_0000, "{seg:?}");
        }
        for seg in &app.segments {
            assert!(seg.start.as_u64() >= 0x4000_0000_0000, "{seg:?}");
        }
        assert_eq!(helper.mapped_bytes(), helper.spec.total_bytes());
    }

    #[test]
    fn loading_is_deterministic_without_aslr() {
        let load_addrs = || {
            let space = SharedSpace::new_no_aslr();
            let p = load_program(&space, &ProgramSpec::cuda_helper(), Half::Lower);
            p.segments
                .iter()
                .map(|s| s.start.as_u64())
                .collect::<Vec<_>>()
        };
        assert_eq!(load_addrs(), load_addrs());
    }

    #[test]
    fn unload_then_reload_lands_at_the_same_addresses() {
        // The restart scenario: discard the lower half, load a fresh helper,
        // get the same layout (upper half regions unchanged).
        let space = SharedSpace::new_no_aslr();
        let helper1 = load_program(&space, &ProgramSpec::cuda_helper(), Half::Lower);
        let addrs1: Vec<u64> = helper1.segments.iter().map(|s| s.start.as_u64()).collect();
        let app = load_program(&space, &ProgramSpec::cuda_application("app"), Half::Upper);
        helper1.unload(&space);
        let helper2 = load_program(&space, &ProgramSpec::cuda_helper(), Half::Lower);
        let addrs2: Vec<u64> = helper2.segments.iter().map(|s| s.start.as_u64()).collect();
        assert_eq!(addrs1, addrs2);
        // The application is untouched.
        assert_eq!(app.mapped_bytes(), app.spec.total_bytes());
    }

    #[test]
    fn text_segments_are_not_writable() {
        let space = SharedSpace::new_no_aslr();
        let p = load_program(&space, &ProgramSpec::cuda_application("x"), Half::Upper);
        let text = &p.segments[0];
        assert_eq!(text.prot, Prot::RX);
        assert!(space.write_bytes(text.start, b"patch").is_err());
        let data = p.data_segment().unwrap();
        assert!(space.write_bytes(data.start, b"globals").is_ok());
    }

    #[test]
    fn helper_is_tiny_but_its_cuda_libraries_are_not() {
        let spec = ProgramSpec::cuda_helper();
        let own = spec.text_bytes + spec.data_bytes;
        let libs: u64 = spec.libraries.iter().map(|(_, t, d)| t + d).sum();
        assert!(libs > 10 * own);
    }
}
