//! The fs-register switch: the per-crossing cost of calling into the lower
//! half.
//!
//! Thread-local storage on x86-64 Linux is addressed through the `fs`
//! segment register.  The upper and lower halves have separate libc/TLS, so
//! every upper→lower call must swap `fs` on entry and swap it back on
//! return.  Stock kernels only allow that via the `arch_prctl` system call;
//! the FSGSBASE patch (merged after the paper was written) exposes the
//! `WRFSBASE` instruction and makes the swap nearly free.  Figure 6 measures
//! how much that matters to CRAC's overhead — the answer being "very
//! little", because CRAC's per-call overhead is already small.

/// How the fs register is switched on an upper→lower crossing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsRegisterMode {
    /// Unpatched kernel: each switch is an `arch_prctl(SET_FS)` system call.
    #[default]
    KernelCall,
    /// FSGSBASE-patched kernel: each switch is a single unprivileged
    /// instruction.
    FsGsBase,
}

impl FsRegisterMode {
    /// Cost of one fs-register switch, in nanoseconds.
    pub fn switch_ns(self) -> u64 {
        match self {
            // An `arch_prctl(ARCH_SET_FS)` round-trip on a current x86-64
            // server: roughly 150 ns.
            FsRegisterMode::KernelCall => 150,
            // WRFSBASE: a handful of cycles; keep a small non-zero cost.
            FsRegisterMode::FsGsBase => 5,
        }
    }

    /// Cost of one complete upper→lower→upper crossing (two switches: one on
    /// entry, one on return).
    pub fn crossing_ns(self) -> u64 {
        2 * self.switch_ns()
    }

    /// Human-readable name used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            FsRegisterMode::KernelCall => "unpatched",
            FsRegisterMode::FsGsBase => "FSGSBASE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsgsbase_is_much_cheaper_than_a_kernel_call() {
        assert!(FsRegisterMode::KernelCall.switch_ns() > 10 * FsRegisterMode::FsGsBase.switch_ns());
    }

    #[test]
    fn crossing_is_two_switches() {
        for mode in [FsRegisterMode::KernelCall, FsRegisterMode::FsGsBase] {
            assert_eq!(mode.crossing_ns(), 2 * mode.switch_ns());
        }
    }

    #[test]
    fn default_is_the_unpatched_kernel() {
        assert_eq!(FsRegisterMode::default(), FsRegisterMode::KernelCall);
        assert_eq!(FsRegisterMode::default().label(), "unpatched");
    }
}
