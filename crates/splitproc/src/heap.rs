//! A simple upper-half host heap.
//!
//! Applications allocate ordinary (non-pinned) host memory with `malloc`;
//! those buffers live in the upper half and are checkpointed by DMTCP like
//! any other application memory.  Workloads in this reproduction use
//! [`HostHeap`] for that purpose.

use crac_addrspace::{page_align_up, Addr, Half, MapRequest, MemError, SharedSpace};
use crac_sync::Mutex;

/// A bump allocator over upper-half mappings labelled `[heap]`.
pub struct HostHeap {
    space: SharedSpace,
    state: Mutex<HeapState>,
    chunk_bytes: u64,
}

struct HeapState {
    chunks: Vec<(Addr, u64)>,
    cursor: u64,
    allocated: u64,
}

impl HostHeap {
    /// Creates a heap that grows in chunks of `chunk_bytes`.
    pub fn new(space: SharedSpace, chunk_bytes: u64) -> Self {
        Self {
            space,
            state: Mutex::new(
                "splitproc.heap.state",
                HeapState {
                    chunks: Vec::new(),
                    cursor: 0,
                    allocated: 0,
                },
            ),
            chunk_bytes: page_align_up(chunk_bytes.max(4096)),
        }
    }

    /// Allocates `bytes` of host memory, 64-byte aligned.
    pub fn alloc(&self, bytes: u64) -> Result<Addr, MemError> {
        let rounded = bytes.div_ceil(64) * 64;
        let mut st = self.state.lock();
        loop {
            if let Some(&(start, len)) = st.chunks.last() {
                if st.cursor + rounded <= len {
                    let addr = start + st.cursor;
                    st.cursor += rounded;
                    st.allocated += rounded;
                    return Ok(addr);
                }
            }
            let len = page_align_up(rounded.max(self.chunk_bytes));
            let start = self
                .space
                .mmap(MapRequest::anon(len, Half::Upper, "[heap]"))?;
            st.chunks.push((start, len));
            st.cursor = 0;
        }
    }

    /// Total bytes handed out (the heap never reuses freed memory; workloads
    /// in this reproduction allocate up front and free at exit, as the
    /// benchmark applications do).
    pub fn allocated_bytes(&self) -> u64 {
        self.state.lock().allocated
    }

    /// Number of chunks mapped so far.
    pub fn chunk_count(&self) -> usize {
        self.state.lock().chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_upper_half_and_usable() {
        let space = SharedSpace::new_no_aslr();
        let heap = HostHeap::new(space.clone(), 1 << 16);
        let a = heap.alloc(1000).unwrap();
        assert!(a.as_u64() >= 0x4000_0000_0000);
        space.write_bytes(a, &[9u8; 1000]).unwrap();
        let b = heap.alloc(1000).unwrap();
        assert_ne!(a, b);
        assert_eq!(heap.allocated_bytes(), 2 * 1024);
    }

    #[test]
    fn heap_grows_by_mapping_new_chunks() {
        let space = SharedSpace::new_no_aslr();
        let heap = HostHeap::new(space, 1 << 14);
        for _ in 0..10 {
            heap.alloc(8 << 10).unwrap();
        }
        assert!(heap.chunk_count() >= 5);
    }

    #[test]
    fn oversized_allocation_gets_a_dedicated_chunk() {
        let space = SharedSpace::new_no_aslr();
        let heap = HostHeap::new(space.clone(), 1 << 14);
        let big = heap.alloc(1 << 20).unwrap();
        space.write_bytes(big + ((1 << 20) - 8), &[1u8; 8]).unwrap();
    }

    #[test]
    fn concurrent_allocations_do_not_overlap() {
        let space = SharedSpace::new_no_aslr();
        let heap = std::sync::Arc::new(HostHeap::new(space, 1 << 20));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let heap = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| heap.alloc(128).unwrap().as_u64())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }
}
