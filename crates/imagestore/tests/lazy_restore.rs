//! The lazy first-touch restore, end to end through the store: a process
//! resumes on a skeleton of absent pages before any page byte has been
//! fetched, first touches fault chunks in at priority, a background sweep
//! prefetches the rest — and whatever order faults and the sweep race in,
//! the final memory is byte-identical to an eager restore of the same
//! image.
//!
//! Covers the local store, the real TCP wire (faulted chunks riding the
//! pooled client's priority lane), transient wire faults under a blocked
//! fault (bounded retry with backoff), and the failure latch (a truncated
//! store surfaces the error from `drain` and turns blocked faults into
//! clean `NotResident` errors instead of hangs).

use std::sync::Arc;
use std::time::Duration;

use crac_addrspace::{Addr, Half, MapRequest, MemError, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{Coordinator, CoordinatorConfig};
use crac_imagestore::net::{serve_on, TcpTransport};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{
    CoordinatorStoreExt, FaultConfig, FaultyTransport, ImageId, ImageStore, LazyRestoreStats,
    ReadStats, WriteOptions,
};
use proptest::prelude::*;

const SECRET: &[u8] = b"lazy-secret";
const REGION_PAGES: u64 = 128; // 8 chunks of 16 pages

/// A space with one upper-half mapping whose every page carries unique
/// content, checkpointed into `store`; returns the image id and the
/// ground-truth bytes.
fn checkpointed_image(store: &ImageStore, seed: u8) -> (ImageId, Addr, Vec<u8>) {
    let space = SharedSpace::new_no_aslr();
    let a = space
        .mmap(MapRequest::anon(
            REGION_PAGES * PAGE_SIZE,
            Half::Upper,
            "lazy-app",
        ))
        .unwrap();
    for page in 0..REGION_PAGES {
        let mut head = [seed; 64];
        head[..8].copy_from_slice(&(((seed as u64) << 32) | page).to_le_bytes());
        space.write_bytes(a + page * PAGE_SIZE, &head).unwrap();
    }
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let (id, _, _) = coord
        .checkpoint_to_store(store, 7, &WriteOptions::full())
        .unwrap();
    (id, a, mapping_bytes(&space, a))
}

/// Reads the whole mapped range of `space`.
fn mapping_bytes(space: &SharedSpace, a: Addr) -> Vec<u8> {
    let mut buf = vec![0u8; (REGION_PAGES * PAGE_SIZE) as usize];
    space.read_bytes(a, &mut buf).unwrap();
    buf
}

/// Runs a full lazy restore from the local store, touching `touches`
/// (page, in-page offset) pairs in order while the prefetch sweep races;
/// returns the final memory and the session's stats.
fn lazy_restore_local(
    store: &ImageStore,
    id: ImageId,
    a: Addr,
    touches: &[(u64, u64)],
) -> (Vec<u8>, ReadStats, LazyRestoreStats) {
    let space = SharedSpace::new_no_aslr();
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let session = coord.open_lazy_restore(store, id).unwrap();
    session.attach(&coord, &space);
    std::thread::scope(|scope| {
        session.spawn_workers(scope);
        for &(page, off) in touches {
            let mut b = [0u8; 1];
            space
                .read_bytes(a + page * PAGE_SIZE + off, &mut b)
                .unwrap();
        }
        session.drain().unwrap();
    });
    space.clear_fault_handler();
    let (read, lazy) = session.finish();
    (mapping_bytes(&space, a), read, lazy)
}

#[test]
fn lazy_restore_resumes_on_absent_pages_and_converges_to_eager_memory() {
    let dir = TempDir::new("lazy-local");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, a, truth) = checkpointed_image(&store, 0x51);

    // Eager baseline through the same coordinator seam.
    let eager_space = SharedSpace::new_no_aslr();
    let eager_coord = Coordinator::new(eager_space.clone(), CoordinatorConfig::default());
    eager_coord
        .restart_from_store(&store, id, &eager_space)
        .unwrap();
    assert_eq!(mapping_bytes(&eager_space, a), truth);

    // Lazy: resumable with every planned page absent, zero chunks moved.
    let space = SharedSpace::new_no_aslr();
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let session = coord.open_lazy_restore(&store, id).unwrap();
    let rstats = session.attach(&coord, &space);
    assert_eq!(rstats.regions_restored, 1);
    assert_eq!(
        space.with(|s| s.stats().absent_pages),
        REGION_PAGES,
        "every content-bearing page starts absent"
    );
    assert!(space.has_fault_handler());

    std::thread::scope(|scope| {
        // A first touch *before* any worker exists parks on the priority
        // queue; the first worker to spawn services it ahead of the sweep
        // — deterministic proof the fault path preempts.
        let toucher = scope.spawn(|| {
            let mut b = [0u8; 1];
            space
                .read_bytes(a + (REGION_PAGES - 1) * PAGE_SIZE + 8, &mut b)
                .unwrap();
            b[0]
        });
        std::thread::sleep(Duration::from_millis(20));
        session.spawn_workers(scope);
        assert_eq!(toucher.join().unwrap(), 0x51);
        session.drain().unwrap();
    });
    space.clear_fault_handler();
    let (read, lazy) = session.finish();

    assert_eq!(mapping_bytes(&space, a), truth);
    assert_eq!(
        space.with(|s| s.stats().absent_pages),
        0,
        "drained restore is fully resident"
    );
    assert_eq!(
        lazy.chunks_at_resume, 0,
        "resume happened before any chunk was fetched"
    );
    assert!(
        lazy.faults_served >= 1,
        "the parked touch was serviced as a fault"
    );
    assert!(lazy.chunks_faulted >= 1);
    assert_eq!(
        lazy.chunks_faulted + lazy.chunks_prefetched,
        lazy.chunks_total as u64,
        "chunk-level dedup: each chunk fetched exactly once"
    );
    assert_eq!(lazy.pages_installed, REGION_PAGES);
    assert_eq!(read.chunks_read, lazy.chunks_total);
    assert!(read.resume_us <= read.elapsed.as_micros() as u64);
}

#[test]
fn lazy_restore_over_tcp_retries_a_faulting_page_with_backoff() {
    let dir = TempDir::new("lazy-tcp");
    let store = Arc::new(ImageStore::open(dir.path()).unwrap());
    let (id, a, truth) = checkpointed_image(&store, 0x6E);
    let server = serve_on("127.0.0.1:0", Arc::clone(&store), SECRET).unwrap();
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    // Every chunk's first two fetch attempts fail transiently — on the
    // priority lane too (FaultyTransport shares the get budget across
    // both), so a blocked first touch must survive injected wire weather
    // by retrying with backoff.
    let flaky = FaultyTransport::new(
        &tcp,
        FaultConfig {
            transient_get_attempts: 2,
            ..Default::default()
        },
    );

    let space = SharedSpace::new_no_aslr();
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let session = coord.open_lazy_restore_remote(&flaky, id).unwrap();
    session.attach(&coord, &space);
    std::thread::scope(|scope| {
        // Park a touch before the workers exist: its chunk is fetched via
        // the priority path, which hits the injected transient faults.
        let toucher = scope.spawn(|| {
            let mut b = [0u8; 1];
            space
                .read_bytes(a + (REGION_PAGES - 1) * PAGE_SIZE + 8, &mut b)
                .unwrap();
            b[0]
        });
        std::thread::sleep(Duration::from_millis(20));
        session.spawn_workers(scope);
        assert_eq!(toucher.join().unwrap(), 0x6E);
        session.drain().unwrap();
    });
    space.clear_fault_handler();
    let (read, lazy) = session.finish();

    assert_eq!(mapping_bytes(&space, a), truth);
    assert_eq!(lazy.chunks_at_resume, 0);
    assert!(
        lazy.faults_served >= 1,
        "the parked touch faulted its page in over the wire"
    );
    assert!(
        read.transient_retries >= lazy.chunks_total,
        "every chunk (priority and sweep alike) had to retry: {} < {}",
        read.transient_retries,
        lazy.chunks_total
    );
    server.shutdown();
}

#[test]
fn lazy_restore_latches_a_permanent_failure_instead_of_hanging() {
    let dir = TempDir::new("lazy-latch");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, a, _) = checkpointed_image(&store, 0x77);
    // Destroy every chunk file: the manifest still opens (lazy declare
    // succeeds — metadata only), but every fetch fails permanently.
    let chunks_dir = dir.path().join("chunks");
    for entry in std::fs::read_dir(&chunks_dir).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }

    let space = SharedSpace::new_no_aslr();
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let session = coord.open_lazy_restore(&store, id).unwrap();
    session.attach(&coord, &space);
    let err = std::thread::scope(|scope| {
        session.spawn_workers(scope);
        session.drain().unwrap_err()
    });
    // The latched error shut the session down: a touch of a still-absent
    // page fails cleanly instead of blocking forever.
    let mut b = [0u8; 1];
    let touch = space.read_bytes(a, &mut b);
    assert!(
        matches!(touch, Err(MemError::NotResident(_))),
        "blocked fault after shutdown must surface NotResident, got {touch:?}"
    );
    assert!(space.with(|s| s.stats().absent_pages) > 0);
    let msg = err.to_string();
    assert!(!msg.is_empty());
    let (_, lazy) = session.finish();
    assert!((lazy.chunks_faulted + lazy.chunks_prefetched) as usize <= lazy.chunks_total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lazy ≡ eager: whatever pages the application touches, in whatever
    /// order, racing the background prefetch sweep the whole way, the
    /// drained lazy restore is byte-identical to the eager restore of the
    /// same image.
    #[test]
    fn lazy_restore_is_byte_identical_to_eager_under_random_touch_order(
        seed in any::<u8>(),
        touches in proptest::collection::vec(
            (0u64..REGION_PAGES, 0u64..PAGE_SIZE),
            0..96,
        ),
    ) {
        let dir = TempDir::new("lazy-equiv");
        let store = ImageStore::open(dir.path()).unwrap();
        let (id, a, truth) = checkpointed_image(&store, seed);

        let eager_space = SharedSpace::new_no_aslr();
        let eager_coord =
            Coordinator::new(eager_space.clone(), CoordinatorConfig::default());
        eager_coord.restart_from_store(&store, id, &eager_space).unwrap();
        let eager_bytes = mapping_bytes(&eager_space, a);

        let (lazy_bytes, read, lazy) = lazy_restore_local(&store, id, a, &touches);

        prop_assert_eq!(&lazy_bytes, &eager_bytes);
        prop_assert_eq!(&lazy_bytes, &truth);
        prop_assert_eq!(lazy.chunks_at_resume, 0);
        prop_assert_eq!(
            lazy.chunks_faulted + lazy.chunks_prefetched,
            lazy.chunks_total as u64
        );
        prop_assert_eq!(lazy.pages_installed, REGION_PAGES);
        prop_assert_eq!(read.chunks_read, lazy.chunks_total);
    }
}
