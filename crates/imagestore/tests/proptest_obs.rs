//! Property tests for the observability layer's algebra (via the
//! `crac-obs` re-exports): histogram bucket assignment follows
//! Prometheus `le` semantics for every value, and snapshot merge is
//! associative, commutative and lossless — the properties that make
//! per-run registries foldable into a long-lived one in any order
//! without ever misplacing a count.

use crac_imagestore::{Buckets, ObsRegistry, Snapshot};
use proptest::prelude::*;

/// One randomly chosen metric operation against a registry.
#[derive(Clone, Debug)]
enum Op {
    /// Add to one of a few named counters.
    Count(u8, u64),
    /// Raise one of a few named gauges (and sometimes lower it again).
    GaugeAdd(u8, u64, bool),
    /// Observe a value in one of a few named histograms.
    Observe(u8, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u64..1_000_000).prop_map(|(n, v)| Op::Count(n, v)),
        (0u8..2, 0u64..10_000, any::<bool>()).prop_map(|(n, v, back)| Op::GaugeAdd(n, v, back)),
        (0u8..3, 0u64..8_000_000).prop_map(|(n, v)| Op::Observe(n, v)),
    ]
}

/// Applies `ops` to a fresh registry and returns its snapshot.
fn run(ops: &[Op]) -> Snapshot {
    let reg = ObsRegistry::new();
    for op in ops {
        match op {
            Op::Count(n, v) => reg.counter(&format!("p_counter_{n}")).add(*v),
            Op::GaugeAdd(n, v, back) => {
                let g = reg.gauge(&format!("p_gauge_{n}"));
                g.add(*v);
                if *back {
                    g.sub(*v);
                }
            }
            Op::Observe(n, v) => reg
                .histogram(&format!("p_hist_{n}"), Buckets::LATENCY_US)
                .observe(*v),
        }
    }
    reg.snapshot()
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `index_of` puts every value in the first bucket whose upper bound
    /// is `>= value` — exactly Prometheus `le` — and never out of range.
    #[test]
    fn bucket_assignment_follows_le_semantics(value in any::<u64>()) {
        for buckets in [Buckets::LATENCY_US, Buckets::SIZE_BYTES] {
            let idx = buckets.index_of(value);
            prop_assert!(idx <= buckets.0.len());
            if idx < buckets.0.len() {
                prop_assert!(value <= buckets.0[idx], "landed above its bound");
            } else {
                prop_assert!(value > *buckets.0.last().unwrap(), "+Inf holds only overflow");
            }
            if idx > 0 {
                prop_assert!(value > buckets.0[idx - 1], "should have landed lower");
            }
        }
    }

    /// One observation through a live histogram lands in exactly the
    /// bucket `index_of` names, and in no other.
    #[test]
    fn observe_and_index_of_agree(value in any::<u64>()) {
        let reg = ObsRegistry::new();
        reg.histogram("solo", Buckets::SIZE_BYTES).observe(value);
        let snap = reg.snapshot();
        let h = snap.histogram("solo").unwrap();
        let expect = Buckets::SIZE_BYTES.index_of(value);
        for (i, n) in h.buckets.iter().enumerate() {
            prop_assert_eq!(*n, u64::from(i == expect), "bucket {} off", i);
        }
        prop_assert_eq!(h.count, 1);
        prop_assert_eq!(h.sum, value);
    }

    /// Merge is associative and commutative: folding per-run snapshots
    /// in any order or grouping yields the identical aggregate.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(op_strategy(), 0..40),
        b in proptest::collection::vec(op_strategy(), 0..40),
        c in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let (sa, sb, sc) = (run(&a), run(&b), run(&c));
        prop_assert_eq!(merged(&merged(&sa, &sb), &sc), merged(&sa, &merged(&sb, &sc)));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
        // The empty snapshot is the identity.
        prop_assert_eq!(merged(&sa, &Snapshot::default()), sa);
    }

    /// Merge is lossless: counter totals and histogram counts/sums in
    /// the aggregate equal the arithmetic over the runs that produced
    /// them — no operation is dropped or double-counted.
    #[test]
    fn merge_is_lossless(
        a in proptest::collection::vec(op_strategy(), 0..60),
        b in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let all = merged(&run(&a), &run(&b));
        let ops: Vec<&Op> = a.iter().chain(b.iter()).collect();
        for n in 0u8..3 {
            let expect: u64 = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Count(m, v) if *m == n => Some(*v),
                    _ => None,
                })
                .sum();
            prop_assert_eq!(all.counter(&format!("p_counter_{n}")), expect);
        }
        for n in 0u8..3 {
            let observed: Vec<u64> = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Observe(m, v) if *m == n => Some(*v),
                    _ => None,
                })
                .collect();
            match all.histogram(&format!("p_hist_{n}")) {
                None => prop_assert!(observed.is_empty()),
                Some(h) => {
                    prop_assert_eq!(h.count, observed.len() as u64);
                    prop_assert_eq!(h.sum, observed.iter().sum::<u64>());
                    prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
                }
            }
        }
        // Gauge peaks never exceed the largest single raise, and values
        // are the sum of the un-reverted raises.
        for n in 0u8..2 {
            let raises: Vec<(u64, bool)> = ops
                .iter()
                .filter_map(|op| match op {
                    Op::GaugeAdd(m, v, back) if *m == n => Some((*v, *back)),
                    _ => None,
                })
                .collect();
            if let Some(g) = all.gauge(&format!("p_gauge_{n}")) {
                let residue: u64 = raises.iter().filter(|(_, back)| !back).map(|(v, _)| v).sum();
                prop_assert_eq!(g.value, residue);
                prop_assert!(g.peak >= raises.iter().map(|(v, _)| *v).max().unwrap_or(0));
            } else {
                prop_assert!(raises.is_empty());
            }
        }
    }
}
