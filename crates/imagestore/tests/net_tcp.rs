//! The TCP transport, end to end over real localhost sockets: the PR 4
//! replication suite re-run with actual bytes crossing a wire, plus the
//! network-only concerns — auth gating, pooled-connection fan-out,
//! concurrent clients, and a server killed mid-transfer.
//!
//! Every test binds `127.0.0.1:0` (an ephemeral port), so the suite runs
//! under the plain `cargo test` tier-1 gate with no environment setup.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crac_addrspace::{Addr, Prot, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};
use crac_imagestore::net::{serve_on, ServerHandle, TcpTransport};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{
    ChunkSource, Compression, ContentHash, FaultConfig, FaultyTransport, ImageId, ImageStore,
    MaterialiseSink, RegionSource, RemoteChunkSink, RemoteChunkSource, StoreError, Transport,
    WriteOptions,
};

const SECRET: &[u8] = b"rendezvous-secret";

/// An image of `chunks` distinct 16-page chunks, every page unique to
/// `seed` (mirrors the loopback suite's generator so results compare).
fn image(seed: u8, chunks: u64) -> CheckpointImage {
    let pages = chunks * 16;
    let mut img = CheckpointImage {
        taken_at_ns: seed as u64 * 1000,
        ..Default::default()
    };
    img.regions.push(SavedRegion {
        start: Addr(0x4000_0000_0000),
        len: pages * PAGE_SIZE,
        prot: Prot::RW,
        label: format!("tcp-{seed}"),
        pages: (0..pages)
            .map(|i| {
                let mut page = vec![seed; PAGE_SIZE as usize];
                page[..8].copy_from_slice(&(((seed as u64) << 32) | i).to_le_bytes());
                (i, page)
            })
            .collect(),
    });
    img.payloads.insert("crac".into(), vec![seed; 128]);
    img
}

/// Starts a server over a fresh store in `dir`, returning both handles.
fn server_over(dir: &TempDir) -> (Arc<ImageStore>, ServerHandle) {
    let store = Arc::new(ImageStore::open(dir.path()).unwrap());
    let handle = serve_on("127.0.0.1:0", Arc::clone(&store), SECRET).unwrap();
    (store, handle)
}

fn assert_same_content(store: &ImageStore, id: ImageId, expect: &CheckpointImage) {
    let (back, _) = store.read_image(id).unwrap();
    assert_eq!(back.regions.len(), expect.regions.len());
    for (a, b) in back.regions.iter().zip(expect.regions.iter()) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.len, b.len);
        assert_eq!(a.pages, b.pages, "region {} content differs", a.label);
    }
    assert_eq!(back.payloads, expect.payloads);
}

#[test]
fn replicate_over_tcp_ships_once_then_zero_chunk_frames() {
    let (src_dir, dst_dir) = (TempDir::new("tcp-src"), TempDir::new("tcp-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let img = image(1, 8);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    let (dst_store, server) = server_over(&dst_dir);
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let (remote_id, stats) = src.replicate_to(id, &tcp).unwrap();
    assert_eq!(stats.chunks_shipped, 8, "empty peer: everything travels");
    assert_eq!(server.stats().chunk_frames_received, 8);
    assert!(server.stats().chunk_bytes_received > 0);
    assert_same_content(&dst_store, remote_id, &img);

    // Second replication of the same image: the negotiation finds every
    // chunk present — the server-side counter proves zero chunk frames
    // crossed the wire.
    let (remote_id2, stats2) = src.replicate_to(id, &tcp).unwrap();
    assert_eq!(stats2.chunks_shipped, 0);
    assert_eq!(stats2.chunks_deduped, 8);
    assert_eq!(
        server.stats().chunk_frames_received,
        8,
        "dedup proven at the server: no further chunk frame arrived"
    );
    assert_ne!(remote_id2, remote_id, "peer assigns a fresh id per replica");
    server.shutdown();
}

#[test]
fn replicate_from_pulls_over_tcp() {
    let (src_dir, dst_dir) = (TempDir::new("tcp-pull-src"), TempDir::new("tcp-pull-dst"));
    let img = image(2, 6);
    let (src_store, server) = server_over(&src_dir);
    let (id, _) = src_store.write_image(&img, &WriteOptions::full()).unwrap();

    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    // list_manifests over the wire sees the image.
    assert_eq!(tcp.list_manifests().unwrap(), vec![id]);
    let (local_id, stats) = dst.replicate_from(&tcp, id).unwrap();
    assert_eq!(stats.chunks_shipped, 6);
    assert_eq!(server.stats().chunks_served, 6);
    assert_same_content(&dst, local_id, &img);

    // A second pull moves no chunk.
    let (_, stats2) = dst.replicate_from(&tcp, id).unwrap();
    assert_eq!(stats2.chunks_shipped, 0);
    assert_eq!(server.stats().chunks_served, 6);
    server.shutdown();
}

#[test]
fn live_checkpoint_streams_straight_to_a_socket() {
    // RemoteChunkSink over TCP: the producer's records are chunked,
    // negotiated and shipped to the server with no local store at all —
    // and dedup against content the peer wrote *locally* still works,
    // because the chunk boundaries (and so the hashes) are
    // writer-identical.
    let dst_dir = TempDir::new("tcp-sink");
    let img = image(3, 5);
    let (dst_store, server) = server_over(&dst_dir);
    dst_store.write_image(&img, &WriteOptions::full()).unwrap();

    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let mut sink = RemoteChunkSink::new(&tcp, Compression::None, None);
    img.stream_into(&mut sink).unwrap();
    sink.set_taken_at(img.taken_at_ns);
    let (remote_id, stats) = sink.finish().unwrap();
    assert_eq!(stats.chunks_total, 5);
    assert_eq!(stats.chunks_shipped, 0, "full dedup across the wire");
    assert_eq!(server.stats().chunk_frames_received, 0);
    assert_same_content(&dst_store, remote_id, &img);
    server.shutdown();
}

#[test]
fn parallel_restore_rides_multiple_pooled_connections() {
    let dir = TempDir::new("tcp-pool");
    let img = image(4, 32);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();

    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let mut source = RemoteChunkSource::open(&tcp, id).unwrap();
    let mut sink = MaterialiseSink::default();
    source.stream_out(&mut sink).unwrap();
    let mut back = sink.into_image(source.taken_at_ns());
    back.regions[0].pages.sort_by_key(|(i, _)| *i);
    assert_eq!(back.regions[0].pages, img.regions[0].pages);

    let read = source.stats();
    assert_eq!(read.chunks_read, 32);
    if read.threads_used >= 2 {
        // The fan-out demonstrably used ≥ 2 pooled sockets: the server
        // saw several distinct authenticated connections serving gets,
        // and the client's in-use high-water mark agrees.
        assert!(
            server.stats().get_connections >= 2,
            "parallel restore served over {} connection(s)",
            server.stats().get_connections
        );
        assert!(
            tcp.stats().peak_connections_in_use >= 2,
            "pool peak: {:?}",
            tcp.stats()
        );
    }
    // Connections were pooled, not leaked: idle ≥ 1, bounded by the cap.
    let pool = tcp.stats();
    assert!(pool.pooled_idle >= 1 && pool.pooled_idle <= TcpTransport::DEFAULT_MAX_IDLE);
    server.shutdown();
}

/// Deterministic pool fan-out, independent of the restore pipeline's
/// thread heuristics: four threads fetch concurrently; while one blocks
/// awaiting its response the others must check out further sockets.
#[test]
fn concurrent_get_chunk_opens_concurrent_connections() {
    let dir = TempDir::new("tcp-pool-det");
    let img = image(5, 16);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();
    let manifest_bytes = std::fs::read(
        dir.path()
            .join("images")
            .join(format!("{:016x}.crimg", id.0)),
    )
    .unwrap();
    let manifest = crac_imagestore::format::Manifest::from_bytes(&manifest_bytes).unwrap();
    let hashes: Vec<ContentHash> = manifest.chunk_refs().map(|c| c.hash).collect();
    assert_eq!(hashes.len(), 16);

    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let barrier = std::sync::Barrier::new(4);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let (tcp, hashes, barrier) = (&tcp, &hashes, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for _round in 0..8 {
                    for h in hashes.iter().skip(t).step_by(4) {
                        let bytes = tcp.get_chunk(*h).unwrap();
                        assert!(!bytes.is_empty());
                    }
                }
            });
        }
    });
    assert!(
        tcp.stats().peak_connections_in_use >= 2,
        "concurrent fetches must ride concurrent sockets: {:?}",
        tcp.stats()
    );
    assert!(server.stats().get_connections >= 2);
    server.shutdown();
}

#[test]
fn transient_faults_over_a_real_wire_are_absorbed_by_backoff_retry() {
    // FaultyTransport wraps the *TCP client*: injected faults compose
    // with real socket round trips, proving the retry/resume paths
    // survive an actual wire.
    let dir = TempDir::new("tcp-flaky");
    let img = image(6, 6);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();

    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let flaky = FaultyTransport::new(
        &tcp,
        FaultConfig {
            transient_get_attempts: 2,
            jitter: Duration::from_micros(200),
            seed: 11,
            ..Default::default()
        },
    );
    let mut source = RemoteChunkSource::open(&flaky, id).unwrap();
    let mut sink = MaterialiseSink::default();
    source.stream_out(&mut sink).unwrap();
    let stats = source.stats();
    assert_eq!(stats.chunks_read, 6);
    assert!(
        stats.transient_retries >= 12,
        "every chunk needed its two retries: {stats:?}"
    );
    assert!(flaky.faults_injected() >= 12);
    let mut back = sink.into_image(source.taken_at_ns());
    back.regions[0].pages.sort_by_key(|(i, _)| *i);
    assert_eq!(back.regions[0].pages, img.regions[0].pages);
    server.shutdown();
}

#[test]
fn error_classes_survive_the_real_wire() {
    let dir = TempDir::new("tcp-classes");
    let img = image(7, 2);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();

    // A chunk the server does not hold: MissingChunk, permanent — the
    // same class LoopbackTransport raises, so a get racing GC keeps the
    // client's fail-fast/retry split intact across serialisation.
    let absent = ContentHash::of(b"never stored");
    let err = tcp.get_chunk(absent).unwrap_err();
    assert!(
        matches!(&err, StoreError::MissingChunk { hash } if *hash == absent.to_hex()),
        "got: {err}"
    );
    assert!(!err.is_transient() && !err.is_corruption());

    // An image the server does not hold: UnknownImage, id preserved.
    let err = tcp.get_manifest(ImageId(4242)).unwrap_err();
    assert!(
        matches!(err, StoreError::UnknownImage(ImageId(4242))),
        "got: {err}"
    );

    // A manifest referencing chunks the server does not hold is refused
    // with MissingChunk (chunks-before-manifest, enforced remotely too).
    let manifest_bytes = std::fs::read(
        dir.path()
            .join("images")
            .join(format!("{:016x}.crimg", id.0)),
    )
    .unwrap();
    let fresh_dir = TempDir::new("tcp-classes-fresh");
    let (fresh_store, fresh_server) = server_over(&fresh_dir);
    let fresh_tcp = TcpTransport::connect(fresh_server.local_addr(), SECRET).unwrap();
    let err = fresh_tcp.put_manifest(&manifest_bytes, None).unwrap_err();
    assert!(matches!(err, StoreError::MissingChunk { .. }), "got: {err}");
    assert_eq!(fresh_store.stats().unwrap().images, 0);

    // Corrupt stored bytes are served verbatim and fail the *client's*
    // verification ladder — corruption class, zero retries.
    let chunks_dir = dir.path().join("chunks");
    let victim = std::fs::read_dir(&chunks_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "chk"))
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();
    let mut source = RemoteChunkSource::open(&tcp, id).unwrap();
    let mut sink = MaterialiseSink::default();
    let err = source.stream_out(&mut sink).unwrap_err();
    assert!(err.is_corruption(), "got: {err}");
    assert_eq!(
        source.stats().transient_retries,
        0,
        "corruption never retries"
    );

    fresh_server.shutdown();
    server.shutdown();
}

#[test]
fn unauthenticated_clients_are_refused_before_any_store_operation() {
    let dir = TempDir::new("tcp-auth");
    let img = image(8, 2);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();

    // Wrong secret: the eager handshake in connect() fails with a
    // permanent (non-transient) error — nothing to retry into.
    let err = match TcpTransport::connect(server.local_addr(), b"wrong".as_slice()) {
        Err(e) => e,
        Ok(_) => panic!("a wrong secret must not connect"),
    };
    assert!(
        matches!(err, StoreError::Protocol { .. }),
        "a rejected secret is a protocol refusal: {err}"
    );
    assert!(!err.is_transient());
    // The refusal is counted once the server finishes tearing down.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().auth_failures < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.stats().auth_failures, 1);

    // A raw client skipping the handshake: its request is answered with a
    // protocol refusal and the connection dropped — before any store
    // operation runs.
    {
        use crac_imagestore::net::Frame;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Swallow the hello, then fire a request instead of a proof.
        let hello = crac_imagestore::net::frame::read_frame(&mut raw).unwrap();
        assert!(matches!(hello, Frame::ServerHello { .. }));
        crac_imagestore::net::frame::write_frame(
            &mut raw,
            &Frame::GetChunk(ContentHash::of(b"whatever")),
        )
        .unwrap();
        let reply = crac_imagestore::net::frame::read_frame(&mut raw).unwrap();
        let Frame::Err(we) = reply else {
            panic!("expected a refusal, got {reply:?}");
        };
        assert_eq!(we.class, crac_imagestore::net::ErrClass::Protocol);
    }
    // Wait for the server to finish tearing the refused connection down,
    // then check nothing was served.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().auth_failures < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    assert_eq!(stats.auth_failures, 2);
    assert_eq!(stats.frames_served, 0, "no request ever reached dispatch");
    assert_eq!(stats.chunks_served, 0);

    // The right secret still works afterwards.
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    assert_eq!(tcp.list_manifests().unwrap(), vec![id]);
    server.shutdown();
}

#[test]
fn concurrent_replicators_into_one_server_dedup_exactly() {
    // Two replicators pushing the *same* content race their negotiations:
    // both may ship overlapping chunks, but the content-addressed ingest
    // keeps the store exact — one file per distinct chunk, both images
    // restorable.
    let (a_dir, b_dir, dst_dir) = (
        TempDir::new("tcp-conc-a"),
        TempDir::new("tcp-conc-b"),
        TempDir::new("tcp-conc-dst"),
    );
    let img = image(9, 12);
    let src_a = ImageStore::open(a_dir.path()).unwrap();
    let src_b = ImageStore::open(b_dir.path()).unwrap();
    let (id_a, _) = src_a.write_image(&img, &WriteOptions::full()).unwrap();
    let (id_b, _) = src_b.write_image(&img, &WriteOptions::full()).unwrap();

    let (dst_store, server) = server_over(&dst_dir);
    let (ra, rb) = std::thread::scope(|scope| {
        let addr = server.local_addr();
        let ta = scope.spawn(move || {
            let tcp = TcpTransport::connect(addr, SECRET).unwrap();
            src_a.replicate_to(id_a, &tcp).unwrap()
        });
        let tb = scope.spawn(move || {
            let tcp = TcpTransport::connect(addr, SECRET).unwrap();
            src_b.replicate_to(id_b, &tcp).unwrap()
        });
        (ta.join().unwrap(), tb.join().unwrap())
    });

    let stats = dst_store.stats().unwrap();
    assert_eq!(stats.images, 2, "both manifests adopted");
    assert_eq!(
        stats.chunks, 12,
        "dedup exact under racing replicators: one file per distinct chunk"
    );
    assert_same_content(&dst_store, ra.0, &img);
    assert_same_content(&dst_store, rb.0, &img);
    // Whatever the interleaving shipped, nothing was lost or duplicated.
    let shipped_total = ra.1.chunks_shipped + rb.1.chunks_shipped;
    assert!(
        (12..=24).contains(&shipped_total),
        "shipped {shipped_total} frames for 12 distinct chunks"
    );
    server.shutdown();
}

/// Review regression: connections that died while parked in the pool
/// must all be discarded within ONE operation — not surface one
/// transient error each, burning the caller's bounded retry budget on
/// sockets that were already dead.
#[test]
fn stale_pooled_connections_are_drained_within_one_call() {
    let dir = TempDir::new("tcp-stale-pool");
    let img = image(12, 8);
    let (store, server) = server_over(&dir);
    let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();
    let manifest_bytes = std::fs::read(
        dir.path()
            .join("images")
            .join(format!("{:016x}.crimg", id.0)),
    )
    .unwrap();
    let manifest = crac_imagestore::format::Manifest::from_bytes(&manifest_bytes).unwrap();
    let hashes: Vec<ContentHash> = manifest.chunk_refs().map(|c| c.hash).collect();

    // Park several connections in the pool via concurrent fetches.
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    let barrier = std::sync::Barrier::new(3);
    std::thread::scope(|scope| {
        for t in 0..3 {
            let (tcp, hashes, barrier) = (&tcp, &hashes, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..6 {
                    for h in hashes.iter().skip(t).step_by(3) {
                        tcp.get_chunk(*h).unwrap();
                    }
                }
            });
        }
    });
    let idle_before = tcp.stats().pooled_idle;
    assert!(idle_before >= 2, "pool did not fill: {:?}", tcp.stats());

    // The server dies; every parked socket is now stale.
    server.shutdown();

    // ONE call must consume all of them and report a single transient
    // failure from the fresh dial — not one error per stale socket.
    let err = tcp.get_chunk(hashes[0]).unwrap_err();
    assert!(err.is_transient(), "dead server is transient: {err}");
    let after = tcp.stats();
    assert_eq!(after.pooled_idle, 0, "stale pool fully drained: {after:?}");
    assert!(
        after.connections_broken >= idle_before,
        "each stale socket was tried and discarded: {after:?}"
    );
}

#[test]
fn server_killed_mid_transfer_surfaces_transient_and_replication_resumes() {
    let (src_dir, dst_dir) = (TempDir::new("tcp-kill-src"), TempDir::new("tcp-kill-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let img = image(10, 24);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    let dst_store = Arc::new(ImageStore::open(dst_dir.path()).unwrap());
    let server = serve_on("127.0.0.1:0", Arc::clone(&dst_store), SECRET).unwrap();
    let addr = server.local_addr();

    // Replicate through a latency shim so the kill lands mid-stream.
    let err = std::thread::scope(|scope| {
        let replicator = scope.spawn(move || {
            let tcp = TcpTransport::connect(addr, SECRET).unwrap();
            let slow = FaultyTransport::new(
                &tcp,
                FaultConfig {
                    latency: Duration::from_millis(2),
                    ..Default::default()
                },
            );
            src.replicate_to(id, &slow)
        });
        // Kill the server once a few chunks have crossed the wire.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().chunk_frames_received < 3 {
            assert!(Instant::now() < deadline, "transfer never started");
            std::thread::sleep(Duration::from_micros(200));
        }
        server.shutdown();
        replicator.join().unwrap().unwrap_err()
    });
    assert!(
        err.is_transient(),
        "a dead server is transient (retryable), got: {err}"
    );
    assert!(!err.is_corruption());

    // Whatever landed is complete and verifiable; no manifest is visible.
    assert_eq!(dst_store.stats().unwrap().images, 0, "no torn image");
    let landed = dst_store.stats().unwrap().chunks;
    assert!((3..24).contains(&landed), "landed {landed} of 24");

    // The node comes back (same store, fresh listener): replication
    // resumes over a new connection, shipping exactly the remainder.
    let server2 = serve_on("127.0.0.1:0", Arc::clone(&dst_store), SECRET).unwrap();
    let tcp = TcpTransport::connect(server2.local_addr(), SECRET).unwrap();
    let src = ImageStore::open_read_only(src_dir.path()).unwrap();
    let (remote_id, stats) = src.replicate_to(id, &tcp).unwrap();
    assert_eq!(stats.chunks_deduped, landed, "landed chunks are skipped");
    assert_eq!(stats.chunks_shipped, 24 - landed, "only the rest ships");
    assert_same_content(&dst_store, remote_id, &img);
    server2.shutdown();
}

#[test]
fn stats_wire_op_scrapes_the_servers_registry() {
    let (src_dir, dst_dir) = (
        TempDir::new("tcp-scrape-src"),
        TempDir::new("tcp-scrape-dst"),
    );
    let src = ImageStore::open(src_dir.path()).unwrap();
    let img = image(31, 4);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    let (_dst_store, server) = server_over(&dst_dir);
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
    src.replicate_to(id, &tcp).unwrap();

    // The scrape is an ordinary request frame: the server answers with
    // its registry rendered as Prometheus text exposition.
    let text = tcp.scrape_peer_metrics().unwrap();
    for family in [
        "crac_net_server_connections_accepted",
        "crac_net_server_frames_served",
        "crac_net_server_chunk_frames_received",
        "crac_net_server_op_put_chunk_us_bucket",
        "crac_net_server_op_put_chunk_us_count",
    ] {
        assert!(text.contains(family), "scrape lacks {family}:\n{text}");
    }
    // The replication demonstrably happened before the scrape: the
    // chunk-ingest counter it reports is the image's chunk count.
    let line = text
        .lines()
        .find(|l| l.starts_with("crac_net_server_chunk_frames_received "))
        .expect("counter sample line");
    assert_eq!(line.split_whitespace().nth(1), Some("4"));

    // The client side of the same conversation landed in the client's
    // registry, stage timings included.
    let client_text = tcp.obs().render_text();
    for family in [
        "crac_net_client_connections_opened",
        "crac_net_client_requests",
        "crac_net_client_connect_us_count",
        "crac_net_client_auth_us_count",
        "crac_net_client_rtt_us_count",
        "crac_net_client_frame_encode_us_count",
    ] {
        assert!(client_text.contains(family), "client lacks {family}");
    }
    assert!(tcp.stats().requests > 0);
    server.shutdown();
}
