//! Remote replication over the transport seam: dedup-aware shipping,
//! bounded transient retry, crash-interrupted resume, and the
//! receiving-side verification that keeps a faulty peer from poisoning a
//! store.
//!
//! Everything runs over [`LoopbackTransport`] (a second `ImageStore`
//! playing the remote node) and [`FaultyTransport`] (deterministic fault
//! injection) — the same code a real network transport would sit under.

use crac_addrspace::{Addr, Prot, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};
use crac_imagestore::format::ChunkFile;
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{
    ChunkSource, FaultConfig, FaultyTransport, ImageStore, LoopbackTransport, MaterialiseSink,
    RegionSource, RemoteChunkSink, RemoteChunkSource, StoreError, WriteOptions,
    MAX_TRANSIENT_RETRIES,
};

/// An image of `chunks` distinct 16-page chunks (one contiguous region),
/// every page unique to `seed` so no two images share content unless they
/// share `seed`.
fn image(seed: u8, chunks: u64) -> CheckpointImage {
    let pages = chunks * 16;
    let mut img = CheckpointImage {
        taken_at_ns: seed as u64 * 1000,
        ..Default::default()
    };
    img.regions.push(SavedRegion {
        start: Addr(0x4000_0000_0000),
        len: pages * PAGE_SIZE,
        prot: Prot::RW,
        label: format!("repl-{seed}"),
        pages: (0..pages)
            .map(|i| {
                let mut page = vec![seed; PAGE_SIZE as usize];
                page[..8].copy_from_slice(&(((seed as u64) << 32) | i).to_le_bytes());
                (i, page)
            })
            .collect(),
    });
    img.payloads.insert("crac".into(), vec![seed; 128]);
    img
}

/// Reads image `id` of `store` back and asserts it matches `expect`
/// byte for byte (regions and payloads; ids/timestamps aside).
fn assert_same_content(store: &ImageStore, id: crac_imagestore::ImageId, expect: &CheckpointImage) {
    let (back, _) = store.read_image(id).unwrap();
    assert_eq!(back.regions.len(), expect.regions.len());
    for (a, b) in back.regions.iter().zip(expect.regions.iter()) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.len, b.len);
        assert_eq!(a.pages, b.pages, "region {} content differs", a.label);
    }
    assert_eq!(back.payloads, expect.payloads);
}

#[test]
fn replicate_to_ships_everything_once_then_nothing() {
    let (src_dir, dst_dir) = (TempDir::new("repl-src"), TempDir::new("repl-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(1, 8);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    let transport = LoopbackTransport::new(&dst);
    let (remote_id, stats) = src.replicate_to(id, &transport).unwrap();
    assert_eq!(stats.chunks_total, 8);
    assert_eq!(stats.chunks_shipped, 8, "empty peer: everything travels");
    assert_eq!(stats.chunks_deduped, 0);
    assert_eq!(transport.stats().chunks_put, 8);
    assert!(stats.bytes_shipped > 0 && stats.manifest_bytes > 0);
    assert_same_content(&dst, remote_id, &img);

    // Second replication of the same image: the negotiation finds every
    // chunk already present — zero puts, only the manifest travels.
    let puts_before = transport.stats().chunks_put;
    let (remote_id2, stats2) = src.replicate_to(id, &transport).unwrap();
    assert_eq!(stats2.chunks_shipped, 0, "dedup: nothing re-ships");
    assert_eq!(stats2.chunks_deduped, 8);
    assert_eq!(stats2.dedup_ratio(), 1.0);
    assert_eq!(
        transport.stats().chunks_put,
        puts_before,
        "transport-level proof: no put_chunk at all"
    );
    assert_ne!(remote_id2, remote_id, "peer assigns a fresh id per replica");
}

#[test]
fn incremental_child_ships_only_chunks_absent_from_the_destination() {
    let (src_dir, dst_dir) = (TempDir::new("repl-inc-src"), TempDir::new("repl-inc-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let parent_img = image(2, 8);
    let (parent, _) = src.write_image(&parent_img, &WriteOptions::full()).unwrap();

    let transport = LoopbackTransport::new(&dst);
    src.replicate_to(parent, &transport).unwrap();

    // The child mutates one page in one chunk: exactly one chunk's
    // content is new.
    let mut child_img = parent_img.clone();
    child_img.regions[0].pages[17].1 = vec![0xEE; PAGE_SIZE as usize];
    let (child, wstats) = src
        .write_image(&child_img, &WriteOptions::incremental(parent))
        .unwrap();
    assert_eq!(wstats.chunks_written, 1, "one chunk changed locally");

    let puts_before = transport.stats().chunks_put;
    let (remote_child, stats) = src.replicate_to(child, &transport).unwrap();
    assert_eq!(stats.chunks_total, 8);
    assert_eq!(stats.chunks_shipped, 1, "only the changed chunk travels");
    assert_eq!(stats.chunks_deduped, 7);
    assert_eq!(transport.stats().chunks_put - puts_before, 1);
    assert_same_content(&dst, remote_child, &child_img);
}

#[test]
fn replicate_from_pulls_only_missing_chunks() {
    let (src_dir, dst_dir) = (TempDir::new("pull-src"), TempDir::new("pull-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(3, 6);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    // Pull: dst fetches from src.
    let transport = LoopbackTransport::new(&src);
    let (local_id, stats) = dst.replicate_from(&transport, id).unwrap();
    assert_eq!(stats.chunks_shipped, 6);
    assert_same_content(&dst, local_id, &img);

    // A second pull of the same image moves no chunk.
    let got_before = transport.stats().chunks_got;
    let (_, stats2) = dst.replicate_from(&transport, id).unwrap();
    assert_eq!(stats2.chunks_shipped, 0);
    assert_eq!(stats2.chunks_deduped, 6);
    assert_eq!(transport.stats().chunks_got, got_before);
}

#[test]
fn remote_checkpoint_stream_dedups_against_locally_written_content() {
    // A checkpoint streamed through RemoteChunkSink must produce the same
    // chunk hashes as the local writer — pin it by writing the image
    // locally on the peer first: the remote stream then ships nothing.
    let dst_dir = TempDir::new("sink-dedup");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(4, 5);
    dst.write_image(&img, &WriteOptions::full()).unwrap();

    let transport = LoopbackTransport::new(&dst);
    let mut sink = RemoteChunkSink::new(&transport, Default::default(), None);
    img.stream_into(&mut sink).unwrap();
    sink.set_taken_at(img.taken_at_ns);
    let (remote_id, stats) = sink.finish().unwrap();
    assert_eq!(stats.chunks_total, 5);
    assert_eq!(
        stats.chunks_shipped, 0,
        "identical chunk boundaries ⇒ identical hashes ⇒ full dedup"
    );
    assert_eq!(transport.stats().chunks_put, 0);
    assert_same_content(&dst, remote_id, &img);
}

#[test]
fn remote_source_restores_through_the_shared_pipeline() {
    let dst_dir = TempDir::new("src-restore");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(5, 7);
    let (id, _) = dst.write_image(&img, &WriteOptions::full()).unwrap();

    let transport = LoopbackTransport::new(&dst);
    let mut source = RemoteChunkSource::open(&transport, id).unwrap();
    assert_eq!(source.taken_at_ns(), img.taken_at_ns);
    assert_eq!(source.region_count(), 1);
    assert_eq!(source.payload("crac"), Some(&[5u8; 128][..]));

    let mut sink = MaterialiseSink::default();
    source.stream_out(&mut sink).unwrap();
    let mut back = sink.into_image(source.taken_at_ns());
    back.regions[0].pages.sort_by_key(|(i, _)| *i);
    assert_eq!(back.regions[0].pages, img.regions[0].pages);
    let stats = source.stats();
    assert_eq!(stats.chunks_read, 7);
    assert_eq!(stats.transient_retries, 0, "healthy link: no retries");
    assert!(stats.peak_buffered_bytes > 0);
}

#[test]
fn transient_faults_are_absorbed_by_bounded_retry() {
    let (src_dir, dst_dir) = (TempDir::new("flaky-src"), TempDir::new("flaky-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(6, 6);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    // Ship side: the first two put attempts of every chunk fail.
    let loopback = LoopbackTransport::new(&dst);
    let flaky = FaultyTransport::new(
        &loopback,
        FaultConfig {
            transient_put_attempts: 2,
            ..Default::default()
        },
    );
    let (remote_id, stats) = src.replicate_to(id, &flaky).unwrap();
    assert_eq!(stats.chunks_shipped, 6);
    assert!(
        stats.transient_retries >= 12,
        "two absorbed failures per chunk: {stats:?}"
    );
    assert!(flaky.faults_injected() >= 12);

    // Fetch side: the first two get attempts of every chunk fail; the
    // parallel workers retry instead of failing the restore.
    let flaky_get = FaultyTransport::new(
        &loopback,
        FaultConfig {
            transient_get_attempts: 2,
            ..Default::default()
        },
    );
    let mut source = RemoteChunkSource::open(&flaky_get, remote_id).unwrap();
    let mut sink = MaterialiseSink::default();
    source.stream_out(&mut sink).unwrap();
    let stats = source.stats();
    assert_eq!(stats.chunks_read, 6);
    assert!(
        stats.transient_retries >= 12,
        "worker-loop retries recovered every chunk: {stats:?}"
    );
}

#[test]
fn retry_exhaustion_fails_transiently_not_as_corruption() {
    let dst_dir = TempDir::new("deadlink");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(7, 3);
    let (id, _) = dst.write_image(&img, &WriteOptions::full()).unwrap();

    let loopback = LoopbackTransport::new(&dst);
    let dead = FaultyTransport::new(
        &loopback,
        FaultConfig {
            // One more failure than the retry budget: every fetch exhausts.
            transient_get_attempts: MAX_TRANSIENT_RETRIES + 1,
            ..Default::default()
        },
    );
    let mut source = RemoteChunkSource::open(&dead, id).unwrap();
    let mut sink = MaterialiseSink::default();
    let err = source.stream_out(&mut sink).unwrap_err();
    assert!(err.is_transient(), "got: {err}");
    assert!(!err.is_corruption());
}

#[test]
fn corruption_fails_fast_without_retries() {
    let dst_dir = TempDir::new("poison");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(8, 3);
    let (id, _) = dst.write_image(&img, &WriteOptions::full()).unwrap();

    // Flip one byte in one chunk file: the transport serves it verbatim,
    // the verification ladder must catch it, and nothing may retry.
    let chunks_dir = dst_dir.path().join("chunks");
    let victim = std::fs::read_dir(&chunks_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "chk"))
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();

    let transport = LoopbackTransport::new(&dst);
    let mut source = RemoteChunkSource::open(&transport, id).unwrap();
    let mut sink = MaterialiseSink::default();
    let err = source.stream_out(&mut sink).unwrap_err();
    assert!(err.is_corruption(), "got: {err}");
    assert_eq!(
        source.stats().transient_retries,
        0,
        "corruption is never retried"
    );
}

#[test]
fn receiving_store_rejects_chunks_that_fail_verification() {
    let dst_dir = TempDir::new("reject");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let transport = LoopbackTransport::new(&dst);

    use crac_imagestore::{ContentHash, Transport};
    // Valid chunk-file framing around bytes that hash to something else
    // entirely: a lying sender.
    let body = vec![0x5Au8; PAGE_SIZE as usize];
    let file = ChunkFile {
        encoding: crac_imagestore::codec::Encoding::Raw,
        raw_len: body.len() as u64,
        encoded: body,
    }
    .to_bytes();
    let claimed = ContentHash::of(b"something else");
    let err = transport.put_chunk(claimed, &file).unwrap_err();
    assert!(err.is_corruption(), "got: {err}");
    assert!(!dst.contains_chunk(claimed), "nothing may land");
    assert_eq!(
        std::fs::read_dir(dst_dir.path().join("chunks"))
            .unwrap()
            .count(),
        0,
        "not even litter"
    );
}

#[test]
fn manifest_is_refused_until_its_chunks_landed() {
    let (src_dir, dst_dir) = (TempDir::new("order-src"), TempDir::new("order-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(9, 2);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    use crac_imagestore::Transport;
    let transport = LoopbackTransport::new(&dst);
    let manifest_bytes = std::fs::read(
        src_dir
            .path()
            .join("images")
            .join(format!("{:016x}.crimg", id.0)),
    )
    .unwrap();
    let err = transport.put_manifest(&manifest_bytes, None).unwrap_err();
    assert!(
        matches!(err, StoreError::MissingChunk { .. }),
        "chunks-before-manifest ordering is enforced by the receiver: {err}"
    );
    assert_eq!(dst.stats().unwrap().images, 0);
}

#[test]
fn lying_peer_manifest_with_broken_geometry_is_rejected() {
    let (src_dir, dst_dir) = (TempDir::new("liar-src"), TempDir::new("liar-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(12, 2);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    // Ship the chunks honestly, then publish a manifest whose run
    // geometry lies (a run grew a page, so the chunk no longer covers
    // its recorded raw_len): CRC-valid, chunks present — only the
    // geometry validation can catch it, and it must, *before*
    // publication.
    use crac_imagestore::format::Manifest;
    use crac_imagestore::Transport;
    let transport = LoopbackTransport::new(&dst);
    let before = src.replicate_to(id, &transport).unwrap().1;
    assert_eq!(before.chunks_shipped, 2);

    let manifest_path = src_dir
        .path()
        .join("images")
        .join(format!("{:016x}.crimg", id.0));
    let honest = Manifest::from_bytes(&std::fs::read(&manifest_path).unwrap()).unwrap();
    let images_before = dst.stats().unwrap().images;

    let mut bad_geometry = honest.clone();
    bad_geometry.regions[0].chunks[0].runs[0].count += 1;
    let err = transport
        .put_manifest(&bad_geometry.to_bytes(), None)
        .unwrap_err();
    assert!(err.is_corruption(), "got: {err}");

    // Self-consistent runs/raw_len that disagree with what the stored
    // chunk actually holds: only the header cross-check can catch this.
    let mut bad_length = honest.clone();
    {
        let chunk = &mut bad_length.regions[0].chunks[0];
        chunk.raw_len = PAGE_SIZE;
        chunk.runs = vec![crac_addrspace::PageRun { first: 0, count: 1 }];
    }
    let err = transport
        .put_manifest(&bad_length.to_bytes(), None)
        .unwrap_err();
    assert!(err.is_corruption(), "got: {err}");

    assert_eq!(
        dst.stats().unwrap().images,
        images_before,
        "neither broken image may become visible"
    );
}

/// Satellite regression: a replication killed mid-stream leaves the
/// destination openable and torn-chunk-free, and a re-run resumes,
/// shipping only what is still missing.
#[test]
fn crash_interrupted_replication_leaves_destination_clean_and_resumes() {
    let (src_dir, dst_dir) = (TempDir::new("crash-src"), TempDir::new("crash-dst"));
    let src = ImageStore::open(src_dir.path()).unwrap();
    let img = image(10, 8);
    let (id, _) = src.write_image(&img, &WriteOptions::full()).unwrap();

    const CUT_AFTER: usize = 3;
    {
        let dst = ImageStore::open(dst_dir.path()).unwrap();
        let loopback = LoopbackTransport::new(&dst);
        let killed = FaultyTransport::new(
            &loopback,
            FaultConfig {
                cut_after_puts: Some(CUT_AFTER),
                ..Default::default()
            },
        );
        let err = src.replicate_to(id, &killed).unwrap_err();
        assert!(err.is_transient(), "the link died: {err}");
        assert_eq!(loopback.stats().chunks_put, CUT_AFTER);
    } // the "crashed" destination process exits, lock released

    // The destination store opens clean: no image is visible (the
    // manifest never travelled), and every chunk that did land is a
    // complete, verifiable file — no torn state.
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    assert_eq!(dst.stats().unwrap().images, 0, "no torn image visible");
    let mut landed = 0;
    for entry in std::fs::read_dir(dst_dir.path().join("chunks")).unwrap() {
        let path = entry.unwrap().path();
        assert!(
            path.extension().is_some_and(|x| x == "chk"),
            "no temp litter visible: {path:?}"
        );
        let bytes = std::fs::read(&path).unwrap();
        ChunkFile::parse(&bytes).expect("every landed chunk parses and CRC-checks");
        landed += 1;
    }
    assert_eq!(landed, CUT_AFTER);

    // Re-running the replication resumes: the negotiation skips the
    // chunks that already landed and ships exactly the remainder.
    let loopback = LoopbackTransport::new(&dst);
    let (remote_id, stats) = src.replicate_to(id, &loopback).unwrap();
    assert_eq!(stats.chunks_deduped, CUT_AFTER, "landed chunks are skipped");
    assert_eq!(stats.chunks_shipped, 8 - CUT_AFTER, "only the rest ships");
    assert_eq!(loopback.stats().chunks_put, 8 - CUT_AFTER);
    assert_same_content(&dst, remote_id, &img);
}

#[test]
fn latency_jitter_reorders_completions_without_corrupting_the_restore() {
    let dst_dir = TempDir::new("jitter");
    let dst = ImageStore::open(dst_dir.path()).unwrap();
    let img = image(11, 10);
    let (id, _) = dst.write_image(&img, &WriteOptions::full()).unwrap();

    let loopback = LoopbackTransport::new(&dst);
    let jittery = FaultyTransport::new(
        &loopback,
        FaultConfig {
            seed: 0xC0FFEE,
            jitter: std::time::Duration::from_millis(3),
            ..Default::default()
        },
    );
    let mut source = RemoteChunkSource::open(&jittery, id).unwrap();
    let mut sink = MaterialiseSink::default();
    source.stream_out(&mut sink).unwrap();
    let mut back = sink.into_image(source.taken_at_ns());
    back.regions[0].pages.sort_by_key(|(i, _)| *i);
    assert_eq!(
        back.regions[0].pages, img.regions[0].pages,
        "arbitrary completion order still splices correctly"
    );
}
