//! Pre-copy checkpointing, end to end through the store: concurrent
//! mutation while the image streams, iterative delta rounds, a short final
//! stop-the-world pass — and restores that are byte-identical to what a
//! full stop-the-world checkpoint of the same final memory produces.
//!
//! The mutator runs on its own thread and is stopped by the coordinator's
//! quiesce (`pre_checkpoint`) exactly like a real application: once the
//! final pass begins, memory is frozen, so the live content *after*
//! `checkpoint_precopy` returns is the ground truth every restore is
//! checked against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crac_addrspace::{Addr, Half, MapRequest, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{Coordinator, CoordinatorConfig, DmtcpPlugin, PrecopyConfig};
use crac_imagestore::net::{serve_on, TcpTransport};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{Compression, CoordinatorStoreExt, ImageStore, WriteOptions};
use proptest::prelude::*;

const SECRET: &[u8] = b"precopy-secret";
const REGION_PAGES: u64 = 64;

/// Quiesces the mutator: sets the stop flag and waits until the mutator
/// thread acknowledges it has taken its last write — after this hook
/// returns, memory is static, exactly like a quiesced application.
struct StopMutator {
    stop: Arc<AtomicBool>,
    acked: Arc<AtomicBool>,
}

impl DmtcpPlugin for StopMutator {
    fn name(&self) -> &str {
        "stop-mutator"
    }
    fn pre_checkpoint(&self) {
        self.stop.store(true, Ordering::SeqCst);
        while !self.acked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    }
}

/// A space with one upper-half mapping of [`REGION_PAGES`] pages seeded
/// with `initial` content, a coordinator quiescing through [`StopMutator`],
/// and a mutator thread replaying `script` in a loop until quiesced.
fn space_under_mutation(
    initial: &[(u64, u8)],
    script: Vec<(u64, u8)>,
) -> (SharedSpace, Addr, Coordinator, JoinHandle<u64>) {
    let space = SharedSpace::new_no_aslr();
    let a = space
        .mmap(MapRequest::anon(
            REGION_PAGES * PAGE_SIZE,
            Half::Upper,
            "precopy-app",
        ))
        .unwrap();
    for (page, seed) in initial {
        space
            .write_bytes(a + page * PAGE_SIZE, &[*seed; 128])
            .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicBool::new(false));
    let mut coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    coord.register_plugin(Arc::new(StopMutator {
        stop: Arc::clone(&stop),
        acked: Arc::clone(&acked),
    }));
    let mut_space = space.clone();
    let mutator = std::thread::spawn(move || {
        let mut writes = 0u64;
        'outer: loop {
            for (page, val) in &script {
                if stop.load(Ordering::SeqCst) {
                    break 'outer;
                }
                let bytes = [val.wrapping_add(writes as u8); 64];
                mut_space
                    .write_bytes(a + page * PAGE_SIZE + 64, &bytes)
                    .unwrap();
                writes += 1;
            }
            if script.is_empty() || stop.load(Ordering::SeqCst) {
                break;
            }
        }
        acked.store(true, Ordering::SeqCst);
        writes
    });
    (space, a, coord, mutator)
}

/// Reads the whole mapped range of `space`.
fn mapping_bytes(space: &SharedSpace, a: Addr) -> Vec<u8> {
    let mut buf = vec![0u8; (REGION_PAGES * PAGE_SIZE) as usize];
    space.read_bytes(a, &mut buf).unwrap();
    buf
}

#[test]
fn precopy_to_store_under_mutation_restores_the_quiesced_memory() {
    let dir = TempDir::new("precopy-store");
    let store = ImageStore::open(dir.path()).unwrap();
    let initial: Vec<(u64, u8)> = (0..REGION_PAGES).map(|p| (p, p as u8 + 1)).collect();
    let script: Vec<(u64, u8)> = (0..16)
        .map(|i| (i * 3 % REGION_PAGES, 0xC0 + i as u8))
        .collect();
    let (space, a, coord, mutator) = space_under_mutation(&initial, script);

    let (id, pre, write) = coord
        .checkpoint_to_store_precopy(&store, 7, &WriteOptions::full(), PrecopyConfig::default())
        .unwrap();
    let writes = mutator.join().unwrap();
    assert!(writes > 0, "the mutator must have raced the bulk copy");
    // Bulk round + any deltas + the final pass all made it to the store.
    assert!(pre.round_bytes.len() >= 2);
    assert!(pre.round_bytes[0] >= REGION_PAGES * PAGE_SIZE);
    assert!(write.chunks_written > 0);

    // Memory froze at the quiesce; the restored image must equal it.
    let live = mapping_bytes(&space, a);
    let fresh = SharedSpace::new_no_aslr();
    coord.restart_from_store(&store, id, &fresh).unwrap();
    assert_eq!(live, mapping_bytes(&fresh, a));

    // The observability contract: stop window and per-round bytes are on
    // the coordinator's registry for both modes to compare.
    let text = coord.obs().render_text();
    assert!(text.contains("crac_ckpt_stop_window_us"));
    assert!(text.contains("crac_precopy_round_bytes"));
    assert!(text.contains("crac_precopy_rounds"));
}

#[test]
fn precopy_to_remote_over_tcp_under_mutation_restores_the_quiesced_memory() {
    let dir = TempDir::new("precopy-tcp");
    let peer = Arc::new(ImageStore::open(dir.path()).unwrap());
    let server = serve_on("127.0.0.1:0", Arc::clone(&peer), SECRET).unwrap();
    let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();

    let initial: Vec<(u64, u8)> = (0..REGION_PAGES / 2)
        .map(|p| (p * 2, p as u8 + 9))
        .collect();
    let script: Vec<(u64, u8)> = (0..24)
        .map(|i| (i * 5 % REGION_PAGES, 0x30 + i as u8))
        .collect();
    let (space, a, coord, mutator) = space_under_mutation(&initial, script);

    let (id, pre, replicate) = coord
        .checkpoint_to_remote_precopy(&tcp, 3, Compression::None, None, PrecopyConfig::default())
        .unwrap();
    mutator.join().unwrap();
    assert!(pre.round_bytes.len() >= 2);
    assert!(replicate.chunks_shipped > 0);

    let live = mapping_bytes(&space, a);
    let fresh = SharedSpace::new_no_aslr();
    coord.restart_from_remote(&tcp, id, &fresh).unwrap();
    assert_eq!(live, mapping_bytes(&fresh, a));
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Byte-identical pre-copy-vs-stop-the-world equivalence under
    /// randomized concurrent mutation, over the remote/TCP path: the
    /// pre-copy image (taken while a random write script raced the copy)
    /// restores to exactly the same bytes as a plain stop-the-world
    /// checkpoint of the final, quiesced memory.
    #[test]
    fn precopy_over_tcp_equals_stw_of_quiesced_memory(
        initial in proptest::collection::vec((0..REGION_PAGES, any::<u8>()), 1..40),
        script in proptest::collection::vec((0..REGION_PAGES, any::<u8>()), 1..32),
    ) {
        let dir = TempDir::new("precopy-prop");
        let peer = Arc::new(ImageStore::open(dir.path()).unwrap());
        let server = serve_on("127.0.0.1:0", Arc::clone(&peer), SECRET).unwrap();
        let tcp = TcpTransport::connect(server.local_addr(), SECRET).unwrap();
        let (space, a, coord, mutator) = space_under_mutation(&initial, script);

        let (id, _pre, _rep) = coord
            .checkpoint_to_remote_precopy(
                &tcp,
                0,
                Compression::None,
                None,
                PrecopyConfig { max_rounds: 3, convergence_pages: 4, max_run_gap: 1, adaptive_rounds: false },
            )
            .unwrap();
        mutator.join().unwrap();

        // Ground truth: a stop-the-world checkpoint of the now-static
        // memory, restored the materialising way.
        let (stw_image, _) = coord.checkpoint(0);
        let stw_space = SharedSpace::new_no_aslr();
        coord.restart_into(&stw_image, &stw_space);

        let pre_space = SharedSpace::new_no_aslr();
        coord.restart_from_remote(&tcp, id, &pre_space).unwrap();
        server.shutdown();

        prop_assert_eq!(mapping_bytes(&pre_space, a), mapping_bytes(&stw_space, a));
        prop_assert_eq!(mapping_bytes(&pre_space, a), mapping_bytes(&space, a));
    }
}
