//! The tentpole property of the observability layer, end to end: ONE
//! registry — the coordinator's — observes an entire checkpoint →
//! replicate → restore flow.  Every layer (writer pipeline, remote
//! shipping, reader pipeline, retry loop) records into it, the `*Stats`
//! structs are views over the same numbers, and a single `render_text`
//! scrape tells the whole story.

use crac_addrspace::{Half, MapRequest, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{Coordinator, CoordinatorConfig};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{
    Compression, CoordinatorStoreExt, EventKind, ImageStore, LoopbackTransport, WriteOptions,
};

fn space_with_data(pages: u64) -> SharedSpace {
    let space = SharedSpace::new_no_aslr();
    let addr = space
        .mmap(MapRequest::anon(pages * PAGE_SIZE, Half::Upper, "obs-data"))
        .unwrap();
    for p in 0..pages {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[..8].copy_from_slice(&p.to_le_bytes());
        page[8] = 0xAB;
        space.write_bytes(addr + p * PAGE_SIZE, &page).unwrap();
    }
    space
}

#[test]
fn one_registry_observes_checkpoint_replicate_restore() {
    let space = space_with_data(64);
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
    let reg = coord.obs();

    // Checkpoint to a local store: the coordinator hands its registry
    // down, so the writer's counters land in `reg`.
    let dir = TempDir::new("obs-flow-store");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, _ckpt, write_stats) = coord
        .checkpoint_to_store(&store, 1_000, &WriteOptions::full())
        .unwrap();
    assert!(write_stats.chunks_written > 0);

    // Replicate to a peer store over the loopback transport.
    let peer_dir = TempDir::new("obs-flow-peer");
    let peer = ImageStore::open(peer_dir.path()).unwrap();
    let transport = LoopbackTransport::new(&peer);
    let (remote_id, rep_stats) = store.replicate_to(id, &transport).unwrap();
    assert!(rep_stats.chunks_shipped > 0);

    // Restore — both locally and from the remote — into fresh spaces.
    let fresh = SharedSpace::new_no_aslr();
    let (_rstats, read_stats) = coord.restart_from_store(&store, id, &fresh).unwrap();
    assert!(read_stats.chunks_read > 0);
    let fresh2 = SharedSpace::new_no_aslr();
    coord
        .restart_from_remote(&transport, remote_id, &fresh2)
        .unwrap();

    // Every phase recorded into the ONE registry the coordinator owns.
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("crac_writer_chunks_written"),
        write_stats.chunks_written as u64,
        "stats struct and registry disagree: double bookkeeping"
    );
    assert_eq!(
        snap.counter("crac_remote_chunks_shipped"),
        rep_stats.chunks_shipped as u64
    );
    assert!(
        snap.counter("crac_reader_chunks_read") >= read_stats.chunks_read as u64,
        "both restores' reads accumulate in the shared registry"
    );
    for family in [
        "crac_writer_stage_hash_us",
        "crac_writer_stage_io_us",
        "crac_reader_stage_fetch_us",
        "crac_reader_stage_verify_us",
        "crac_reader_stage_splice_us",
    ] {
        let h = snap
            .histogram(family)
            .unwrap_or_else(|| panic!("stage histogram {family} missing from the flow's registry"));
        assert!(h.count > 0, "{family} never observed a span");
    }

    // One scrape renders the whole story in Prometheus text form.
    let text = reg.render_text();
    for family in [
        "crac_writer_chunks_written",
        "crac_remote_chunks_shipped",
        "crac_reader_chunks_read",
        "crac_reader_stage_fetch_us_bucket",
    ] {
        assert!(text.contains(family), "scrape lacks {family}");
    }

    // And the event ring narrates it, in order.
    let events = reg.drain_events();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::CheckpointBegun));
    assert!(kinds.contains(&EventKind::CheckpointFinished));
    assert!(kinds.contains(&EventKind::RestoreBegun));
    assert!(kinds.contains(&EventKind::RestoreFinished));
    let begun = kinds
        .iter()
        .position(|k| *k == EventKind::CheckpointBegun)
        .unwrap();
    let restored = kinds
        .iter()
        .rposition(|k| *k == EventKind::RestoreFinished)
        .unwrap();
    assert!(begun < restored, "narrative out of order");
}

#[test]
fn checkpoint_to_remote_records_into_the_coordinator_registry() {
    let space = space_with_data(32);
    let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());

    let peer_dir = TempDir::new("obs-remote-peer");
    let peer = ImageStore::open(peer_dir.path()).unwrap();
    let transport = LoopbackTransport::new(&peer);
    let (id, _ckpt, ship_stats) = coord
        .checkpoint_to_remote(&transport, 2_000, Compression::None, None)
        .unwrap();

    let fresh = SharedSpace::new_no_aslr();
    coord.restart_from_remote(&transport, id, &fresh).unwrap();

    let snap = coord.obs().snapshot();
    assert_eq!(
        snap.counter("crac_remote_chunks_shipped"),
        ship_stats.chunks_shipped as u64
    );
    assert!(snap.counter("crac_reader_chunks_read") > 0);
    assert!(snap.histogram("crac_reader_stage_fetch_us").unwrap().count > 0);
}
