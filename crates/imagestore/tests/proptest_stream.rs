//! Property-based equivalence of the streaming writer + parallel reader
//! against the legacy materialised path.
//!
//! The streaming pipeline replaced "materialise, then serialise" — these
//! properties pin down that nothing observable changed:
//!
//! 1. **Byte-identical stores** — streaming an image run by run produces
//!    the same chunk set (same content hashes, same file bytes) as writing
//!    the materialised image, and both read back equal to the original.
//! 2. **Incremental chains agree** — a parent/child chain written through
//!    either path dedups identically.
//! 3. **Corruption is still fail-stop** — a flipped byte in any file of a
//!    streaming-written store surfaces as an error through the parallel
//!    reader.

use std::collections::BTreeSet;

use crac_addrspace::{Addr, Prot, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, Coordinator, CoordinatorConfig, SavedRegion};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{
    restore_buffer_bound, ChunkSource, Compression, CoordinatorStoreExt, ImageStore,
    MaterialiseSink, RegionSource, StreamWriter, WriteOptions,
};
use proptest::prelude::*;

/// A random saved region: up to 48 pages scattered over a 64-page span.
fn region_strategy() -> impl Strategy<Value = SavedRegion> {
    (
        0u64..512,
        proptest::collection::vec((0u64..64, any::<u8>()), 0..48),
        any::<bool>(),
    )
        .prop_map(|(slot, raw_pages, exec)| {
            let mut indices = BTreeSet::new();
            let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
            for (idx, seed) in raw_pages {
                if !indices.insert(idx) {
                    continue;
                }
                let mut page = vec![seed; PAGE_SIZE as usize];
                if seed % 3 == 0 {
                    for (j, b) in page.iter_mut().enumerate() {
                        *b = (j as u8).wrapping_mul(97).wrapping_add(seed);
                    }
                }
                pages.push((idx, page));
            }
            pages.sort_by_key(|(idx, _)| *idx);
            SavedRegion {
                start: Addr(0x4000_0000_0000 + slot * 64 * PAGE_SIZE),
                len: 64 * PAGE_SIZE,
                prot: if exec { Prot::RX } else { Prot::RW },
                label: "stream-prop".to_string(),
                pages,
            }
        })
}

fn image_strategy() -> impl Strategy<Value = CheckpointImage> {
    (
        proptest::collection::vec(region_strategy(), 1..5),
        proptest::collection::vec(any::<u8>(), 0..200),
        0u64..1_000_000_000,
    )
        .prop_map(|(regions, payload, taken_at_ns)| {
            let mut image = CheckpointImage {
                regions,
                taken_at_ns,
                ..Default::default()
            };
            if !payload.is_empty() {
                image.payloads.insert("crac".to_string(), payload);
            }
            image
        })
}

/// Writes `image` through the explicit streaming seam (`stream_image` +
/// `RegionSource::stream_into`), as a disk-bound producer would.
fn write_streaming(
    store: &ImageStore,
    image: &CheckpointImage,
    opts: &WriteOptions,
) -> (crac_imagestore::ImageId, crac_imagestore::WriteStats) {
    let (id, (), stats) = store
        .stream_image(opts, |writer: &mut StreamWriter<'_>| {
            image.stream_into(writer)?;
            writer.set_taken_at(image.taken_at_ns);
            Ok(())
        })
        .unwrap();
    (id, stats)
}

/// Every chunk file of a store, as `(name, bytes)` sorted by name.
fn chunk_files(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("chunks"))
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming and materialised writes produce byte-identical chunk
    /// stores, and both round-trip back to the original image.
    #[test]
    fn streaming_equals_materialised(
        img in image_strategy(),
        compress in any::<bool>(),
    ) {
        let opts = WriteOptions {
            compression: if compress { Compression::Rle } else { Compression::None },
            ..WriteOptions::full()
        };
        let dir_mat = TempDir::new("equiv-mat");
        let dir_str = TempDir::new("equiv-str");
        let store_mat = ImageStore::open(dir_mat.path()).unwrap();
        let store_str = ImageStore::open(dir_str.path()).unwrap();

        let (id_mat, stats_mat) = store_mat.write_image(&img, &opts).unwrap();
        let (id_str, stats_str) = write_streaming(&store_str, &img, &opts);

        prop_assert_eq!(stats_mat.chunks_total, stats_str.chunks_total);
        prop_assert_eq!(stats_mat.chunks_written, stats_str.chunks_written);
        prop_assert_eq!(stats_mat.chunk_bytes_written, stats_str.chunk_bytes_written);
        prop_assert_eq!(stats_mat.manifest_bytes, stats_str.manifest_bytes);
        // The chunk stores are byte-for-byte identical (same content names,
        // same file contents): the streaming chunker splits exactly where
        // the legacy one did, so dedup across old and new stores keeps
        // working.
        prop_assert_eq!(chunk_files(dir_mat.path()), chunk_files(dir_str.path()));

        let (back_mat, _) = store_mat.read_image(id_mat).unwrap();
        let (back_str, read_stats) = store_str.read_image(id_str).unwrap();
        prop_assert_eq!(&back_mat, &img);
        prop_assert_eq!(&back_str, &img);
        prop_assert!(read_stats.threads_used >= 1);
    }

    /// Incremental parent chains dedup identically through both paths and
    /// read back complete.
    #[test]
    fn incremental_chains_agree(
        base in image_strategy(),
        touch in any::<u8>(),
    ) {
        // Derive the child by re-filling a deterministic subset of pages.
        let mut child = base.clone();
        child.taken_at_ns = base.taken_at_ns + 1;
        for region in &mut child.regions {
            for (idx, page) in region.pages.iter_mut() {
                if (*idx + touch as u64).is_multiple_of(5) {
                    page.fill(touch);
                }
            }
        }

        let dir_mat = TempDir::new("chain-mat");
        let dir_str = TempDir::new("chain-str");
        let store_mat = ImageStore::open(dir_mat.path()).unwrap();
        let store_str = ImageStore::open(dir_str.path()).unwrap();

        let (p_mat, _) = store_mat.write_image(&base, &WriteOptions::full()).unwrap();
        let (p_str, _) = write_streaming(&store_str, &base, &WriteOptions::full());
        let (c_mat, s_mat) = store_mat
            .write_image(&child, &WriteOptions::incremental(p_mat))
            .unwrap();
        let (c_str, s_str) =
            write_streaming(&store_str, &child, &WriteOptions::incremental(p_str));

        prop_assert_eq!(s_mat.chunks_deduped, s_str.chunks_deduped);
        prop_assert_eq!(s_mat.chunks_written, s_str.chunks_written);
        prop_assert_eq!(chunk_files(dir_mat.path()), chunk_files(dir_str.path()));
        prop_assert_eq!(store_str.image_info(c_str).unwrap().parent, Some(p_str));

        let (back, _) = store_str.read_image(c_str).unwrap();
        prop_assert_eq!(&back, &child);
        let (back_mat, _) = store_mat.read_image(c_mat).unwrap();
        prop_assert_eq!(&back_mat, &child);
    }

    /// Streaming restore (splice-as-chunks-arrive into a fresh address
    /// space) is observably identical to the materialised path (full
    /// `read_image`, then `restart_into`): same restored bytes, same
    /// restart stats, same read accounting — and the streaming read's
    /// peak buffer respects the analytic bound.
    #[test]
    fn streaming_restore_matches_materialised(
        img in image_strategy(),
        compress in any::<bool>(),
    ) {
        // Regions restore at their recorded addresses, so drop duplicates
        // of the same start slot (the write-side strategies allow them).
        let mut img = img;
        let mut seen = BTreeSet::new();
        img.regions.retain(|r| seen.insert(r.start));

        let opts = WriteOptions {
            compression: if compress { Compression::Rle } else { Compression::None },
            ..WriteOptions::full()
        };
        let dir = TempDir::new("restore-equiv");
        let store = ImageStore::open(dir.path()).unwrap();
        let (id, _) = write_streaming(&store, &img, &opts);

        let coord = Coordinator::new(SharedSpace::new_no_aslr(), CoordinatorConfig::default());

        // Materialised: fetch-all barrier, then splice from the image.
        let space_mat = SharedSpace::new_no_aslr();
        let (image_mat, stats_mat) = store.read_image(id).unwrap();
        let restart_mat = coord.restart_into(&image_mat, &space_mat);

        // Streaming: verified chunks land in the space as they arrive.
        let space_str = SharedSpace::new_no_aslr();
        let (restart_str, stats_str) = coord
            .restart_from_store(&store, id, &space_str)
            .unwrap();

        prop_assert_eq!(&image_mat, &img);
        prop_assert_eq!(restart_str, restart_mat);
        prop_assert_eq!(stats_str.chunks_read, stats_mat.chunks_read);
        prop_assert_eq!(stats_str.chunks_cached, stats_mat.chunks_cached);
        prop_assert_eq!(stats_str.chunk_bytes_read, stats_mat.chunk_bytes_read);
        prop_assert_eq!(stats_str.manifest_bytes, stats_mat.manifest_bytes);
        prop_assert!(
            stats_str.peak_buffered_bytes <= restore_buffer_bound(stats_str.threads_used),
            "peak {} exceeds bound {}",
            stats_str.peak_buffered_bytes,
            restore_buffer_bound(stats_str.threads_used)
        );

        // Byte-for-byte identical restored memory.
        for region in &img.regions {
            let mut got_mat = vec![0u8; region.len as usize];
            let mut got_str = vec![0u8; region.len as usize];
            space_mat.read_bytes(region.start, &mut got_mat).unwrap();
            space_str.read_bytes(region.start, &mut got_str).unwrap();
            prop_assert_eq!(&got_mat, &got_str);
            // And both match the checkpointed pages (unlisted pages zero).
            let mut expect = vec![0u8; region.len as usize];
            for (idx, page) in &region.pages {
                let off = (idx * PAGE_SIZE) as usize;
                expect[off..off + PAGE_SIZE as usize].copy_from_slice(page);
            }
            prop_assert_eq!(&got_str, &expect);
        }

        // The seam itself round-trips with no store involved: the image
        // as a `ChunkSource` driven into a `MaterialiseSink` reproduces
        // the image exactly.
        let mut source = img.clone();
        let mut sink = MaterialiseSink::default();
        source.stream_out(&mut sink).unwrap();
        prop_assert_eq!(&sink.into_image(img.taken_at_ns), &img);
    }

    /// Any single corrupted byte in a streaming-written store is detected
    /// by the parallel reader.
    #[test]
    fn streamed_store_corruption_is_detected(
        img in image_strategy(),
        file_pick in any::<u64>(),
        offset_pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let dir = TempDir::new("stream-corrupt");
        let store = ImageStore::open(dir.path()).unwrap();
        let (id, _) = write_streaming(&store, &img, &WriteOptions::full());
        drop(store);

        let mut files: Vec<std::path::PathBuf> = Vec::new();
        for sub in ["images", "chunks"] {
            for entry in std::fs::read_dir(dir.path().join(sub)).unwrap() {
                files.push(entry.unwrap().path());
            }
        }
        files.sort();
        let target = &files[(file_pick % files.len() as u64) as usize];
        let mut bytes = std::fs::read(target).unwrap();
        let offset = (offset_pick % bytes.len() as u64) as usize;
        bytes[offset] ^= xor;
        std::fs::write(target, &bytes).unwrap();

        let result = ImageStore::open(dir.path()).unwrap().read_image(id);
        prop_assert!(
            result.is_err(),
            "flip of byte {} in {} went undetected", offset, target.display()
        );
    }
}
