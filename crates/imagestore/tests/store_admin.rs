//! Store administration: cross-process locking, image deletion with
//! chunk garbage collection, and retention policies.

use crac_addrspace::{Addr, Prot, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{ImageStore, StoreError, WriteOptions};

/// An image with `pages` dirty pages whose content is seeded by `seed` (so
/// different seeds share no chunks).
fn image(seed: u8, pages: u64) -> CheckpointImage {
    let mut img = CheckpointImage {
        taken_at_ns: seed as u64,
        ..Default::default()
    };
    img.regions.push(SavedRegion {
        start: Addr(0x4000_0000_0000),
        len: pages * PAGE_SIZE,
        prot: Prot::RW,
        label: format!("admin-{seed}"),
        pages: (0..pages)
            .map(|i| {
                let mut page = vec![seed; PAGE_SIZE as usize];
                // Unique stamp per page so no intra-image dedup occurs.
                page[..8].copy_from_slice(&((seed as u64) << 32 | (i + 1)).to_le_bytes());
                (i, page)
            })
            .collect(),
    });
    img
}

#[test]
fn delete_reclaims_only_unreferenced_chunks() {
    let dir = TempDir::new("gc-basic");
    let store = ImageStore::open(dir.path()).unwrap();

    // Two images share every chunk of `base`; a third shares nothing.
    let base = image(1, 64);
    let mut child = base.clone();
    child.regions[0].pages[0].1.fill(0xEE); // dirty one page
    let other = image(2, 32);

    let (base_id, base_stats) = store.write_image(&base, &WriteOptions::full()).unwrap();
    let (child_id, _) = store
        .write_image(&child, &WriteOptions::incremental(base_id))
        .unwrap();
    let (other_id, other_stats) = store.write_image(&other, &WriteOptions::full()).unwrap();
    let before = store.stats().unwrap();

    // Deleting the parent reclaims only the one chunk the child's dirtied
    // page replaced; every other chunk is still referenced by the child
    // (manifests are self-contained, so the child keeps restoring).
    let del = store.delete_image(base_id).unwrap();
    assert_eq!(del.images_deleted, 1);
    assert_eq!(del.chunks_deleted, 1, "only the superseded chunk is free");
    let (back, _) = store.read_image(child_id).unwrap();
    assert_eq!(back, child, "child restores fully after parent deletion");

    // Deleting the unrelated image reclaims exactly its own chunks.
    let del = store.delete_image(other_id).unwrap();
    assert_eq!(del.chunks_deleted, other_stats.chunks_written);
    assert!(del.chunk_bytes_reclaimed > 0);

    // Deleting the child empties the chunk store entirely.
    let del = store.delete_image(child_id).unwrap();
    assert!(del.chunks_deleted >= base_stats.chunks_written);
    let after = store.stats().unwrap();
    assert_eq!(after.images, 0);
    assert_eq!(after.chunks, 0);
    assert_eq!(after.chunk_bytes, 0);
    assert!(before.chunk_bytes > 0);

    // The deleted image is gone for good.
    assert!(matches!(
        store.read_image(child_id),
        Err(StoreError::UnknownImage(_))
    ));
    assert!(matches!(
        store.delete_image(child_id),
        Err(StoreError::UnknownImage(_))
    ));
}

#[test]
fn gc_sweep_collects_orphan_chunks_of_aborted_writes() {
    let dir = TempDir::new("gc-orphan");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, _) = store
        .write_image(&image(3, 16), &WriteOptions::full())
        .unwrap();

    // Model an aborted write: a chunk file nobody references.  (Content
    // does not matter — the sweep judges by reference, not validity.)
    let orphan = dir
        .path()
        .join("chunks")
        .join(format!("{:032x}.chk", 0xDEAD_BEEFu64));
    std::fs::write(&orphan, b"orphaned by a crashed writer").unwrap();

    let (_, keep_all) = store
        .write_image(&image(4, 16), &WriteOptions::full())
        .unwrap();
    assert!(keep_all.chunks_written > 0);

    let del = store.delete_image(id).unwrap();
    assert!(!orphan.exists(), "sweep reclaims orphans too");
    assert!(del.chunks_deleted >= 1);
}

#[test]
fn retain_last_keeps_the_newest_images() {
    let dir = TempDir::new("gc-retain");
    let store = ImageStore::open(dir.path()).unwrap();
    let ids: Vec<_> = (0..5)
        .map(|i| {
            store
                .write_image(&image(10 + i, 24), &WriteOptions::full())
                .unwrap()
                .0
        })
        .collect();

    let (deleted, stats) = store.retain_last(2).unwrap();
    assert_eq!(deleted, ids[..3].to_vec());
    assert_eq!(stats.images_deleted, 3);
    assert!(stats.chunks_deleted > 0);

    let left = store.list_images().unwrap();
    assert_eq!(
        left.iter().map(|i| i.id).collect::<Vec<_>>(),
        ids[3..].to_vec()
    );
    for info in left {
        let (_, read) = store.read_image(info.id).unwrap();
        assert!(read.chunks_read > 0, "survivors stay fully readable");
    }

    // Retaining more than exist is a no-op, not an error.
    let (deleted, stats) = store.retain_last(10).unwrap();
    assert!(deleted.is_empty());
    assert_eq!(stats, Default::default());
}

#[test]
fn deletion_is_refused_while_a_streaming_write_is_in_flight() {
    let dir = TempDir::new("gc-busy");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, _) = store
        .write_image(&image(20, 16), &WriteOptions::full())
        .unwrap();

    let result = store.stream_image(&WriteOptions::full(), |_writer| {
        // Mid-write, the sweep must refuse: it could otherwise delete a
        // chunk this very write just deduplicated against.
        match store.delete_image(id) {
            Err(StoreError::Busy { .. }) => Ok(()),
            other => panic!("expected Busy, got {other:?}"),
        }
    });
    result.unwrap();

    // Once the write finished, deletion works again.
    store.delete_image(id).unwrap();
}

#[test]
fn read_only_opens_skip_the_lock_and_refuse_writes() {
    let dir = TempDir::new("ro-open");
    let writer = ImageStore::open(dir.path()).unwrap();
    let (id, _) = writer
        .write_image(&image(30, 16), &WriteOptions::full())
        .unwrap();

    // A read-only handle coexists with the live writer (it skips the
    // lock), serves reads, and refuses every write path.
    let ro = ImageStore::open_read_only(dir.path()).unwrap();
    let (back, _) = ro.read_image(id).unwrap();
    assert_eq!(back.regions[0].label, "admin-30");
    assert!(matches!(
        ro.write_image(&image(31, 4), &WriteOptions::full()),
        Err(StoreError::Busy { .. })
    ));
    assert!(matches!(ro.delete_image(id), Err(StoreError::Busy { .. })));
}

#[test]
fn foreign_live_writer_blocks_open() {
    if !std::path::Path::new("/proc/1").exists() {
        return; // liveness probing needs /proc
    }
    let dir = TempDir::new("lock-foreign");
    std::fs::create_dir_all(dir.path()).unwrap();
    // PID 1 is always alive and never us.
    std::fs::write(dir.path().join("store.lock"), "1").unwrap();
    match ImageStore::open(dir.path()) {
        Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, 1),
        Err(other) => panic!("expected Locked, got {other:?}"),
        Ok(_) => panic!("expected Locked, but the open succeeded"),
    }
    // Read-only access is still allowed.
    ImageStore::open_read_only(dir.path()).unwrap();

    // A dead holder's lock is stolen and the open succeeds.
    std::fs::write(dir.path().join("store.lock"), "4194304999").unwrap();
    let store = ImageStore::open(dir.path()).unwrap();
    store
        .write_image(&image(40, 4), &WriteOptions::full())
        .unwrap();
    let recorded = std::fs::read_to_string(dir.path().join("store.lock")).unwrap();
    assert_eq!(recorded.trim(), std::process::id().to_string());
}
