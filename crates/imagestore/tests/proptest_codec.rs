//! Property tests pinning the codec's size invariant: the encoder may
//! never store more bytes than raw.
//!
//! `rle_encode`'s worst case is pathological — alternating bytes cost two
//! output bytes per input byte, a 2× blow-up — so the write path *must*
//! fall back to `Raw` whenever RLE does not strictly shrink.  These
//! properties make the invariant `encoded.len() <= raw.len()` impossible
//! to regress silently, across compressible, incompressible and
//! adversarial inputs, and check the round trip while at it.

use crac_imagestore::codec::{decode, encode, Compression, Encoding};
use proptest::prelude::*;

/// Buffers biased toward the shapes that matter: long runs (RLE's best
/// case), alternating bytes (its provable worst case), random noise
/// (incompressible), and mixtures of all three.
fn buffer_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Pure run: `len` copies of one byte.
        (0usize..4096, any::<u8>()).prop_map(|(len, b)| vec![b; len]),
        // Alternating pair — the adversarial 2× blow-up input.
        (0usize..4096, any::<u8>(), any::<u8>())
            .prop_map(|(len, a, b)| (0..len).map(|i| if i % 2 == 0 { a } else { b }).collect()),
        // Random noise.
        proptest::collection::vec(any::<u8>(), 0..2048),
        // Runs of random lengths stitched together.
        proptest::collection::vec((1usize..300, any::<u8>()), 0..24).prop_map(|runs| {
            let mut out = Vec::new();
            for (len, b) in runs {
                out.extend(std::iter::repeat_n(b, len));
            }
            out
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The invariant the write path relies on: under every policy, the
    /// stored bytes never exceed the raw bytes — the encoder falls back
    /// to `Raw` whenever RLE fails to strictly shrink.
    #[test]
    fn encoded_never_exceeds_raw(raw in buffer_strategy()) {
        for policy in [Compression::None, Compression::Rle] {
            let (encoding, data) = encode(&raw, policy);
            prop_assert!(
                data.len() <= raw.len(),
                "{policy:?}/{encoding:?} stored {} bytes for {} raw",
                data.len(),
                raw.len()
            );
            // And when RLE *is* chosen it strictly shrank.
            if encoding == Encoding::Rle {
                prop_assert!(data.len() < raw.len());
            }
        }
    }

    /// Whatever the encoder chose decodes back byte-identically.
    #[test]
    fn encode_decode_round_trips(raw in buffer_strategy()) {
        let (encoding, data) = encode(&raw, Compression::Rle);
        let back = decode(encoding, &data, raw.len());
        prop_assert_eq!(back.as_deref(), Some(&raw[..]));
    }
}

/// The deterministic pin of the worst case itself: alternating bytes make
/// `rle_encode` produce exactly 2× raw, so `encode` must choose `Raw`.
#[test]
fn alternating_bytes_fall_back_to_raw() {
    let raw: Vec<u8> = (0..4096)
        .map(|i| if i % 2 == 0 { 0xAA } else { 0x55 })
        .collect();
    let (encoding, data) = encode(&raw, Compression::Rle);
    assert_eq!(
        encoding,
        Encoding::Raw,
        "worst case must not be stored as RLE"
    );
    assert_eq!(data, raw);
}

/// Boundary: the empty buffer encodes to the empty buffer, as `Raw`
/// (zero is not strictly smaller than zero).
#[test]
fn empty_buffer_is_raw() {
    let (encoding, data) = encode(&[], Compression::Rle);
    assert_eq!(encoding, Encoding::Raw);
    assert!(data.is_empty());
}
