//! Property tests for the TCP wire-frame codec: every frame round-trips
//! byte-identically, and no amount of truncation or bit-flipping can make
//! the reader panic, hang, or silently accept corrupt bytes — a
//! malicious or noisy peer yields errors, never undefined behaviour.

use std::io::Cursor;

use crac_imagestore::net::frame::{read_frame, ErrClass, Frame, FrameError, WireError};
use crac_imagestore::{ContentHash, ImageId};
use proptest::prelude::*;

/// The shim's `any` stops at `u64`; build 128-bit values from two halves.
fn any_u128() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

/// A frame of every kind, with payload shapes drawn at random.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    let small_bytes = proptest::collection::vec(any::<u8>(), 0..512);
    let hash = any_u128().prop_map(ContentHash);
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 16..17).prop_map(|v| {
            let mut nonce = [0u8; 16];
            nonce.copy_from_slice(&v);
            Frame::ServerHello { nonce }
        }),
        (proptest::collection::vec(any::<u8>(), 16..17), any_u128()).prop_map(|(v, mac)| {
            let mut nonce = [0u8; 16];
            nonce.copy_from_slice(&v);
            Frame::AuthProof { nonce, mac }
        }),
        any_u128().prop_map(|mac| Frame::AuthOk { mac }),
        proptest::collection::vec(any_u128(), 0..80)
            .prop_map(|hs| Frame::HasChunks(hs.into_iter().map(ContentHash).collect())),
        (any_u128(), proptest::collection::vec(any::<u8>(), 0..512)).prop_map(|(h, bytes)| {
            Frame::PutChunk {
                hash: ContentHash(h),
                bytes,
            }
        }),
        hash.prop_map(Frame::GetChunk),
        Just(Frame::ListManifests),
        Just(Frame::Stats),
        (1u64..1 << 48).prop_map(|id| Frame::GetManifest(ImageId(id))),
        (
            0u64..1 << 48,
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(p, bytes)| Frame::PutManifest {
                parent: if p == 0 { None } else { Some(ImageId(p)) },
                bytes,
            }),
        proptest::collection::vec(any::<bool>(), 0..100).prop_map(Frame::Flags),
        Just(Frame::Done),
        small_bytes.prop_map(Frame::Bytes),
        proptest::collection::vec(1u64..1 << 48, 0..40)
            .prop_map(|ids| Frame::Ids(ids.into_iter().map(ImageId).collect())),
        (1u64..1 << 48).prop_map(|id| Frame::Id(ImageId(id))),
        (
            0u8..7,
            any::<u64>(),
            proptest::collection::vec(32u8..127, 0..64)
        )
            .prop_map(|(class, code, detail)| {
                let class = match class {
                    0 => ErrClass::Transient,
                    1 => ErrClass::Corrupt,
                    2 => ErrClass::MissingChunk,
                    3 => ErrClass::UnknownImage,
                    4 => ErrClass::Busy,
                    5 => ErrClass::Protocol,
                    _ => ErrClass::Other,
                };
                Frame::Err(WireError {
                    class,
                    code,
                    detail: String::from_utf8(detail).unwrap(),
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → read yields the identical frame, for every kind.
    #[test]
    fn frames_round_trip(frame in frame_strategy()) {
        let wire = frame.to_wire();
        let back = read_frame(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Any single flipped bit anywhere in the wire bytes is rejected with
    /// an error — never a panic, never a silently different frame.  (The
    /// CRC trailer covers the body; flips in the length prefix are caught
    /// by the range check, the short read, or the CRC.)
    #[test]
    fn bit_flips_never_pass(frame in frame_strategy(), pos in any::<u64>(), bit in 0u8..8) {
        let mut wire = frame.to_wire();
        let idx = (pos % wire.len() as u64) as usize;
        wire[idx] ^= 1 << bit;
        let result = read_frame(&mut Cursor::new(&wire));
        prop_assert!(
            result.is_err(),
            "flip of bit {bit} at byte {idx}/{} went undetected",
            wire.len()
        );
    }

    /// Truncation at any point yields an error, never a hang or a panic.
    #[test]
    fn truncations_never_pass(frame in frame_strategy(), cut in any::<u64>()) {
        let wire = frame.to_wire();
        let cut = (cut % wire.len() as u64) as usize;
        let result = read_frame(&mut Cursor::new(&wire[..cut]));
        prop_assert!(result.is_err(), "truncation to {cut}/{} bytes parsed", wire.len());
    }

    /// Garbage prefixed with a plausible length never parses: random
    /// bytes behind a valid-range length prefix must fail the CRC (or the
    /// parser), and oversized lengths are refused before allocation.
    #[test]
    fn random_bytes_never_parse(len_field in any::<u32>(), noise in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut wire = Vec::with_capacity(4 + noise.len());
        wire.extend_from_slice(&len_field.to_le_bytes());
        wire.extend_from_slice(&noise);
        // Either an error or — vanishingly unlikely with a matching CRC —
        // a parse; what is *forbidden* is a panic or unbounded allocation,
        // which the MAX_FRAME_LEN check enforces before the buffer exists.
        let _ = read_frame(&mut Cursor::new(&wire));
    }
}

/// Deterministic malformed-by-construction cases the random flips cannot
/// reliably produce (they must defeat the CRC to reach the parser).
#[test]
fn crc_valid_but_inconsistent_bodies_are_rejected() {
    use crac_imagestore::hash::crc32;
    let craft = |body: &[u8]| {
        let mut wire = Vec::new();
        wire.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
        wire.extend_from_slice(body);
        wire.extend_from_slice(&crc32(body).to_le_bytes());
        wire
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("unknown kind", vec![1, 0x7E]),
        ("unsupported version", vec![9, 0x21]),
        // has_chunks declaring more hashes than the body holds.
        ("lying hash count", {
            let mut b = vec![1, 0x10];
            b.extend_from_slice(&3u32.to_le_bytes());
            b.extend_from_slice(&[0u8; 16]); // one hash, three declared
            b
        }),
        // flags carrying a byte that is neither 0 nor 1.
        ("non-boolean flag", {
            let mut b = vec![1, 0x20];
            b.extend_from_slice(&1u32.to_le_bytes());
            b.push(7);
            b
        }),
        // trailing junk after a complete payload.
        ("trailing bytes", {
            let mut b = vec![1, 0x24];
            b.extend_from_slice(&5u64.to_le_bytes());
            b.push(0xFF);
            b
        }),
        // error frame whose detail is not UTF-8.
        ("non-utf8 error detail", {
            let mut b = vec![1, 0x2F, 0];
            b.extend_from_slice(&0u64.to_le_bytes());
            b.extend_from_slice(&2u32.to_le_bytes());
            b.extend_from_slice(&[0xFF, 0xFE]);
            b
        }),
    ];
    for (what, body) in cases {
        let err = read_frame(&mut Cursor::new(craft(&body))).unwrap_err();
        assert!(
            matches!(err, FrameError::Malformed(_)),
            "{what}: expected Malformed, got {err:?}"
        );
    }
}
