//! Property-based tests of the image store, modeled on
//! `crates/addrspace/tests/proptest_space.rs`.
//!
//! The two properties a checkpoint store must never violate:
//!
//! 1. **Lossless roundtrip** — for any checkpoint image, write → read
//!    reconstructs the image byte for byte.
//! 2. **Fail-stop on corruption** — flip any single byte of any file in the
//!    store and reading the image reports an error instead of returning
//!    wrong memory contents.

use std::collections::BTreeSet;

use crac_addrspace::{Addr, Prot, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{Compression, ImageStore, WriteOptions};
use proptest::prelude::*;

/// A random saved region: up to 48 pages scattered over a 64-page span,
/// with per-page fill patterns (some compressible, some not).
fn region_strategy() -> impl Strategy<Value = SavedRegion> {
    (
        0u64..512,                                                 // slot → start address
        proptest::collection::vec((0u64..64, any::<u8>()), 0..48), // (page idx, seed byte)
        any::<bool>(),                                             // executable?
        0usize..4,                                                 // label choice
    )
        .prop_map(|(slot, raw_pages, exec, label_idx)| {
            let mut indices = BTreeSet::new();
            let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
            for (idx, seed) in raw_pages {
                if !indices.insert(idx) {
                    continue; // keep page indices unique and sorted
                }
                let mut page = vec![seed; PAGE_SIZE as usize];
                if seed % 3 == 0 {
                    // Make every third page incompressible.
                    for (j, b) in page.iter_mut().enumerate() {
                        *b = (j as u8).wrapping_mul(97).wrapping_add(seed);
                    }
                }
                pages.push((idx, page));
            }
            pages.sort_by_key(|(idx, _)| *idx);
            let labels = ["[heap]", "app.data", "lib.so", "[stack]"];
            SavedRegion {
                start: Addr(0x4000_0000_0000 + slot * 64 * PAGE_SIZE),
                len: 64 * PAGE_SIZE,
                prot: if exec { Prot::RX } else { Prot::RW },
                label: labels[label_idx].to_string(),
                pages,
            }
        })
}

/// A random checkpoint image: a few regions plus a couple of payloads.
fn image_strategy() -> impl Strategy<Value = CheckpointImage> {
    (
        proptest::collection::vec(region_strategy(), 1..5),
        proptest::collection::vec(
            (0usize..3, proptest::collection::vec(any::<u8>(), 0..200)),
            0..3,
        ),
        0u64..1_000_000_000,
    )
        .prop_map(|(regions, raw_payloads, taken_at_ns)| {
            let mut image = CheckpointImage {
                regions,
                taken_at_ns,
                ..Default::default()
            };
            let names = ["crac", "uvm", "counters"];
            for (name_idx, data) in raw_payloads {
                image.payloads.insert(names[name_idx].to_string(), data);
            }
            image
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write → read reconstructs the image exactly, under both compression
    /// policies and regardless of thread count.
    #[test]
    fn roundtrip_is_lossless(
        img in image_strategy(),
        compress in any::<bool>(),
        threads in 0usize..5,
    ) {
        let dir = TempDir::new("prop-roundtrip");
        let store = ImageStore::open(dir.path()).unwrap();
        let opts = WriteOptions {
            compression: if compress { Compression::Rle } else { Compression::None },
            parent: None,
            threads,
        };
        let (id, stats) = store.write_image(&img, &opts).unwrap();
        prop_assert!(stats.chunks_written + stats.chunks_deduped == stats.chunks_total);
        let (back, _) = store.read_image(id).unwrap();
        prop_assert_eq!(back, img);
    }

    /// Any single corrupted byte in any store file is detected at read time.
    #[test]
    fn single_byte_corruption_is_detected(
        img in image_strategy(),
        file_pick in any::<u64>(),
        offset_pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let dir = TempDir::new("prop-corrupt");
        let store = ImageStore::open(dir.path()).unwrap();
        let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();

        // Collect every file of the store (manifest + all chunks).
        let mut files: Vec<std::path::PathBuf> = Vec::new();
        for sub in ["images", "chunks"] {
            for entry in std::fs::read_dir(dir.path().join(sub)).unwrap() {
                files.push(entry.unwrap().path());
            }
        }
        files.sort();
        let target = &files[(file_pick % files.len() as u64) as usize];
        let mut bytes = std::fs::read(target).unwrap();
        let offset = (offset_pick % bytes.len() as u64) as usize;
        bytes[offset] ^= xor;
        std::fs::write(target, &bytes).unwrap();

        // The store must refuse, not silently restore wrong memory.
        let result = ImageStore::open(dir.path()).unwrap().read_image(id);
        prop_assert!(
            result.is_err(),
            "flip of byte {} in {} went undetected", offset, target.display()
        );
    }

    /// Rewriting the same image dedups every chunk: the second write stores
    /// only a manifest.
    #[test]
    fn identical_rewrite_stores_only_the_manifest(img in image_strategy()) {
        let dir = TempDir::new("prop-dedup");
        let store = ImageStore::open(dir.path()).unwrap();
        let (a, first) = store.write_image(&img, &WriteOptions::full()).unwrap();
        let (b, second) = store.write_image(&img, &WriteOptions::incremental(a)).unwrap();
        prop_assert!(b > a);
        prop_assert_eq!(second.chunks_written, 0);
        prop_assert_eq!(second.chunk_bytes_written, 0);
        prop_assert_eq!(second.chunks_deduped, first.chunks_total);
        let (back, _) = store.read_image(b).unwrap();
        prop_assert_eq!(back, img);
    }
}

/// The acceptance-criterion scenario, deterministic: a 4-region image with
/// 256 dirty pages per region; an incremental checkpoint after re-dirtying
/// <10 % of the pages must store <50 % of the bytes of the full image.
#[test]
fn incremental_checkpoint_stores_under_half_of_full() {
    let mut img = CheckpointImage {
        taken_at_ns: 1,
        ..Default::default()
    };
    for r in 0..4u64 {
        let pages: Vec<(u64, Vec<u8>)> = (0..256)
            .map(|i| {
                let mut page = vec![0u8; PAGE_SIZE as usize];
                for (j, b) in page.iter_mut().enumerate() {
                    // Incompressible content so compression cannot mask the
                    // dedup effect being asserted.
                    *b = (j as u8).wrapping_mul(13).wrapping_add((r * 256 + i) as u8);
                }
                // Stamp a globally unique prefix so no two pages of the
                // image are identical (intra-image dedup would otherwise
                // kick in and skew the full-write baseline).
                page[..8].copy_from_slice(&(r * 256 + i + 1).to_le_bytes());
                (i, page)
            })
            .collect();
        img.regions.push(SavedRegion {
            start: Addr(0x4000_0000_0000 + r * (1 << 24)),
            len: 256 * PAGE_SIZE,
            prot: Prot::RW,
            label: format!("region-{r}"),
            pages,
        });
    }

    let dir = TempDir::new("incr-half");
    let store = ImageStore::open(dir.path()).unwrap();
    let (parent, full) = store.write_image(&img, &WriteOptions::full()).unwrap();
    assert_eq!(full.chunks_deduped, 0, "fresh store has nothing to dedup");

    // Dirty 24 of 1024 pages (2.3 %, comfortably <10 %).
    let mut incr_img = img.clone();
    incr_img.taken_at_ns = 2;
    for region in &mut incr_img.regions {
        for (idx, page) in region.pages.iter_mut() {
            if *idx % 43 == 0 {
                page.fill(0xC7);
            }
        }
    }
    let (id, incr) = store
        .write_image(&incr_img, &WriteOptions::incremental(parent))
        .unwrap();

    assert!(
        incr.bytes_written() * 2 < full.bytes_written(),
        "incremental wrote {} of full {} — dedup is not working",
        incr.bytes_written(),
        full.bytes_written()
    );
    assert!(incr.chunks_deduped > 0);
    // And the incremental image still reads back complete and verified.
    let (back, _) = store.read_image(id).unwrap();
    assert_eq!(back, incr_img);
    // Lineage is recorded.
    assert_eq!(store.image_info(id).unwrap().parent, Some(parent));
}

/// Persistence: a store reopened from disk still serves images and dedups
/// against chunks written by the previous instance.
#[test]
fn store_survives_reopen() {
    let dir = TempDir::new("reopen");
    let img = {
        let mut img = CheckpointImage {
            taken_at_ns: 7,
            ..Default::default()
        };
        img.regions.push(SavedRegion {
            start: Addr(0x4000_0000_0000),
            len: 32 * PAGE_SIZE,
            prot: Prot::RW,
            label: "persist".into(),
            pages: (0..32)
                .map(|i| (i, vec![i as u8; PAGE_SIZE as usize]))
                .collect(),
        });
        img.payloads.insert("crac".into(), vec![9; 128]);
        img
    };

    let id = {
        let store = ImageStore::open(dir.path()).unwrap();
        let (id, _) = store.write_image(&img, &WriteOptions::full()).unwrap();
        id
    };

    // A brand-new store instance over the same directory.
    let store = ImageStore::open(dir.path()).unwrap();
    let (back, _) = store.read_image(id).unwrap();
    assert_eq!(back, img);

    // Dedup works against the reloaded chunk index, and ids keep advancing.
    let (id2, stats) = store.write_image(&img, &WriteOptions::full()).unwrap();
    assert!(id2 > id);
    assert_eq!(
        stats.chunks_written, 0,
        "reopened index must know old chunks"
    );

    let images = store.list_images().unwrap();
    assert_eq!(images.len(), 2);
    assert_eq!(images[0].id, id);
    let sstats = store.stats().unwrap();
    assert_eq!(sstats.images, 2);
    assert!(sstats.chunks > 0);
}
