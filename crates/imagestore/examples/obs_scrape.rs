//! Prints a real flow's Prometheus-style scrape to stdout: checkpoint a
//! synthetic address space into a temporary store, replicate it to a
//! loopback peer, restore it, then `render_text()` the coordinator's
//! registry.  CI greps this output for the headline metric families; it
//! doubles as a copy-paste demo of the observability layer.

use crac_addrspace::{Half, MapRequest, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{Coordinator, CoordinatorConfig};
use crac_imagestore::testutil::TempDir;
use crac_imagestore::{CoordinatorStoreExt, ImageStore, LoopbackTransport, WriteOptions};

fn main() {
    let space = SharedSpace::new_no_aslr();
    let addr = space
        .mmap(MapRequest::anon(48 * PAGE_SIZE, Half::Upper, "scrape-demo"))
        .unwrap();
    for p in 0..48u64 {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[..8].copy_from_slice(&p.to_le_bytes());
        page[8] = 0x5C;
        space.write_bytes(addr + p * PAGE_SIZE, &page).unwrap();
    }

    let coord = Coordinator::new(space, CoordinatorConfig::default());
    let dir = TempDir::new("obs-scrape");
    let store = ImageStore::open(dir.path()).unwrap();
    let (id, _, _) = coord
        .checkpoint_to_store(&store, 0, &WriteOptions::full())
        .unwrap();

    let peer_dir = TempDir::new("obs-scrape-peer");
    let peer = ImageStore::open(peer_dir.path()).unwrap();
    store
        .replicate_to(id, &LoopbackTransport::new(&peer))
        .unwrap();

    let fresh = SharedSpace::new_no_aslr();
    coord.restart_from_store(&store, id, &fresh).unwrap();

    print!("{}", coord.obs().render_text());
    eprintln!("--- events ---");
    for event in coord.obs().drain_events() {
        eprintln!(
            "[{:>10}µs] {:<20} {}",
            event.at.as_micros(),
            event.kind.name(),
            event.detail
        );
    }
}
