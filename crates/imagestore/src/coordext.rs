//! Store-aware checkpoint/restart paths for the DMTCP coordinator.
//!
//! `crac-dmtcp` cannot depend on this crate (the dependency points the
//! other way), so the coordinator gains its `checkpoint_to_store` /
//! `restart_from_store` entry points through an extension trait defined
//! here and implemented for [`Coordinator`].

use crac_addrspace::SharedSpace;
use crac_dmtcp::{CkptStats, Coordinator, RestartStats};

use crate::error::StoreError;
use crate::reader::ReadStats;
use crate::store::{ImageId, ImageStore};
use crate::writer::{WriteOptions, WriteStats};

/// Checkpoint/restart straight through an [`ImageStore`].
pub trait CoordinatorStoreExt {
    /// Takes a checkpoint at virtual time `now_ns` and persists it into
    /// `store`, returning the stored image's id plus both the coordinator's
    /// checkpoint stats and the store's write stats.
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError>;

    /// Reads image `id` from `store` (verifying integrity) and restores it
    /// into `space`.
    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError>;
}

impl CoordinatorStoreExt for Coordinator {
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError> {
        let (image, ckpt_stats) = self.checkpoint(now_ns);
        let (id, write_stats) = store.write_image(&image, opts)?;
        Ok((id, ckpt_stats, write_stats))
    }

    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError> {
        let (image, read_stats) = store.read_image(id)?;
        let restart_stats = self.restart_into(&image, space);
        Ok((restart_stats, read_stats))
    }
}
