//! Store-aware checkpoint/restart paths for the DMTCP coordinator.
//!
//! `crac-dmtcp` cannot depend on this crate (the dependency points the
//! other way), so the coordinator gains its `checkpoint_to_store` /
//! `restart_from_store` entry points through an extension trait defined
//! here and implemented for [`Coordinator`].
//!
//! `checkpoint_to_store` is the flagship streaming path: the coordinator's
//! region walk feeds the store's writer pipeline **directly** through a
//! [`SinkBridge`] — no `CheckpointImage` is ever materialised, so the
//! checkpoint's peak memory is the pipeline's bounded buffering
//! ([`crate::writer::stream_buffer_bound`]) instead of the image size.

use crac_addrspace::SharedSpace;
use crac_dmtcp::{CkptStats, Coordinator, RestartStats};

use crate::error::StoreError;
use crate::reader::ReadStats;
use crate::store::{ImageId, ImageStore};
use crate::stream::SinkBridge;
use crate::writer::{StreamWriter, WriteOptions, WriteStats};

/// Drives the coordinator's streaming checkpoint walk into `writer`,
/// translating the opaque `SinkClosed` stop marker back into the store
/// error the bridge parked.
///
/// Deliberately does **not** stamp the manifest's `taken_at` — the caller
/// owns completion-time semantics (`crac-core` advances its virtual clock
/// by the modelled write time first); call
/// [`StreamWriter::set_taken_at`] after this returns.
pub fn drive_checkpoint_streaming(
    coordinator: &Coordinator,
    writer: &mut StreamWriter<'_>,
) -> Result<CkptStats, StoreError> {
    let mut bridge = SinkBridge::new(&mut *writer);
    match coordinator.checkpoint_streaming(&mut bridge) {
        Ok(stats) => Ok(stats),
        Err(_closed) => Err(bridge
            .into_error()
            .unwrap_or_else(|| StoreError::busy("checkpoint sink closed without an error"))),
    }
}

/// Checkpoint/restart straight through an [`ImageStore`].
pub trait CoordinatorStoreExt {
    /// Takes a checkpoint at virtual time `now_ns` and streams it into
    /// `store` without materialising an in-memory image, returning the
    /// stored image's id plus both the coordinator's checkpoint stats and
    /// the store's write stats.
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError>;

    /// Reads image `id` from `store` (verifying integrity) and restores it
    /// into `space`.
    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError>;
}

impl CoordinatorStoreExt for Coordinator {
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError> {
        let (id, ckpt_stats, write_stats) = store.stream_image(opts, |writer| {
            let stats = drive_checkpoint_streaming(self, writer)?;
            writer.set_taken_at(now_ns);
            Ok(stats)
        })?;
        Ok((id, ckpt_stats, write_stats))
    }

    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError> {
        let (image, read_stats) = store.read_image(id)?;
        let restart_stats = self.restart_into(&image, space);
        Ok((restart_stats, read_stats))
    }
}
