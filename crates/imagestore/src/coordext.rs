//! Store-aware checkpoint/restart paths for the DMTCP coordinator.
//!
//! `crac-dmtcp` cannot depend on this crate (the dependency points the
//! other way), so the coordinator gains its `checkpoint_to_store` /
//! `restart_from_store` entry points through an extension trait defined
//! here and implemented for [`Coordinator`].
//!
//! `checkpoint_to_store` is the flagship streaming path: the coordinator's
//! region walk feeds the store's writer pipeline **directly** through a
//! [`SinkBridge`] — no `CheckpointImage` is ever materialised, so the
//! checkpoint's peak memory is the pipeline's bounded buffering
//! ([`crate::writer::stream_buffer_bound`]) instead of the image size.
//!
//! `restart_from_store` is its mirror: the store's reader pipeline feeds
//! the coordinator's restore cursor **directly** through a
//! [`RestoreBridge`] — verified chunks land in the fresh address space as
//! they arrive, bounded by [`crate::reader::restore_buffer_bound`].

use crac_addrspace::SharedSpace;
use crac_dmtcp::{CkptStats, Coordinator, PrecopyConfig, PrecopyStats, RestartStats, SinkClosed};

use crate::codec::Compression;
use crate::error::StoreError;
use crate::lazy::LazyRestoreSession;
use crate::reader::ReadStats;
use crate::remote::{RemoteChunkSink, RemoteChunkSource, ReplicateStats};
use crate::store::{ImageId, ImageStore};
use crate::stream::{ChunkSink, ChunkSource, RestoreBridge, SinkBridge};
use crate::transport::Transport;
use crate::writer::{WriteOptions, WriteStats};

/// Drives the coordinator's streaming checkpoint walk into any
/// [`ChunkSink`] — the store's [`crate::writer::StreamWriter`] or a
/// [`RemoteChunkSink`] shipping straight to a peer — translating the
/// opaque `SinkClosed` stop marker back into the store error the bridge
/// parked.
///
/// Deliberately does **not** stamp the manifest's `taken_at` — the caller
/// owns completion-time semantics (`crac-core` advances its virtual clock
/// by the modelled write time first); call the sink's `set_taken_at`
/// after this returns.
pub fn drive_checkpoint_streaming<S: ChunkSink + ?Sized>(
    coordinator: &Coordinator,
    sink: &mut S,
) -> Result<CkptStats, StoreError> {
    let mut bridge = SinkBridge::new(sink);
    match coordinator.checkpoint_streaming(&mut bridge) {
        Ok(stats) => Ok(stats),
        Err(_closed) => Err(bridge
            .into_error()
            .unwrap_or_else(|| StoreError::busy("checkpoint sink closed without an error"))),
    }
}

/// Pre-copy variant of [`drive_checkpoint_streaming`]: bulk content and
/// iterative delta rounds stream into the sink while the application keeps
/// running; only the final residual delta is captured with the process
/// stopped, so the stop window scales with the dirty delta instead of the
/// image.  The sink must honour the re-open / last-write-wins contract of
/// [`crac_dmtcp::CheckpointSink`] — both store sinks
/// ([`crate::writer::StreamWriter`], [`RemoteChunkSink`]) do.
pub fn drive_checkpoint_precopy<S: ChunkSink + ?Sized>(
    coordinator: &Coordinator,
    sink: &mut S,
    cfg: PrecopyConfig,
) -> Result<PrecopyStats, StoreError> {
    let mut bridge = SinkBridge::new(sink);
    match coordinator.checkpoint_precopy(&mut bridge, &cfg) {
        Ok(stats) => Ok(stats),
        Err(_closed) => Err(bridge
            .into_error()
            .unwrap_or_else(|| StoreError::busy("checkpoint sink closed without an error"))),
    }
}

/// Drives a streaming restore from any [`ChunkSource`] — the store's
/// [`crate::reader::StreamReader`] or a [`RemoteChunkSource`] fetching
/// over a transport:
/// the source's fetched-and-verified chunks are spliced into `space`
/// through the coordinator's restore cursor as they arrive — no
/// `CheckpointImage` is ever materialised.
///
/// On success the coordinator applies recorded protections and fires the
/// plugins' `restart` hooks (with the payloads the manifest carried
/// inline); the read's cost is available from the source's `stats()`
/// afterwards.  On failure the real [`StoreError`] is returned and the
/// half-restored `space` must be discarded.
pub fn drive_restore_streaming<R: ChunkSource + ?Sized>(
    coordinator: &Coordinator,
    source: &mut R,
    space: &SharedSpace,
) -> Result<RestartStats, StoreError> {
    let mut parked: Option<StoreError> = None;
    let result = coordinator.restart_streaming(space, |cursor| {
        let mut bridge = RestoreBridge::new(cursor);
        source.stream_out(&mut bridge).map_err(|e| {
            parked = Some(e);
            SinkClosed
        })
    });
    match result {
        Ok(stats) => Ok(stats),
        Err(SinkClosed) => {
            Err(parked
                .unwrap_or_else(|| StoreError::busy("restore source closed without an error")))
        }
    }
}

/// Checkpoint/restart straight through an [`ImageStore`].
pub trait CoordinatorStoreExt {
    /// Takes a checkpoint at virtual time `now_ns` and streams it into
    /// `store` without materialising an in-memory image, returning the
    /// stored image's id plus both the coordinator's checkpoint stats and
    /// the store's write stats.
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError>;

    /// Pre-copy variant of
    /// [`CoordinatorStoreExt::checkpoint_to_store`]: streams bulk content
    /// and delta rounds concurrently with execution, stopping the process
    /// only for the final residual delta.  Returns the richer
    /// [`PrecopyStats`] (rounds, per-round bytes, stop window).
    fn checkpoint_to_store_precopy(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
        cfg: PrecopyConfig,
    ) -> Result<(ImageId, PrecopyStats, WriteStats), StoreError>;

    /// Streams image `id` out of `store` (verifying integrity) straight
    /// into `space` — verified chunks are spliced as they arrive, never
    /// materialising a `CheckpointImage`.
    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError>;

    /// Takes a checkpoint at virtual time `now_ns` and streams it straight
    /// to the peer behind `transport` — no local store involved: chunks
    /// are negotiated (batched `has_chunks`) and only missing content
    /// ships.  Returns the peer-assigned image id, the coordinator's
    /// checkpoint stats and the shipping stats.
    fn checkpoint_to_remote(
        &self,
        transport: &dyn Transport,
        now_ns: u64,
        compression: Compression,
        parent: Option<ImageId>,
    ) -> Result<(ImageId, CkptStats, ReplicateStats), StoreError>;

    /// Pre-copy variant of
    /// [`CoordinatorStoreExt::checkpoint_to_remote`]: delta rounds ship to
    /// the peer while the application keeps running; the final stop
    /// window covers only the residual dirty delta.
    fn checkpoint_to_remote_precopy(
        &self,
        transport: &dyn Transport,
        now_ns: u64,
        compression: Compression,
        parent: Option<ImageId>,
        cfg: PrecopyConfig,
    ) -> Result<(ImageId, PrecopyStats, ReplicateStats), StoreError>;

    /// Streams remote image `id` from the peer behind `transport` straight
    /// into `space`: parallel verified fetches with bounded transient
    /// retry, spliced as they arrive — the cross-node restart path.
    fn restart_from_remote(
        &self,
        transport: &dyn Transport,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError>;

    /// Opens a lazy (demand-paging) restore session over local image `id`,
    /// recording into this coordinator's registry.  Nothing but the
    /// manifest is read; the caller `attach`es the session (process is
    /// resumable immediately), spawns its workers, and pages fault in on
    /// first touch while a background sweep prefetches the rest — see
    /// [`LazyRestoreSession`].
    fn open_lazy_restore<'s>(
        &self,
        store: &'s ImageStore,
        id: ImageId,
    ) -> Result<LazyRestoreSession<'s>, StoreError>;

    /// Remote twin of [`CoordinatorStoreExt::open_lazy_restore`]: the same
    /// session fed over `transport`, first-touch faults riding the
    /// priority lane of `get_chunk` — the cross-node lazy restart path.
    fn open_lazy_restore_remote<'t>(
        &self,
        transport: &'t dyn Transport,
        id: ImageId,
    ) -> Result<LazyRestoreSession<'t>, StoreError>;
}

impl CoordinatorStoreExt for Coordinator {
    fn checkpoint_to_store(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
    ) -> Result<(ImageId, CkptStats, WriteStats), StoreError> {
        // The coordinator's registry becomes the store's: every layer of
        // this flow (and later store operations) records into it.
        store.adopt_obs(self.obs());
        let (id, ckpt_stats, write_stats) = store.stream_image(opts, |writer| {
            let stats = drive_checkpoint_streaming(self, writer)?;
            writer.set_taken_at(now_ns);
            Ok(stats)
        })?;
        Ok((id, ckpt_stats, write_stats))
    }

    fn checkpoint_to_store_precopy(
        &self,
        store: &ImageStore,
        now_ns: u64,
        opts: &WriteOptions,
        cfg: PrecopyConfig,
    ) -> Result<(ImageId, PrecopyStats, WriteStats), StoreError> {
        store.adopt_obs(self.obs());
        let (id, precopy_stats, write_stats) = store.stream_image(opts, |writer| {
            let stats = drive_checkpoint_precopy(self, writer, cfg)?;
            writer.set_taken_at(now_ns);
            Ok(stats)
        })?;
        Ok((id, precopy_stats, write_stats))
    }

    fn restart_from_store(
        &self,
        store: &ImageStore,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError> {
        store.adopt_obs(self.obs());
        let mut reader = store.stream_restore(id)?;
        let restart_stats = drive_restore_streaming(self, &mut reader, space)?;
        Ok((restart_stats, reader.stats()))
    }

    fn checkpoint_to_remote(
        &self,
        transport: &dyn Transport,
        now_ns: u64,
        compression: Compression,
        parent: Option<ImageId>,
    ) -> Result<(ImageId, CkptStats, ReplicateStats), StoreError> {
        let mut sink = RemoteChunkSink::with_obs(transport, compression, parent, self.obs());
        let ckpt_stats = drive_checkpoint_streaming(self, &mut sink)?;
        sink.set_taken_at(now_ns);
        let (id, replicate_stats) = sink.finish()?;
        Ok((id, ckpt_stats, replicate_stats))
    }

    fn checkpoint_to_remote_precopy(
        &self,
        transport: &dyn Transport,
        now_ns: u64,
        compression: Compression,
        parent: Option<ImageId>,
        cfg: PrecopyConfig,
    ) -> Result<(ImageId, PrecopyStats, ReplicateStats), StoreError> {
        let mut sink = RemoteChunkSink::with_obs(transport, compression, parent, self.obs());
        let precopy_stats = drive_checkpoint_precopy(self, &mut sink, cfg)?;
        sink.set_taken_at(now_ns);
        let (id, replicate_stats) = sink.finish()?;
        Ok((id, precopy_stats, replicate_stats))
    }

    fn restart_from_remote(
        &self,
        transport: &dyn Transport,
        id: ImageId,
        space: &SharedSpace,
    ) -> Result<(RestartStats, ReadStats), StoreError> {
        let mut source = RemoteChunkSource::open_with_obs(transport, id, self.obs())?;
        let restart_stats = drive_restore_streaming(self, &mut source, space)?;
        Ok((restart_stats, source.stats()))
    }

    fn open_lazy_restore<'s>(
        &self,
        store: &'s ImageStore,
        id: ImageId,
    ) -> Result<LazyRestoreSession<'s>, StoreError> {
        store.adopt_obs(self.obs());
        LazyRestoreSession::open_local(store, id, self.obs())
    }

    fn open_lazy_restore_remote<'t>(
        &self,
        transport: &'t dyn Transport,
        id: ImageId,
    ) -> Result<LazyRestoreSession<'t>, StoreError> {
        LazyRestoreSession::open_remote(transport, id, self.obs())
    }
}
