//! The wire format: length-prefixed, versioned, CRC-trailed frames.
//!
//! Every message between a [`crate::net::client::TcpTransport`] and a
//! [`crate::net::server`] is one frame:
//!
//! ```text
//! frame := len u32            length of body + crc (bounded by MAX_FRAME_LEN)
//!        | body               version u8 | kind u8 | payload
//!        | crc32 u32          over the body bytes
//! ```
//!
//! All integers are little-endian, matching the on-disk formats
//! ([`crate::format`]).  The length prefix lets a reader take exactly one
//! message off the stream without peeking; the explicit
//! [`MAX_FRAME_LEN`] cap means a malicious or corrupt peer cannot make
//! the receiver allocate an arbitrary buffer (the length is validated
//! *before* any allocation, and per-element counts inside a payload are
//! validated against the bytes actually present before any `Vec` is
//! sized).  The CRC trailer rejects line noise before parsing begins, so
//! the parser only ever sees either an intact body or a short read — a
//! malformed frame yields an error, never a panic or a hang.
//!
//! The payload encodes the six [`crate::transport::Transport`] methods
//! (requests and responses), the three-step auth handshake
//! ([`crate::net::auth`]), and a classified error ([`WireError`]) whose
//! `is_transient()` / `is_corruption()` character survives the
//! serialisation round trip — the client's retry/fail-fast split works
//! identically against a remote peer and a local store.

use std::io::{Read, Write};

use crac_dmtcp::ByteCursor;

use crate::error::StoreError;
use crate::hash::{crc32, ContentHash};
use crate::store::ImageId;

/// Version byte carried by every frame; a peer speaking another version
/// is refused before anything else is parsed.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's `body + crc` length.  Chunk payloads are at
/// most [`crate::chunk::CHUNK_PAGES`] pages plus a fixed header, but
/// manifests of very large images are the real sizing constraint: their
/// chunk tables cost ~40 bytes per ≤64 KiB chunk, so 256 MiB covers
/// images into the hundreds-of-terabytes range while still keeping the
/// worst-case allocation a hostile peer can force bounded.  The sender
/// enforces the same cap ([`write_frame`] refuses oversized frames with
/// `ErrorKind::InvalidInput` — a permanent error, not a retry), so a
/// too-large manifest fails loudly on the way out instead of poisoning
/// the connection.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Bytes in a handshake nonce.
pub const NONCE_LEN: usize = 16;

/// Smallest legal `len` value: version + kind + crc.
const MIN_FRAME_LEN: usize = 2 + 4;

// Frame kind tags.  Handshake, requests and responses live in disjoint
// ranges so a message arriving in the wrong phase is obvious.
const K_SERVER_HELLO: u8 = 0x01;
const K_AUTH_PROOF: u8 = 0x02;
const K_AUTH_OK: u8 = 0x03;
const K_HAS_CHUNKS: u8 = 0x10;
const K_PUT_CHUNK: u8 = 0x11;
const K_GET_CHUNK: u8 = 0x12;
const K_LIST_MANIFESTS: u8 = 0x13;
const K_GET_MANIFEST: u8 = 0x14;
const K_PUT_MANIFEST: u8 = 0x15;
const K_STATS: u8 = 0x16;
const K_FLAGS: u8 = 0x20;
const K_DONE: u8 = 0x21;
const K_BYTES: u8 = 0x22;
const K_IDS: u8 = 0x23;
const K_ID: u8 = 0x24;
const K_ERR: u8 = 0x2F;

/// One message on the wire — handshake, request or response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Server → client, immediately after accept: the server's challenge
    /// nonce.  No request is served before the handshake completes.
    ServerHello {
        /// Challenge the client must MAC together with its own nonce.
        nonce: [u8; NONCE_LEN],
    },
    /// Client → server: the client's nonce plus its proof of the shared
    /// secret ([`crate::net::auth::client_proof`]).
    AuthProof {
        /// The client's nonce (feeds the server's counter-proof).
        nonce: [u8; NONCE_LEN],
        /// HMAC-style proof over both nonces.
        mac: u128,
    },
    /// Server → client: the server's counter-proof — the handshake is
    /// mutual, a client never streams a checkpoint to an impostor.
    AuthOk {
        /// HMAC-style proof over both nonces, server-keyed.
        mac: u128,
    },

    /// `Transport::has_chunks` request.
    HasChunks(Vec<ContentHash>),
    /// `Transport::put_chunk` request (verbatim chunk-file bytes).
    PutChunk {
        /// Content hash the receiver verifies the bytes against.
        hash: ContentHash,
        /// The chunk-file bytes.
        bytes: Vec<u8>,
    },
    /// `Transport::get_chunk` request.
    GetChunk(ContentHash),
    /// `Transport::list_manifests` request.
    ListManifests,
    /// `Transport::get_manifest` request.
    GetManifest(ImageId),
    /// `Transport::put_manifest` request.
    PutManifest {
        /// Peer-side parent lineage (`None` starts a fresh chain).
        parent: Option<ImageId>,
        /// Verbatim manifest file bytes.
        bytes: Vec<u8>,
    },
    /// Observability scrape request: the server answers with
    /// [`Frame::Bytes`] carrying its registry's Prometheus-style text
    /// exposition (`ObsRegistry::render_text`).  No payload.
    Stats,

    /// Response to [`Frame::HasChunks`]: one flag per queried hash.
    Flags(Vec<bool>),
    /// Success response carrying no payload ([`Frame::PutChunk`]).
    Done,
    /// Response carrying raw file bytes ([`Frame::GetChunk`] /
    /// [`Frame::GetManifest`]).
    Bytes(Vec<u8>),
    /// Response to [`Frame::ListManifests`].
    Ids(Vec<ImageId>),
    /// Response to [`Frame::PutManifest`]: the peer-assigned id.
    Id(ImageId),
    /// Classified failure response — any request can answer with this.
    Err(WireError),
}

/// Error classes that survive serialisation with their retry character
/// intact (see [`WireError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrClass {
    /// Safe to retry ([`StoreError::is_transient`] is true after decode).
    Transient = 0,
    /// Integrity failure ([`StoreError::is_corruption`] true): fail fast.
    Corrupt = 1,
    /// The peer does not hold the requested chunk (permanent; a
    /// `get_chunk` racing chunk GC lands here, exactly as it does against
    /// [`crate::transport::LoopbackTransport`]).
    MissingChunk = 2,
    /// The peer does not hold the requested image (permanent).
    UnknownImage = 3,
    /// The peer's store refused the operation (read-only, locked, mid
    /// deletion) — permanent for this request, not corruption.
    Busy = 4,
    /// One side broke the protocol (bad handshake, unauthenticated
    /// request, nonsense message) — permanent.
    Protocol = 5,
    /// Any other permanent server-side failure (an I/O error on the
    /// peer's disk, say) — not retryable, not corruption.
    Other = 6,
}

impl ErrClass {
    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ErrClass::Transient,
            1 => ErrClass::Corrupt,
            2 => ErrClass::MissingChunk,
            3 => ErrClass::UnknownImage,
            4 => ErrClass::Busy,
            5 => ErrClass::Protocol,
            6 => ErrClass::Other,
            _ => return None,
        })
    }
}

/// A [`StoreError`] flattened for the wire: its class (which carries the
/// transient/corruption character) plus a human-readable detail and, for
/// [`ErrClass::UnknownImage`], the image id.
///
/// The round trip guarantee — pinned by tests — is that
/// `WireError::of(&e).into_store_error(peer)` classifies identically to
/// `e` under [`StoreError::is_transient`] and
/// [`StoreError::is_corruption`], so the bounded-retry/fail-fast split in
/// the restore workers behaves the same whether the error was raised
/// locally or a socket away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The classification.
    pub class: ErrClass,
    /// Numeric payload: the image id for [`ErrClass::UnknownImage`], 0
    /// otherwise.
    pub code: u64,
    /// Human-readable detail (the hex hash for
    /// [`ErrClass::MissingChunk`]).
    pub detail: String,
}

impl WireError {
    /// Classifies a server-side [`StoreError`] for the wire.
    pub fn of(e: &StoreError) -> Self {
        match e {
            StoreError::MissingChunk { hash } => WireError {
                class: ErrClass::MissingChunk,
                code: 0,
                detail: hash.clone(),
            },
            StoreError::UnknownImage(id) => WireError {
                class: ErrClass::UnknownImage,
                code: id.0,
                detail: String::new(),
            },
            StoreError::Protocol { what } => WireError {
                class: ErrClass::Protocol,
                code: 0,
                detail: what.clone(),
            },
            StoreError::Busy { .. } | StoreError::Locked { .. } => WireError {
                class: ErrClass::Busy,
                code: 0,
                detail: e.to_string(),
            },
            e if e.is_transient() => WireError {
                class: ErrClass::Transient,
                code: 0,
                detail: e.to_string(),
            },
            e if e.is_corruption() => WireError {
                class: ErrClass::Corrupt,
                code: 0,
                detail: e.to_string(),
            },
            other => WireError {
                class: ErrClass::Other,
                code: 0,
                detail: other.to_string(),
            },
        }
    }

    /// Reconstructs a [`StoreError`] of the same class on the receiving
    /// side.  `peer` labels the remote end in error messages.
    pub fn into_store_error(self, peer: &str) -> StoreError {
        match self.class {
            ErrClass::Transient => StoreError::transient(format!("peer {peer}: {}", self.detail)),
            ErrClass::Corrupt => StoreError::corrupt(
                std::path::PathBuf::from(format!("remote:{peer}")),
                self.detail,
            ),
            ErrClass::MissingChunk => StoreError::MissingChunk { hash: self.detail },
            ErrClass::UnknownImage => StoreError::UnknownImage(ImageId(self.code)),
            ErrClass::Busy => StoreError::busy(format!("peer {peer}: {}", self.detail)),
            ErrClass::Protocol => StoreError::protocol(format!("peer {peer}: {}", self.detail)),
            ErrClass::Other => {
                StoreError::io(format!("remote:{peer}"), std::io::Error::other(self.detail))
            }
        }
    }
}

/// What can go wrong taking a frame off a stream: a connection-level I/O
/// failure (retryable — the caller redials) or a malformed frame (the
/// stream's framing can no longer be trusted; the connection must be
/// dropped).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read/write failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The bytes violate the frame format: bad length, CRC mismatch,
    /// unknown version/kind, inconsistent payload.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failure: {e}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::ServerHello { .. } => K_SERVER_HELLO,
            Frame::AuthProof { .. } => K_AUTH_PROOF,
            Frame::AuthOk { .. } => K_AUTH_OK,
            Frame::HasChunks(_) => K_HAS_CHUNKS,
            Frame::PutChunk { .. } => K_PUT_CHUNK,
            Frame::GetChunk(_) => K_GET_CHUNK,
            Frame::ListManifests => K_LIST_MANIFESTS,
            Frame::GetManifest(_) => K_GET_MANIFEST,
            Frame::PutManifest { .. } => K_PUT_MANIFEST,
            Frame::Stats => K_STATS,
            Frame::Flags(_) => K_FLAGS,
            Frame::Done => K_DONE,
            Frame::Bytes(_) => K_BYTES,
            Frame::Ids(_) => K_IDS,
            Frame::Id(_) => K_ID,
            Frame::Err(_) => K_ERR,
        }
    }

    /// Serialises the whole wire frame: length prefix, body, CRC trailer.
    ///
    /// The body is assembled in place behind a length-prefix placeholder
    /// (patched at the end), so payload bytes are copied exactly once —
    /// chunk shipping is the replication hot path.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&[0u8; 4]); // length prefix, patched below
        out.push(WIRE_VERSION);
        out.push(self.kind());
        match self {
            Frame::ServerHello { nonce } => out.extend_from_slice(nonce),
            Frame::AuthProof { nonce, mac } => {
                out.extend_from_slice(nonce);
                out.extend_from_slice(&mac.to_le_bytes());
            }
            Frame::AuthOk { mac } => out.extend_from_slice(&mac.to_le_bytes()),
            Frame::HasChunks(hashes) => {
                out.extend_from_slice(&(hashes.len() as u32).to_le_bytes());
                for h in hashes {
                    out.extend_from_slice(&h.0.to_le_bytes());
                }
            }
            Frame::PutChunk { hash, bytes } => {
                out.extend_from_slice(&hash.0.to_le_bytes());
                out.extend_from_slice(bytes);
            }
            Frame::GetChunk(hash) => out.extend_from_slice(&hash.0.to_le_bytes()),
            Frame::ListManifests | Frame::Stats | Frame::Done => {}
            Frame::GetManifest(id) => out.extend_from_slice(&id.0.to_le_bytes()),
            Frame::PutManifest { parent, bytes } => {
                out.extend_from_slice(&parent.map_or(0, |p| p.0).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            Frame::Flags(flags) => {
                out.extend_from_slice(&(flags.len() as u32).to_le_bytes());
                out.extend(flags.iter().map(|&f| f as u8));
            }
            Frame::Bytes(bytes) => out.extend_from_slice(bytes),
            Frame::Ids(ids) => {
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.0.to_le_bytes());
                }
            }
            Frame::Id(id) => out.extend_from_slice(&id.0.to_le_bytes()),
            Frame::Err(we) => {
                out.push(we.class as u8);
                out.extend_from_slice(&we.code.to_le_bytes());
                out.extend_from_slice(&(we.detail.len() as u32).to_le_bytes());
                out.extend_from_slice(we.detail.as_bytes());
            }
        }
        seal_wire(out)
    }

    /// Builds the wire bytes of a [`Frame::PutChunk`] request straight
    /// from a borrowed payload — the client's hot path, sparing the
    /// `Vec` clone constructing the owned frame variant would cost per
    /// shipped chunk.  Byte-identical to `Frame::PutChunk.to_wire()`
    /// (pinned by a test).
    pub fn put_chunk_wire(hash: ContentHash, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 16 + bytes.len() + 4);
        out.extend_from_slice(&[0u8; 4]);
        out.push(WIRE_VERSION);
        out.push(K_PUT_CHUNK);
        out.extend_from_slice(&hash.0.to_le_bytes());
        out.extend_from_slice(bytes);
        seal_wire(out)
    }

    /// Likewise for [`Frame::PutManifest`].
    pub fn put_manifest_wire(parent: Option<ImageId>, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 8 + bytes.len() + 4);
        out.extend_from_slice(&[0u8; 4]);
        out.push(WIRE_VERSION);
        out.push(K_PUT_MANIFEST);
        out.extend_from_slice(&parent.map_or(0, |p| p.0).to_le_bytes());
        out.extend_from_slice(bytes);
        seal_wire(out)
    }

    /// Parses one frame body (between the length prefix and the CRC
    /// trailer, both already validated by [`read_frame`]).
    fn decode_body(body: &[u8]) -> Result<Frame, String> {
        let mut c = ByteCursor::new(body);
        let version = c.u8().ok_or("missing version")?;
        if version != WIRE_VERSION {
            return Err(format!("unsupported wire version {version}"));
        }
        let kind = c.u8().ok_or("missing kind")?;
        let remaining = body.len() - 2;
        let frame = match kind {
            K_SERVER_HELLO => Frame::ServerHello {
                nonce: take_nonce(&mut c)?,
            },
            K_AUTH_PROOF => Frame::AuthProof {
                nonce: take_nonce(&mut c)?,
                mac: c.u128().ok_or("truncated auth proof")?,
            },
            K_AUTH_OK => Frame::AuthOk {
                mac: c.u128().ok_or("truncated auth ok")?,
            },
            K_HAS_CHUNKS => {
                let n = c.u32().ok_or("missing hash count")? as usize;
                // Validate the declared count against the bytes actually
                // present *before* sizing the Vec: a lying count must not
                // drive the allocation.
                if remaining != 4 + n * 16 {
                    return Err(format!("has_chunks declares {n} hashes, body disagrees"));
                }
                let mut hashes = Vec::with_capacity(n);
                for _ in 0..n {
                    hashes.push(ContentHash(c.u128().ok_or("truncated hash list")?));
                }
                Frame::HasChunks(hashes)
            }
            K_PUT_CHUNK => Frame::PutChunk {
                hash: ContentHash(c.u128().ok_or("truncated put_chunk")?),
                bytes: rest(&mut c, body),
            },
            K_GET_CHUNK => Frame::GetChunk(ContentHash(c.u128().ok_or("truncated get_chunk")?)),
            K_LIST_MANIFESTS => Frame::ListManifests,
            K_GET_MANIFEST => Frame::GetManifest(ImageId(c.u64().ok_or("truncated get_manifest")?)),
            K_PUT_MANIFEST => {
                let parent = match c.u64().ok_or("truncated put_manifest")? {
                    0 => None,
                    p => Some(ImageId(p)),
                };
                Frame::PutManifest {
                    parent,
                    bytes: rest(&mut c, body),
                }
            }
            K_STATS => Frame::Stats,
            K_FLAGS => {
                let n = c.u32().ok_or("missing flag count")? as usize;
                if remaining != 4 + n {
                    return Err(format!("flags declares {n} entries, body disagrees"));
                }
                let mut flags = Vec::with_capacity(n);
                for _ in 0..n {
                    match c.u8().ok_or("truncated flags")? {
                        0 => flags.push(false),
                        1 => flags.push(true),
                        b => return Err(format!("flag byte {b} is neither 0 nor 1")),
                    }
                }
                Frame::Flags(flags)
            }
            K_DONE => Frame::Done,
            K_BYTES => Frame::Bytes(rest(&mut c, body)),
            K_IDS => {
                let n = c.u32().ok_or("missing id count")? as usize;
                if remaining != 4 + n * 8 {
                    return Err(format!("ids declares {n} entries, body disagrees"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(ImageId(c.u64().ok_or("truncated id list")?));
                }
                Frame::Ids(ids)
            }
            K_ID => Frame::Id(ImageId(c.u64().ok_or("truncated id")?)),
            K_ERR => {
                let class = ErrClass::from_tag(c.u8().ok_or("missing error class")?)
                    .ok_or_else(|| "unknown error class".to_string())?;
                let code = c.u64().ok_or("truncated error code")?;
                let detail_len = c.u32().ok_or("truncated error detail")? as usize;
                let detail =
                    String::from_utf8(c.take(detail_len).ok_or("truncated error detail")?.to_vec())
                        .map_err(|_| "error detail is not UTF-8")?;
                Frame::Err(WireError {
                    class,
                    code,
                    detail,
                })
            }
            k => return Err(format!("unknown frame kind {k:#04x}")),
        };
        if !c.at_end() {
            return Err("trailing bytes after frame payload".into());
        }
        Ok(frame)
    }
}

fn take_nonce(c: &mut ByteCursor<'_>) -> Result<[u8; NONCE_LEN], String> {
    let bytes = c.take(NONCE_LEN).ok_or("truncated nonce")?;
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(bytes);
    Ok(nonce)
}

/// All bytes from the cursor to the end of the body (variable-length tail
/// payloads — their length is implied by the frame length).
fn rest(c: &mut ByteCursor<'_>, body: &[u8]) -> Vec<u8> {
    let tail = body[c.pos()..].to_vec();
    let _ = c.take(tail.len());
    tail
}

/// Patches the length prefix and appends the CRC trailer onto a wire
/// buffer laid out as `[4-byte placeholder | body]`.
fn seal_wire(mut out: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = (out.len() - 4) as u64;
    out[..4].copy_from_slice(&(len as u32).to_le_bytes());
    out
}

/// Writes one pre-encoded wire frame (from [`Frame::to_wire`] /
/// [`Frame::put_chunk_wire`]) and flushes it.  Refuses a frame the
/// receiver would reject for size with `ErrorKind::InvalidInput` — a
/// permanent error (retrying cannot shrink it), surfaced *before* any
/// bytes go out so the connection stays usable.
pub fn write_wire(w: &mut impl Write, wire: &[u8]) -> std::io::Result<()> {
    if wire.len() - 4 > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
                wire.len() - 4
            ),
        ));
    }
    w.write_all(wire)?;
    w.flush()
}

/// Writes one frame and flushes it onto the wire (see [`write_wire`]).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    write_wire(w, &frame.to_wire())
}

/// Reads exactly one frame off the stream: length prefix (validated
/// against [`MAX_FRAME_LEN`] before any allocation), body, CRC check,
/// parse.  Malformed bytes yield [`FrameError::Malformed`] — never a
/// panic, an unbounded allocation, or an unbounded read.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
        return Err(FrameError::Malformed(format!(
            "frame length {len} outside [{MIN_FRAME_LEN}, {MAX_FRAME_LEN}]"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(FrameError::Io)?;
    let (body, trailer) = buf.split_at(len - 4);
    // crac-lint: allow(no-unwrap) — split_at(len - 4) guarantees a 4-byte trailer
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    let computed = crc32(body);
    if computed != stored_crc {
        return Err(FrameError::Malformed(format!(
            "frame CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
        )));
    }
    Frame::decode_body(body).map_err(FrameError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let wire = f.to_wire();
        let mut cursor = std::io::Cursor::new(wire);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::ServerHello { nonce: [7; 16] });
        roundtrip(Frame::AuthProof {
            nonce: [9; 16],
            mac: 0xDEAD_BEEF,
        });
        roundtrip(Frame::AuthOk { mac: u128::MAX });
        roundtrip(Frame::HasChunks(vec![
            ContentHash(1),
            ContentHash(u128::MAX),
        ]));
        roundtrip(Frame::HasChunks(vec![]));
        roundtrip(Frame::PutChunk {
            hash: ContentHash::of(b"x"),
            bytes: vec![0xAB; 100],
        });
        roundtrip(Frame::GetChunk(ContentHash(42)));
        roundtrip(Frame::ListManifests);
        roundtrip(Frame::GetManifest(ImageId(3)));
        roundtrip(Frame::PutManifest {
            parent: None,
            bytes: b"manifest".to_vec(),
        });
        roundtrip(Frame::PutManifest {
            parent: Some(ImageId(17)),
            bytes: vec![],
        });
        roundtrip(Frame::Stats);
        roundtrip(Frame::Flags(vec![true, false, true]));
        roundtrip(Frame::Done);
        roundtrip(Frame::Bytes(vec![1, 2, 3]));
        roundtrip(Frame::Ids(vec![ImageId(1), ImageId(99)]));
        roundtrip(Frame::Id(ImageId(12)));
        roundtrip(Frame::Err(WireError {
            class: ErrClass::MissingChunk,
            code: 0,
            detail: "abc123".into(),
        }));
    }

    /// Satellite regression: error classes survive the wire with their
    /// retry character intact — a transient decodes transient, corruption
    /// decodes as corruption, `MissingChunk`/`UnknownImage` keep their
    /// variants, so the client-side retry/fail-fast split is unchanged by
    /// serialisation.
    #[test]
    fn error_classification_survives_the_round_trip() {
        let cases: Vec<StoreError> = vec![
            StoreError::transient("link flapped"),
            StoreError::corrupt("/some/chunk", "CRC mismatch"),
            StoreError::MissingChunk {
                hash: ContentHash::of(b"gone").to_hex(),
            },
            StoreError::UnknownImage(ImageId(7)),
            StoreError::busy("store was opened read-only"),
            StoreError::protocol("push_run outside any open region"),
            StoreError::io("/dev/full", std::io::Error::other("disk on fire")),
            // An OS error of a retryable kind classifies transient.
            StoreError::io(
                "/slow/nfs",
                std::io::Error::new(std::io::ErrorKind::TimedOut, "timed out"),
            ),
        ];
        for original in cases {
            let wire = WireError::of(&original);
            let mut cursor = std::io::Cursor::new(Frame::Err(wire).to_wire());
            let Frame::Err(back) = read_frame(&mut cursor).unwrap() else {
                panic!("expected an error frame");
            };
            let decoded = back.into_store_error("127.0.0.1:9");
            assert_eq!(
                decoded.is_transient(),
                original.is_transient(),
                "transient class diverged: {original} -> {decoded}"
            );
            assert_eq!(
                decoded.is_corruption(),
                original.is_corruption(),
                "corruption class diverged: {original} -> {decoded}"
            );
            match &original {
                StoreError::MissingChunk { hash } => {
                    assert!(matches!(&decoded, StoreError::MissingChunk { hash: h } if h == hash))
                }
                StoreError::UnknownImage(id) => {
                    assert!(matches!(&decoded, StoreError::UnknownImage(i) if i == id))
                }
                _ => {}
            }
        }
    }

    /// The borrowed-payload fast paths must be byte-identical to the
    /// owned-frame encoder — one wire format, two entry points.
    #[test]
    fn borrowed_encoders_match_the_owned_encoder() {
        let hash = ContentHash::of(b"payload");
        let bytes = vec![0xCD; 777];
        assert_eq!(
            Frame::put_chunk_wire(hash, &bytes),
            Frame::PutChunk {
                hash,
                bytes: bytes.clone()
            }
            .to_wire()
        );
        for parent in [None, Some(ImageId(9))] {
            assert_eq!(
                Frame::put_manifest_wire(parent, &bytes),
                Frame::PutManifest {
                    parent,
                    bytes: bytes.clone()
                }
                .to_wire()
            );
        }
    }

    /// The sender refuses a frame the receiver would reject for size —
    /// with a *permanent* error kind, before any bytes go out.  (A
    /// zeroed buffer stands in for a real encoding: `write_wire` only
    /// consults the length.)
    #[test]
    fn oversized_frames_are_refused_at_the_sender() {
        let wire = vec![0u8; 4 + MAX_FRAME_LEN + 1];
        let mut sunk = Vec::new();
        let err = write_wire(&mut sunk, &wire).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(sunk.is_empty(), "nothing may reach the socket");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut wire = Frame::Done.to_wire();
        wire[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "got: {err}");
    }

    #[test]
    fn lying_element_count_is_refused_before_allocation() {
        // A has_chunks body declaring u32::MAX hashes over a 4-byte
        // payload: the count check must fire before any Vec is sized.
        let mut body = vec![WIRE_VERSION, K_HAS_CHUNKS];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut wire = Vec::new();
        wire.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "got: {err}");
    }

    #[test]
    fn unknown_kind_and_version_are_refused() {
        for body in [vec![WIRE_VERSION, 0x7F], vec![99, K_DONE]] {
            let mut wire = Vec::new();
            wire.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
            wire.extend_from_slice(&body);
            wire.extend_from_slice(&crc32(&body).to_le_bytes());
            let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
            assert!(matches!(err, FrameError::Malformed(_)), "got: {err}");
        }
    }
}
