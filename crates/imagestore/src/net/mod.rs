//! The real network transport: length-prefixed frames over
//! `std::net::TcpStream` — no new dependencies.
//!
//! PR 4 put the whole replication/migration stack behind the
//! [`Transport`](crate::transport::Transport) seam; this module family is
//! the first implementation where bytes actually cross a socket, the way
//! DMTCP's coordinator protocol and restic/borg's server mode put their
//! negotiation on the wire:
//!
//! * [`frame`] — the shared wire format: length-prefixed, versioned,
//!   CRC-trailed frames encoding the six `Transport` methods, with a hard
//!   frame-size cap so a malicious or corrupt peer cannot force unbounded
//!   allocation, and a classified error encoding whose
//!   transient/corruption character survives the round trip.
//! * [`auth`] — the shared-secret, mutual, HMAC-style challenge/response
//!   handshake (built on the crate's content-hash primitive) gating every
//!   connection before any store operation runs.
//! * [`server`] — `serve(listener, store, secret)`: accept loop,
//!   thread-per-connection dispatch into the [`crate::ImageStore`]
//!   surface, per-op counters, graceful shutdown handle.
//! * [`client`] — [`TcpTransport`](client::TcpTransport): the `Transport`
//!   implementation with a connection *pool*, so the parallel restore
//!   workers' `get_chunk` fan-out rides N concurrent sockets instead of
//!   serialising on one; broken connections map to transient errors and
//!   the bounded backoff retry redials.
//!
//! Everything above the trait — [`crate::remote::RemoteChunkSink`],
//! [`crate::remote::RemoteChunkSource`],
//! [`crate::ImageStore::replicate_to`], `CracProcess`'s
//! `checkpoint_to_remote`/`restart_from_remote` — runs over this
//! transport unchanged; the TCP integration suite is the proof of that
//! design claim.

pub mod auth;
pub mod client;
pub mod frame;
pub mod server;

pub use client::{TcpTransport, TcpTransportStats};
pub use frame::{ErrClass, Frame, FrameError, WireError, MAX_FRAME_LEN, NONCE_LEN, WIRE_VERSION};
pub use server::{serve, serve_on, NetServerStats, ServerHandle};
