//! The TCP serving side: an accept loop exposing one [`ImageStore`] to
//! authenticated peers over the frame protocol.
//!
//! Thread-per-connection — checkpoint replication is a small number of
//! high-throughput streams, not ten thousand idle sockets, so the simplest
//! concurrency model is also the right one.  Each connection runs the
//! [`crate::net::auth`] handshake first; every request before `AuthOk`
//! is refused with a [`ErrClass::Protocol`](crate::net::frame::ErrClass)
//! error and the connection dropped, so an unauthenticated client can
//! never reach a store operation.  After auth, requests dispatch into the
//! same store surface [`crate::transport::LoopbackTransport`] uses
//! (`ingest_chunk_file`, `adopt_manifest`, `read_chunk_file_bytes`, …),
//! which is what makes the error classification identical across
//! transports — including `MissingChunk` for a `get_chunk` racing GC.
//!
//! Server-side failures answer as classified [`Frame::Err`] frames and
//! the connection lives on: a misbehaving producer surfaces as an error
//! on the wire, never a process abort.  Only a *framing* violation (bad
//! CRC, oversized length) closes the connection — after garbage the
//! stream position can no longer be trusted.
//!
//! [`ServerHandle::shutdown`] stops the accept loop, severs every live
//! connection and joins all threads; dropping the handle does the same.
//! Tests use the same mechanism as a deterministic "node died
//! mid-transfer" switch.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::StoreError;
use crate::net::auth;
use crate::net::frame::{read_frame, write_frame, Frame, FrameError, WireError};
use crate::store::ImageStore;

/// How long the server waits for each handshake frame before giving up on
/// the connection — a client that dials and goes silent must not pin a
/// thread forever.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Snapshot of a server's operation counters — the observable the TCP
/// replication tests pin dedup down with (second replication of the same
/// image ⇒ zero `chunk_frames_received`) and pooled-connection fan-out
/// with (`get_connections` ≥ 2 under a parallel restore).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted (authenticated or not).
    pub connections_accepted: usize,
    /// Connections refused during the auth handshake.
    pub auth_failures: usize,
    /// Requests served after auth (all kinds).
    pub frames_served: usize,
    /// `has_chunks` negotiation batches answered.
    pub has_batches: usize,
    /// `put_chunk` frames received (including rejected ones — this counts
    /// what crossed the wire, dedup is proven by it staying flat).
    pub chunk_frames_received: usize,
    /// Chunk-file bytes received in those frames.
    pub chunk_bytes_received: u64,
    /// Chunks served via `get_chunk`.
    pub chunks_served: usize,
    /// Chunk-file bytes served.
    pub chunk_bytes_served: u64,
    /// Distinct connections that served at least one `get_chunk` — the
    /// proof that a parallel restore actually fanned out over the client's
    /// connection pool instead of serialising on one socket.
    pub get_connections: usize,
    /// Manifests received via `put_manifest` (accepted or not).
    pub manifest_frames_received: usize,
    /// Manifests served via `get_manifest`.
    pub manifests_served: usize,
    /// Error frames sent back to clients.
    pub errors_sent: usize,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicUsize,
    auth_failures: AtomicUsize,
    frames_served: AtomicUsize,
    has_batches: AtomicUsize,
    chunk_frames_received: AtomicUsize,
    chunk_bytes_received: AtomicU64,
    chunks_served: AtomicUsize,
    chunk_bytes_served: AtomicU64,
    get_connections: AtomicUsize,
    manifest_frames_received: AtomicUsize,
    manifests_served: AtomicUsize,
    errors_sent: AtomicUsize,
}

impl Counters {
    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            frames_served: self.frames_served.load(Ordering::Relaxed),
            has_batches: self.has_batches.load(Ordering::Relaxed),
            chunk_frames_received: self.chunk_frames_received.load(Ordering::Relaxed),
            chunk_bytes_received: self.chunk_bytes_received.load(Ordering::Relaxed),
            chunks_served: self.chunks_served.load(Ordering::Relaxed),
            chunk_bytes_served: self.chunk_bytes_served.load(Ordering::Relaxed),
            get_connections: self.get_connections.load(Ordering::Relaxed),
            manifest_frames_received: self.manifest_frames_received.load(Ordering::Relaxed),
            manifests_served: self.manifests_served.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the accept loop, the connection threads and the
/// handle: counters, the shutdown flag, and the live-connection registry
/// the shutdown path severs.
struct Shared {
    store: Arc<ImageStore>,
    secret: Vec<u8>,
    counters: Counters,
    shutting_down: AtomicBool,
    /// One cloned stream handle per live connection, keyed by a serial so
    /// finished connections deregister themselves.
    live: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// Handle to a running [`serve`] loop: address, counters, shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> NetServerStats {
        self.shared.counters.snapshot()
    }

    /// Stops accepting, severs every live connection (in-flight requests
    /// fail on their sockets — clients see a transient error and their
    /// bounded retry takes over) and joins all server threads.  The store
    /// is left exactly as the last *completed* operation left it: chunk
    /// ingest is verify-then-rename, so a severed connection can never
    /// leave a torn chunk visible.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop polls a nonblocking listener, so it observes
        // the flag within one poll interval — no wake-up connection
        // needed (a dial-back could itself fail under fd exhaustion and
        // leave the join below hanging).
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Sever live connections so blocked reads return.
        for (_, stream) in self.shared.live.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.conn_threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts serving `store` on `listener` under shared-secret `secret`:
/// spawns the accept loop and returns immediately with the handle.
/// Bind to `127.0.0.1:0` and read [`ServerHandle::local_addr`] for an
/// ephemeral test server.
pub fn serve(
    listener: TcpListener,
    store: Arc<ImageStore>,
    secret: impl Into<Vec<u8>>,
) -> std::io::Result<ServerHandle> {
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        store,
        secret: secret.into(),
        counters: Counters::default(),
        shutting_down: AtomicBool::new(false),
        live: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
    });
    let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));

    // Nonblocking accept + poll: the loop observes the shutdown flag
    // deterministically (no wake-up dial that could itself fail), and a
    // persistent accept error (fd exhaustion, say) costs one short sleep
    // per attempt instead of a hot spin.
    listener.set_nonblocking(true)?;
    const ACCEPT_POLL: Duration = Duration::from_millis(10);
    let accept_shared = Arc::clone(&shared);
    let accept_threads = Arc::clone(&conn_threads);
    let accept_thread = std::thread::Builder::new()
        .name("crac-net-accept".into())
        .spawn(move || loop {
            if accept_shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    // WouldBlock (nothing pending) and real errors alike:
                    // sleep one poll interval and re-check the flag.
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
            };
            // Some platforms have accepted sockets inherit the
            // listener's nonblocking mode; the per-connection threads
            // want blocking reads.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            let conn_shared = Arc::clone(&accept_shared);
            let handle = std::thread::Builder::new()
                .name("crac-net-conn".into())
                .spawn(move || serve_connection(stream, &conn_shared));
            if let Ok(handle) = handle {
                // Reap finished connection threads as we go: a
                // long-lived server must not accumulate one JoinHandle
                // per connection ever served.
                let mut threads = accept_threads.lock();
                let mut live = Vec::with_capacity(threads.len() + 1);
                for t in threads.drain(..) {
                    if t.is_finished() {
                        let _ = t.join();
                    } else {
                        live.push(t);
                    }
                }
                live.push(handle);
                *threads = live;
            }
        })?;

    Ok(ServerHandle {
        local_addr,
        shared,
        accept_thread: Some(accept_thread),
        conn_threads,
    })
}

/// Convenience: bind `addr` and [`serve`] on it.
pub fn serve_on(
    addr: impl std::net::ToSocketAddrs,
    store: Arc<ImageStore>,
    secret: impl Into<Vec<u8>>,
) -> std::io::Result<ServerHandle> {
    serve(TcpListener::bind(addr)?, store, secret)
}

/// One connection: register, handshake, request loop, deregister.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    shared
        .counters
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared.live.lock().insert(conn_id, clone);
    }
    // stop() may have drained the registry between our accept and the
    // insert above; re-check so a straggler severs itself — otherwise its
    // blocking read would never return and shutdown's join would hang.
    // (stop() sets the flag before draining, so whichever of insert/drain
    // lost the race, this load observes the flag.)
    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        shared.live.lock().remove(&conn_id);
        return;
    }
    let _ = stream.set_nodelay(true);

    let outcome = drive_connection(&mut stream, shared);
    if matches!(outcome, ConnOutcome::AuthFailed) {
        shared
            .counters
            .auth_failures
            .fetch_add(1, Ordering::Relaxed);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.live.lock().remove(&conn_id);
}

enum ConnOutcome {
    /// Clean close (EOF, severed socket, framing violation after auth).
    Closed,
    /// The handshake never completed: bad proof, wrong first frame, or a
    /// request issued before authentication.
    AuthFailed,
}

fn drive_connection(stream: &mut TcpStream, shared: &Shared) -> ConnOutcome {
    // -- handshake: nothing dispatches before AuthOk ---------------------
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let server_nonce = auth::fresh_nonce();
    if write_frame(
        stream,
        &Frame::ServerHello {
            nonce: server_nonce,
        },
    )
    .is_err()
    {
        return ConnOutcome::Closed;
    }
    let proof = match read_frame(stream) {
        Ok(Frame::AuthProof { nonce, mac }) => (nonce, mac),
        Ok(_) => {
            // A request (or nonsense) before authentication: refuse before
            // any store operation can run.
            refuse(stream, shared, "request before authentication");
            return ConnOutcome::AuthFailed;
        }
        Err(_) => return ConnOutcome::AuthFailed,
    };
    let (client_nonce, client_mac) = proof;
    if client_mac != auth::client_proof(&shared.secret, &server_nonce, &client_nonce) {
        refuse(stream, shared, "auth proof rejected");
        return ConnOutcome::AuthFailed;
    }
    let server_mac = auth::server_proof(&shared.secret, &server_nonce, &client_nonce);
    if write_frame(stream, &Frame::AuthOk { mac: server_mac }).is_err() {
        return ConnOutcome::Closed;
    }

    // -- request loop ----------------------------------------------------
    let _ = stream.set_read_timeout(None);
    let mut served_get = false;
    loop {
        let request = match read_frame(stream) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return ConnOutcome::Closed,
            Err(FrameError::Malformed(what)) => {
                // After garbage the stream position is untrustworthy:
                // answer once, then drop the connection.
                refuse(stream, shared, &format!("unreadable frame: {what}"));
                return ConnOutcome::Closed;
            }
        };
        shared
            .counters
            .frames_served
            .fetch_add(1, Ordering::Relaxed);
        let response = dispatch(request, shared, &mut served_get);
        if matches!(response, Frame::Err(_)) {
            shared.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(stream, &response).is_err() {
            return ConnOutcome::Closed;
        }
    }
}

/// Sends one protocol-violation error frame, best-effort.
fn refuse(stream: &mut TcpStream, shared: &Shared, what: &str) {
    shared.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
    let err = WireError::of(&StoreError::protocol(what.to_string()));
    let _ = write_frame(stream, &Frame::Err(err));
}

/// Maps one authenticated request onto the store surface, classifying
/// failures for the wire.  `served_get` tracks whether this connection
/// already counted toward [`NetServerStats::get_connections`].
fn dispatch(request: Frame, shared: &Shared, served_get: &mut bool) -> Frame {
    let counters = &shared.counters;
    let store = &shared.store;
    let result: Result<Frame, StoreError> = match request {
        Frame::HasChunks(hashes) => {
            counters.has_batches.fetch_add(1, Ordering::Relaxed);
            Ok(Frame::Flags(
                hashes.iter().map(|&h| store.contains_chunk(h)).collect(),
            ))
        }
        Frame::PutChunk { hash, bytes } => {
            counters
                .chunk_frames_received
                .fetch_add(1, Ordering::Relaxed);
            counters
                .chunk_bytes_received
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            store.ingest_chunk_file(hash, &bytes).map(|_| Frame::Done)
        }
        Frame::GetChunk(hash) => store.read_chunk_file_bytes(hash).map(|bytes| {
            counters.chunks_served.fetch_add(1, Ordering::Relaxed);
            counters
                .chunk_bytes_served
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            if !*served_get {
                *served_get = true;
                counters.get_connections.fetch_add(1, Ordering::Relaxed);
            }
            Frame::Bytes(bytes)
        }),
        Frame::ListManifests => store.manifest_ids().map(Frame::Ids),
        Frame::GetManifest(id) => store.read_manifest_bytes(id).map(|bytes| {
            counters.manifests_served.fetch_add(1, Ordering::Relaxed);
            Frame::Bytes(bytes)
        }),
        Frame::PutManifest { parent, bytes } => {
            counters
                .manifest_frames_received
                .fetch_add(1, Ordering::Relaxed);
            store.adopt_manifest(&bytes, parent).map(Frame::Id)
        }
        // A handshake or response frame arriving as a request: protocol
        // misuse, answered (not a process abort), connection lives on.
        other => Err(StoreError::protocol(format!(
            "unexpected frame kind {other:?} as a request"
        ))),
    };
    match result {
        Ok(frame) => frame,
        Err(e) => Frame::Err(WireError::of(&e)),
    }
}
