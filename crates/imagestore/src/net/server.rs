//! The TCP serving side: an accept loop exposing one [`ImageStore`] to
//! authenticated peers over the frame protocol.
//!
//! Thread-per-connection — checkpoint replication is a small number of
//! high-throughput streams, not ten thousand idle sockets, so the simplest
//! concurrency model is also the right one.  Each connection runs the
//! [`crate::net::auth`] handshake first; every request before `AuthOk`
//! is refused with a [`ErrClass::Protocol`](crate::net::frame::ErrClass)
//! error and the connection dropped, so an unauthenticated client can
//! never reach a store operation.  After auth, requests dispatch into the
//! same store surface [`crate::transport::LoopbackTransport`] uses
//! (`ingest_chunk_file`, `adopt_manifest`, `read_chunk_file_bytes`, …),
//! which is what makes the error classification identical across
//! transports — including `MissingChunk` for a `get_chunk` racing GC.
//!
//! Server-side failures answer as classified [`Frame::Err`] frames and
//! the connection lives on: a misbehaving producer surfaces as an error
//! on the wire, never a process abort.  Only a *framing* violation (bad
//! CRC, oversized length) closes the connection — after garbage the
//! stream position can no longer be trusted.
//!
//! [`ServerHandle::shutdown`] stops the accept loop, severs every live
//! connection and joins all threads; dropping the handle does the same.
//! Tests use the same mechanism as a deterministic "node died
//! mid-transfer" switch.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crac_obs::{Buckets, Counter, EventKind, Gauge, Histogram, ObsRegistry, Span};
use crac_sync::Mutex;

use crate::error::StoreError;
use crate::net::auth;
use crate::net::frame::{read_frame, write_frame, Frame, FrameError, WireError};
use crate::store::ImageStore;

/// How long the server waits for each handshake frame before giving up on
/// the connection — a client that dials and goes silent must not pin a
/// thread forever.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Snapshot of a server's operation counters — the observable the TCP
/// replication tests pin dedup down with (second replication of the same
/// image ⇒ zero `chunk_frames_received`) and pooled-connection fan-out
/// with (`get_connections` ≥ 2 under a parallel restore).
///
/// A *view*: the authoritative values live in the server's
/// [`ObsRegistry`] as `crac_net_server_*` metrics ([`ServerHandle::stats`]
/// reads a registry snapshot — there is no second set of counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted (authenticated or not).
    pub connections_accepted: usize,
    /// Connections refused during the auth handshake.
    pub auth_failures: usize,
    /// Requests served after auth (all kinds).
    pub frames_served: usize,
    /// `has_chunks` negotiation batches answered.
    pub has_batches: usize,
    /// `put_chunk` frames received (including rejected ones — this counts
    /// what crossed the wire, dedup is proven by it staying flat).
    pub chunk_frames_received: usize,
    /// Chunk-file bytes received in those frames.
    pub chunk_bytes_received: u64,
    /// Chunks served via `get_chunk`.
    pub chunks_served: usize,
    /// Chunk-file bytes served.
    pub chunk_bytes_served: u64,
    /// Distinct connections that served at least one `get_chunk` — the
    /// proof that a parallel restore actually fanned out over the client's
    /// connection pool instead of serialising on one socket.
    pub get_connections: usize,
    /// Manifests received via `put_manifest` (accepted or not).
    pub manifest_frames_received: usize,
    /// Manifests served via `get_manifest`.
    pub manifests_served: usize,
    /// Error frames sent back to clients.
    pub errors_sent: usize,
}

/// Registry-backed server instrumentation: lifetime counters, a live
/// connection gauge, and one service-time histogram per request kind.
/// Handles are resolved once at [`serve`] time (against the store's
/// registry of that moment) so the per-frame hot path is pure atomics.
struct NetObs {
    reg: ObsRegistry,
    connections_accepted: Counter,
    auth_failures: Counter,
    frames_served: Counter,
    errors_sent: Counter,
    connections_open: Gauge,
    has_batches: Counter,
    chunk_frames_received: Counter,
    chunk_bytes_received: Counter,
    chunks_served: Counter,
    chunk_bytes_served: Counter,
    get_connections: Counter,
    manifest_frames_received: Counter,
    manifests_served: Counter,
    op_has_chunks: Histogram,
    op_put_chunk: Histogram,
    op_get_chunk: Histogram,
    op_list_manifests: Histogram,
    op_get_manifest: Histogram,
    op_put_manifest: Histogram,
    op_stats: Histogram,
}

impl NetObs {
    fn new(reg: ObsRegistry) -> Self {
        let c = |name: &str| reg.counter(name);
        let h = |name: &str| reg.histogram(name, Buckets::LATENCY_US);
        Self {
            connections_accepted: c("crac_net_server_connections_accepted"),
            auth_failures: c("crac_net_server_auth_failures"),
            frames_served: c("crac_net_server_frames_served"),
            errors_sent: c("crac_net_server_errors_sent"),
            connections_open: reg.gauge("crac_net_server_connections_open"),
            has_batches: c("crac_net_server_has_batches"),
            chunk_frames_received: c("crac_net_server_chunk_frames_received"),
            chunk_bytes_received: c("crac_net_server_chunk_bytes_received"),
            chunks_served: c("crac_net_server_chunks_served"),
            chunk_bytes_served: c("crac_net_server_chunk_bytes_served"),
            get_connections: c("crac_net_server_get_connections"),
            manifest_frames_received: c("crac_net_server_manifest_frames_received"),
            manifests_served: c("crac_net_server_manifests_served"),
            op_has_chunks: h("crac_net_server_op_has_chunks_us"),
            op_put_chunk: h("crac_net_server_op_put_chunk_us"),
            op_get_chunk: h("crac_net_server_op_get_chunk_us"),
            op_list_manifests: h("crac_net_server_op_list_manifests_us"),
            op_get_manifest: h("crac_net_server_op_get_manifest_us"),
            op_put_manifest: h("crac_net_server_op_put_manifest_us"),
            op_stats: h("crac_net_server_op_stats_us"),
            reg,
        }
    }

    /// The service-time histogram for one request kind (`None` for frames
    /// that are protocol misuse as requests — they get no timing series).
    fn op_histogram(&self, request: &Frame) -> Option<&Histogram> {
        Some(match request {
            Frame::HasChunks(_) => &self.op_has_chunks,
            Frame::PutChunk { .. } => &self.op_put_chunk,
            Frame::GetChunk(_) => &self.op_get_chunk,
            Frame::ListManifests => &self.op_list_manifests,
            Frame::GetManifest(_) => &self.op_get_manifest,
            Frame::PutManifest { .. } => &self.op_put_manifest,
            Frame::Stats => &self.op_stats,
            _ => return None,
        })
    }

    fn stats(&self) -> NetServerStats {
        let snap = self.reg.snapshot();
        NetServerStats {
            connections_accepted: snap.counter("crac_net_server_connections_accepted") as usize,
            auth_failures: snap.counter("crac_net_server_auth_failures") as usize,
            frames_served: snap.counter("crac_net_server_frames_served") as usize,
            has_batches: snap.counter("crac_net_server_has_batches") as usize,
            chunk_frames_received: snap.counter("crac_net_server_chunk_frames_received") as usize,
            chunk_bytes_received: snap.counter("crac_net_server_chunk_bytes_received"),
            chunks_served: snap.counter("crac_net_server_chunks_served") as usize,
            chunk_bytes_served: snap.counter("crac_net_server_chunk_bytes_served"),
            get_connections: snap.counter("crac_net_server_get_connections") as usize,
            manifest_frames_received: snap.counter("crac_net_server_manifest_frames_received")
                as usize,
            manifests_served: snap.counter("crac_net_server_manifests_served") as usize,
            errors_sent: snap.counter("crac_net_server_errors_sent") as usize,
        }
    }
}

/// State shared between the accept loop, the connection threads and the
/// handle: counters, the shutdown flag, and the live-connection registry
/// the shutdown path severs.
struct Shared {
    store: Arc<ImageStore>,
    secret: Vec<u8>,
    obs: NetObs,
    shutting_down: AtomicBool,
    /// One cloned stream handle per live connection, keyed by a serial so
    /// finished connections deregister themselves.
    live: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// Handle to a running [`serve`] loop: address, counters, shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the operation counters (a view over the server's
    /// metrics registry).
    pub fn stats(&self) -> NetServerStats {
        self.shared.obs.stats()
    }

    /// The registry this server records into — `crac_net_server_*`
    /// counters and per-op service-time histograms, plus whatever else
    /// shares the store's registry.  [`Frame::Stats`] renders the same
    /// registry over the wire.
    pub fn obs(&self) -> ObsRegistry {
        self.shared.obs.reg.clone()
    }

    /// Stops accepting, severs every live connection (in-flight requests
    /// fail on their sockets — clients see a transient error and their
    /// bounded retry takes over) and joins all server threads.  The store
    /// is left exactly as the last *completed* operation left it: chunk
    /// ingest is verify-then-rename, so a severed connection can never
    /// leave a torn chunk visible.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop polls a nonblocking listener, so it observes
        // the flag within one poll interval — no wake-up connection
        // needed (a dial-back could itself fail under fd exhaustion and
        // leave the join below hanging).
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Sever live connections so blocked reads return.
        for (_, stream) in self.shared.live.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.conn_threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts serving `store` on `listener` under shared-secret `secret`:
/// spawns the accept loop and returns immediately with the handle.
/// Bind to `127.0.0.1:0` and read [`ServerHandle::local_addr`] for an
/// ephemeral test server.
pub fn serve(
    listener: TcpListener,
    store: Arc<ImageStore>,
    secret: impl Into<Vec<u8>>,
) -> std::io::Result<ServerHandle> {
    let local_addr = listener.local_addr()?;
    let obs = NetObs::new(store.obs());
    let shared = Arc::new(Shared {
        store,
        secret: secret.into(),
        obs,
        shutting_down: AtomicBool::new(false),
        live: Mutex::new("imagestore.net.server.live", HashMap::new()),
        next_conn: AtomicU64::new(0),
    });
    let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new("imagestore.net.server.conn_threads", Vec::new()));

    // Nonblocking accept + poll: the loop observes the shutdown flag
    // deterministically (no wake-up dial that could itself fail), and a
    // persistent accept error (fd exhaustion, say) costs one short sleep
    // per attempt instead of a hot spin.
    listener.set_nonblocking(true)?;
    const ACCEPT_POLL: Duration = Duration::from_millis(10);
    let accept_shared = Arc::clone(&shared);
    let accept_threads = Arc::clone(&conn_threads);
    let accept_thread = std::thread::Builder::new()
        .name("crac-net-accept".into())
        .spawn(move || loop {
            if accept_shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    // WouldBlock (nothing pending) and real errors alike:
                    // sleep one poll interval and re-check the flag.
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
            };
            // Some platforms have accepted sockets inherit the
            // listener's nonblocking mode; the per-connection threads
            // want blocking reads.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            let conn_shared = Arc::clone(&accept_shared);
            let handle = std::thread::Builder::new()
                .name("crac-net-conn".into())
                .spawn(move || serve_connection(stream, &conn_shared));
            if let Ok(handle) = handle {
                // Reap finished connection threads as we go: a
                // long-lived server must not accumulate one JoinHandle
                // per connection ever served.
                let mut threads = accept_threads.lock();
                let mut live = Vec::with_capacity(threads.len() + 1);
                for t in threads.drain(..) {
                    if t.is_finished() {
                        let _ = t.join();
                    } else {
                        live.push(t);
                    }
                }
                live.push(handle);
                *threads = live;
            }
        })?;

    Ok(ServerHandle {
        local_addr,
        shared,
        accept_thread: Some(accept_thread),
        conn_threads,
    })
}

/// Convenience: bind `addr` and [`serve`] on it.
pub fn serve_on(
    addr: impl std::net::ToSocketAddrs,
    store: Arc<ImageStore>,
    secret: impl Into<Vec<u8>>,
) -> std::io::Result<ServerHandle> {
    serve(TcpListener::bind(addr)?, store, secret)
}

/// One connection: register, handshake, request loop, deregister.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let obs = &shared.obs;
    obs.connections_accepted.inc();
    obs.connections_open.add(1);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    obs.reg
        .event(EventKind::ConnOpen, format!("conn={conn_id} peer={peer}"));
    if let Ok(clone) = stream.try_clone() {
        shared.live.lock().insert(conn_id, clone);
    }
    // stop() may have drained the registry between our accept and the
    // insert above; re-check so a straggler severs itself — otherwise its
    // blocking read would never return and shutdown's join would hang.
    // (stop() sets the flag before draining, so whichever of insert/drain
    // lost the race, this load observes the flag.)
    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        shared.live.lock().remove(&conn_id);
        obs.connections_open.sub(1);
        obs.reg.event(
            EventKind::ConnClose,
            format!("conn={conn_id} outcome=shutdown"),
        );
        return;
    }
    let _ = stream.set_nodelay(true);

    let outcome = drive_connection(&mut stream, shared);
    let outcome_name = match outcome {
        ConnOutcome::Closed => "closed",
        ConnOutcome::AuthFailed => {
            obs.auth_failures.inc();
            obs.reg
                .event(EventKind::AuthFail, format!("conn={conn_id} peer={peer}"));
            "auth_failed"
        }
    };
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.live.lock().remove(&conn_id);
    obs.connections_open.sub(1);
    obs.reg.event(
        EventKind::ConnClose,
        format!("conn={conn_id} outcome={outcome_name}"),
    );
}

enum ConnOutcome {
    /// Clean close (EOF, severed socket, framing violation after auth).
    Closed,
    /// The handshake never completed: bad proof, wrong first frame, or a
    /// request issued before authentication.
    AuthFailed,
}

fn drive_connection(stream: &mut TcpStream, shared: &Shared) -> ConnOutcome {
    // -- handshake: nothing dispatches before AuthOk ---------------------
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let server_nonce = auth::fresh_nonce();
    if write_frame(
        stream,
        &Frame::ServerHello {
            nonce: server_nonce,
        },
    )
    .is_err()
    {
        return ConnOutcome::Closed;
    }
    let proof = match read_frame(stream) {
        Ok(Frame::AuthProof { nonce, mac }) => (nonce, mac),
        Ok(_) => {
            // A request (or nonsense) before authentication: refuse before
            // any store operation can run.
            refuse(stream, shared, "request before authentication");
            return ConnOutcome::AuthFailed;
        }
        Err(_) => return ConnOutcome::AuthFailed,
    };
    let (client_nonce, client_mac) = proof;
    if client_mac != auth::client_proof(&shared.secret, &server_nonce, &client_nonce) {
        refuse(stream, shared, "auth proof rejected");
        return ConnOutcome::AuthFailed;
    }
    let server_mac = auth::server_proof(&shared.secret, &server_nonce, &client_nonce);
    if write_frame(stream, &Frame::AuthOk { mac: server_mac }).is_err() {
        return ConnOutcome::Closed;
    }

    // -- request loop ----------------------------------------------------
    let _ = stream.set_read_timeout(None);
    let mut served_get = false;
    loop {
        let request = match read_frame(stream) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return ConnOutcome::Closed,
            Err(FrameError::Malformed(what)) => {
                // After garbage the stream position is untrustworthy:
                // answer once, then drop the connection.
                refuse(stream, shared, &format!("unreadable frame: {what}"));
                return ConnOutcome::Closed;
            }
        };
        shared.obs.frames_served.inc();
        let span = shared.obs.op_histogram(&request).map(Span::enter);
        let response = dispatch(request, shared, &mut served_get);
        if let Some(span) = span {
            span.finish();
        }
        if matches!(response, Frame::Err(_)) {
            shared.obs.errors_sent.inc();
        }
        if write_frame(stream, &response).is_err() {
            return ConnOutcome::Closed;
        }
    }
}

/// Sends one protocol-violation error frame, best-effort.
fn refuse(stream: &mut TcpStream, shared: &Shared, what: &str) {
    shared.obs.errors_sent.inc();
    let err = WireError::of(&StoreError::protocol(what.to_string()));
    let _ = write_frame(stream, &Frame::Err(err));
}

/// Maps one authenticated request onto the store surface, classifying
/// failures for the wire.  `served_get` tracks whether this connection
/// already counted toward [`NetServerStats::get_connections`].
fn dispatch(request: Frame, shared: &Shared, served_get: &mut bool) -> Frame {
    let obs = &shared.obs;
    let store = &shared.store;
    let result: Result<Frame, StoreError> = match request {
        Frame::HasChunks(hashes) => {
            obs.has_batches.inc();
            Ok(Frame::Flags(
                hashes.iter().map(|&h| store.contains_chunk(h)).collect(),
            ))
        }
        Frame::PutChunk { hash, bytes } => {
            obs.chunk_frames_received.inc();
            obs.chunk_bytes_received.add(bytes.len() as u64);
            store.ingest_chunk_file(hash, &bytes).map(|_| Frame::Done)
        }
        Frame::GetChunk(hash) => store.read_chunk_file_bytes(hash).map(|bytes| {
            obs.chunks_served.inc();
            obs.chunk_bytes_served.add(bytes.len() as u64);
            if !*served_get {
                *served_get = true;
                obs.get_connections.inc();
            }
            Frame::Bytes(bytes)
        }),
        Frame::ListManifests => store.manifest_ids().map(Frame::Ids),
        Frame::GetManifest(id) => store.read_manifest_bytes(id).map(|bytes| {
            obs.manifests_served.inc();
            Frame::Bytes(bytes)
        }),
        Frame::PutManifest { parent, bytes } => {
            obs.manifest_frames_received.inc();
            store.adopt_manifest(&bytes, parent).map(Frame::Id)
        }
        // Observability scrape: the server's whole registry (its own
        // crac_net_server_* series plus whatever the store recorded) as
        // Prometheus-style text.
        Frame::Stats => Ok(Frame::Bytes(obs.reg.render_text().into_bytes())),
        // A handshake or response frame arriving as a request: protocol
        // misuse, answered (not a process abort), connection lives on.
        other => Err(StoreError::protocol(format!(
            "unexpected frame kind {other:?} as a request"
        ))),
    };
    match result {
        Ok(frame) => frame,
        Err(e) => Frame::Err(WireError::of(&e)),
    }
}
