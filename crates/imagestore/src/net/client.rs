//! The TCP client: [`TcpTransport`], a pooled-connection
//! [`Transport`] implementation over the frame protocol.
//!
//! **Pooling.**  The parallel restore pipeline fans `get_chunk` out over
//! worker threads; a single socket would serialise them right back.  The
//! pool is a stack of idle authenticated connections: a call pops one (or
//! dials a fresh one when the stack is empty — concurrency, not a config
//! knob, sizes the pool), and returns it on success.  Up to
//! [`TcpTransport::DEFAULT_MAX_IDLE`] idle connections are retained;
//! beyond that they are closed rather than hoarded.
//!
//! **Failure mapping.**  A connection-level I/O failure (broken pipe,
//! reset, refused dial, timeout) maps to [`StoreError::Transient`] and
//! the connection is discarded — the caller's bounded retry (now with
//! backoff) dials fresh, which is exactly the reconnect-on-broken-pipe
//! story.  A *framing* violation from the peer maps to a permanent
//! protocol error: garbage does not get retried.  A classified
//! [`Frame::Err`] response decodes back into the matching [`StoreError`]
//! class ([`crate::net::frame::WireError`]) and the connection returns to
//! the pool — an error reply is a healthy conversation.
//!
//! Every connection runs the [`crate::net::auth`] handshake before its
//! first request; the handshake is mutual, so a checkpoint never streams
//! to a peer that cannot prove the shared secret.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crac_obs::{Buckets, Counter, Gauge, Histogram, ObsRegistry, Span};
use crac_sync::Mutex;

use crate::error::StoreError;
use crate::hash::ContentHash;
use crate::net::auth;
use crate::net::frame::{read_frame, write_wire, Frame, FrameError};
use crate::store::ImageId;
use crate::transport::Transport;

/// Counters a [`TcpTransport`] keeps about its pool — a view over the
/// transport's [`ObsRegistry`] (`crac_net_client_*` families), plus the
/// live idle-pool depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpTransportStats {
    /// Connections dialled (and authenticated) over the transport's life.
    pub connections_opened: usize,
    /// Highest number of connections checked out at once — ≥ 2 proves a
    /// parallel restore actually rode multiple sockets.
    pub peak_connections_in_use: usize,
    /// Connections discarded after an I/O failure (each one maps to a
    /// transient error the retry layer absorbed or surfaced).
    pub connections_broken: usize,
    /// Idle connections currently parked in the pool.
    pub pooled_idle: usize,
    /// Requests issued through the pool ([`TcpTransport::call_wire`]
    /// entries, not attempts).
    pub requests: usize,
    /// Silent moves to the next socket after a parked connection turned
    /// out stale.  Deliberately *not* the same thing as the caller's
    /// bounded retries (`crac_retry_attempts`): a redial never charges
    /// the retry budget.
    pub redials: usize,
}

/// Registry handles for the client-side `crac_net_client_*` families.
///
/// The stage histograms carve one request into the phases that matter
/// when a replication is slow: `connect_us`/`auth_us` say whether dials
/// are the problem, `frame_encode_us` isolates serialisation, and
/// `rtt_us` is the on-the-wire round trip (write through reply) per
/// attempt — failed attempts included, since a hung socket's timeout is
/// precisely the latency the caller suffered.
#[derive(Clone)]
struct ClientObs {
    reg: ObsRegistry,
    connections_opened: Counter,
    connections_broken: Counter,
    redials: Counter,
    requests: Counter,
    connections_in_use: Gauge,
    connect_us: Histogram,
    auth_us: Histogram,
    frame_encode_us: Histogram,
    rtt_us: Histogram,
}

impl ClientObs {
    fn new(reg: ObsRegistry) -> Self {
        let c = |name: &str| reg.counter(name);
        let h = |name: &str| reg.histogram(name, Buckets::LATENCY_US);
        Self {
            connections_opened: c("crac_net_client_connections_opened"),
            connections_broken: c("crac_net_client_connections_broken"),
            redials: c("crac_net_client_redials"),
            requests: c("crac_net_client_requests"),
            connections_in_use: reg.gauge("crac_net_client_connections_in_use"),
            connect_us: h("crac_net_client_connect_us"),
            auth_us: h("crac_net_client_auth_us"),
            frame_encode_us: h("crac_net_client_frame_encode_us"),
            rtt_us: h("crac_net_client_rtt_us"),
            reg,
        }
    }
}

/// One authenticated connection.
struct Conn {
    stream: TcpStream,
}

impl Conn {
    fn roundtrip_wire(&mut self, wire: &[u8]) -> Result<Frame, FrameError> {
        write_wire(&mut self.stream, wire).map_err(FrameError::Io)?;
        read_frame(&mut self.stream)
    }
}

/// A [`Transport`] over real TCP with pooled, authenticated connections.
pub struct TcpTransport {
    addr: SocketAddr,
    secret: Vec<u8>,
    max_idle: usize,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
    idle: Mutex<Vec<Conn>>,
    /// Reserved connection for priority requests (a lazy restore's fault
    /// path): they never contend with — or queue behind — the shared pool,
    /// whose sockets a background prefetch sweep keeps saturated.
    priority_idle: Mutex<Vec<Conn>>,
    obs: ClientObs,
}

impl TcpTransport {
    /// Idle connections retained by default.  Matches the restore
    /// pipeline's worker cap (8): a full-width restore reuses its whole
    /// fan-out on the next image instead of redialling, while a mostly
    /// idle replicator keeps at most a handful of sockets open.
    pub const DEFAULT_MAX_IDLE: usize = 8;

    /// Default per-operation socket read/write timeout.
    pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

    /// Default dial timeout.
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

    /// Connects to the peer at `addr` under shared-secret `secret`.
    ///
    /// Dials (and authenticates) one connection eagerly, so a wrong
    /// address or a rejected secret surfaces here — before a checkpoint
    /// stream is half-way in — rather than on the first chunk.  A name
    /// resolving to several addresses (`localhost` commonly yields both
    /// `::1` and `127.0.0.1`) is tried in order until one dials; later
    /// reconnects stick to the address that worked.
    pub fn connect(
        addr: impl ToSocketAddrs,
        secret: impl Into<Vec<u8>>,
    ) -> Result<Self, StoreError> {
        Self::connect_with_obs(addr, secret, ObsRegistry::new())
    }

    /// [`TcpTransport::connect`] recording into a caller-supplied
    /// registry — hand it the coordinator's so one scrape covers the
    /// whole checkpoint/restore flow.  Failed candidate dials are
    /// recorded too (they are latency the caller paid).
    pub fn connect_with_obs(
        addr: impl ToSocketAddrs,
        secret: impl Into<Vec<u8>>,
        reg: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| StoreError::transient(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(StoreError::transient("address resolved to nothing"));
        }
        let secret = secret.into();
        let obs = ClientObs::new(reg);
        let mut last_err = None;
        for candidate in addrs {
            let transport = Self {
                addr: candidate,
                secret: secret.clone(),
                max_idle: Self::DEFAULT_MAX_IDLE,
                connect_timeout: Self::DEFAULT_CONNECT_TIMEOUT,
                io_timeout: Some(Self::DEFAULT_IO_TIMEOUT),
                idle: Mutex::new("imagestore.net.client.idle", Vec::new()),
                priority_idle: Mutex::new("imagestore.net.client.priority_idle", Vec::new()),
                obs: obs.clone(),
            };
            match transport.dial() {
                Ok(probe) => {
                    transport.checkin(probe);
                    return Ok(transport);
                }
                // A rejected secret or protocol mismatch is the server's
                // verdict — another address cannot change it.
                Err(e @ StoreError::Protocol { .. }) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        Err(last_err.expect("at least one candidate was tried"))
    }

    /// Overrides the idle-pool retention limit.
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// Overrides the per-operation socket timeout (`None` blocks forever).
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// The peer this transport talks to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the pool counters — a view over the transport's
    /// registry plus the live idle-pool depth.
    pub fn stats(&self) -> TcpTransportStats {
        let snap = self.obs.reg.snapshot();
        TcpTransportStats {
            connections_opened: snap.counter("crac_net_client_connections_opened") as usize,
            peak_connections_in_use: snap
                .gauge("crac_net_client_connections_in_use")
                .map(|g| g.peak as usize)
                .unwrap_or(0),
            connections_broken: snap.counter("crac_net_client_connections_broken") as usize,
            pooled_idle: self.idle.lock().len(),
            requests: snap.counter("crac_net_client_requests") as usize,
            redials: snap.counter("crac_net_client_redials") as usize,
        }
    }

    /// The registry this transport records into.
    pub fn obs(&self) -> ObsRegistry {
        self.obs.reg.clone()
    }

    /// Scrapes the *peer's* metrics: sends [`Frame::Stats`] and returns
    /// the server's Prometheus-style text exposition.
    pub fn scrape_peer_metrics(&self) -> Result<String, StoreError> {
        match self.call(&Frame::Stats)? {
            Frame::Bytes(bytes) => String::from_utf8(bytes).map_err(|_| {
                StoreError::protocol(format!("peer {} sent a non-UTF-8 exposition", self.addr))
            }),
            other => Err(self.unexpected("stats", other)),
        }
    }

    /// Dials and authenticates one fresh connection.  The TCP connect
    /// and the auth handshake are timed separately: a slow `connect_us`
    /// points at the network (or a dead peer timing out), a slow
    /// `auth_us` at a loaded server.  Failed phases record too — the
    /// span's drop covers every early return.
    fn dial(&self) -> Result<Conn, StoreError> {
        let connect_stage = Span::enter(&self.obs.connect_us);
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| self.transient_io("dial", &e))?;
        connect_stage.finish();
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.io_timeout);
        let _ = stream.set_write_timeout(self.io_timeout);
        let mut conn = Conn { stream };

        // Handshake: hello, proof, counter-proof (mutual).
        let auth_stage = Span::enter(&self.obs.auth_us);
        let server_nonce = match read_frame(&mut conn.stream).map_err(|e| self.handshake_err(e))? {
            Frame::ServerHello { nonce } => nonce,
            Frame::Err(we) => return Err(we.into_store_error(&self.addr.to_string())),
            other => {
                return Err(StoreError::protocol(format!(
                    "peer {} opened with {other:?} instead of a hello",
                    self.addr
                )))
            }
        };
        let client_nonce = auth::fresh_nonce();
        let mac = auth::client_proof(&self.secret, &server_nonce, &client_nonce);
        let reply = conn
            .roundtrip_wire(
                &Frame::AuthProof {
                    nonce: client_nonce,
                    mac,
                }
                .to_wire(),
            )
            .map_err(|e| self.handshake_err(e))?;
        match reply {
            Frame::AuthOk { mac } => {
                if mac != auth::server_proof(&self.secret, &server_nonce, &client_nonce) {
                    return Err(StoreError::protocol(format!(
                        "peer {} failed the mutual auth counter-proof",
                        self.addr
                    )));
                }
            }
            Frame::Err(we) => return Err(we.into_store_error(&self.addr.to_string())),
            other => {
                return Err(StoreError::protocol(format!(
                    "peer {} answered the auth proof with {other:?}",
                    self.addr
                )))
            }
        }
        auth_stage.finish();
        self.obs.connections_opened.inc();
        Ok(conn)
    }

    /// Auth-phase failures: I/O means the peer vanished (transient — it
    /// may be restarting), garbage means it is not speaking our protocol.
    fn handshake_err(&self, e: FrameError) -> StoreError {
        match e {
            FrameError::Io(io) => self.transient_io("handshake", &io),
            FrameError::Malformed(what) => StoreError::protocol(format!(
                "peer {} broke the handshake framing: {what}",
                self.addr
            )),
        }
    }

    fn transient_io(&self, during: &str, e: &std::io::Error) -> StoreError {
        StoreError::transient(format!("connection to {} broke ({during}): {e}", self.addr))
    }

    fn checkin(&self, conn: Conn) {
        Self::checkin_to(&self.idle, self.max_idle, conn);
    }

    fn checkin_to(pool: &Mutex<Vec<Conn>>, limit: usize, conn: Conn) {
        let mut idle = pool.lock();
        if idle.len() < limit {
            idle.push(conn);
        }
        // Beyond the retention limit the connection just drops (closes).
    }

    /// One request/response exchange on a pooled connection, for
    /// requests that are safe to silently re-send (everything except
    /// `put_manifest` — chunk ingest is content-addressed, queries are
    /// pure).
    fn call(&self, request: &Frame) -> Result<Frame, StoreError> {
        let wire = self.encode_timed(|| request.to_wire());
        self.call_wire(&wire, true)
    }

    /// Builds a request's wire bytes under the frame-encode histogram —
    /// the serialisation share of a request, separate from its RTT.
    fn encode_timed(&self, build: impl FnOnce() -> Vec<u8>) -> Vec<u8> {
        let stage = Span::enter(&self.obs.frame_encode_us);
        let wire = build();
        stage.finish();
        wire
    }

    /// [`TcpTransport::call`] on pre-encoded wire bytes.
    ///
    /// A connection that died while parked in the pool is *not* the
    /// wire's verdict: it is discarded and the next one tried, without
    /// charging the caller's bounded retry budget — otherwise a server
    /// restart would make the first few operations exhaust all their
    /// retries on stale sockets while the server is perfectly healthy.
    /// Only a failure on a freshly dialled connection is reported.
    ///
    /// The silent re-send is bounded by `idempotent`: a *write*-phase
    /// failure never delivered a complete frame, so any request may move
    /// to the next socket; a *read*-phase failure on a pooled connection
    /// may mean the server executed the request and only the reply was
    /// lost — re-sending is safe only for idempotent requests, a
    /// non-idempotent one (`put_manifest`, which allocates a fresh image
    /// id per execution) surfaces the failure as transient and leaves
    /// the replay decision to the caller.
    fn call_wire(&self, wire: &[u8], idempotent: bool) -> Result<Frame, StoreError> {
        self.call_wire_on(wire, idempotent, &self.idle, self.max_idle)
    }

    /// [`TcpTransport::call_wire`] drawing connections from `pool` (and
    /// retaining at most `limit` of them afterwards).  The shared pool and
    /// the priority slot run the exact same exchange; only the connection
    /// they contend on differs.
    fn call_wire_on(
        &self,
        wire: &[u8],
        idempotent: bool,
        pool: &Mutex<Vec<Conn>>,
        limit: usize,
    ) -> Result<Frame, StoreError> {
        self.obs.requests.inc();
        let mut attempts = 0usize;
        loop {
            // Every loop iteration past the first is a redial: a parked
            // socket turned out stale and the request silently moved on.
            // Counted apart from `crac_retry_attempts` — the caller's
            // bounded retry budget is never charged for these.
            attempts += 1;
            if attempts > 1 {
                self.obs.redials.inc();
            }
            let pooled = pool.lock().pop();
            let fresh = pooled.is_none();
            let mut conn = match pooled {
                Some(c) => c,
                None => self.dial()?,
            };
            self.obs.connections_in_use.add(1);
            // The two phases fail differently (see the doc comment), so
            // keep them apart instead of folding both into one result.
            // The RTT span covers write-through-reply and records on
            // every exit path, failures included: a timeout on a hung
            // socket *is* the latency this attempt cost.
            let rtt_stage = Span::enter(&self.obs.rtt_us);
            let outcome = match write_wire(&mut conn.stream, wire) {
                Ok(()) => Ok(read_frame(&mut conn.stream)),
                Err(e) => Err(e),
            };
            rtt_stage.finish();
            self.obs.connections_in_use.sub(1);
            let result = match outcome {
                Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                    // The frame itself is oversized — nothing went out
                    // (the connection is fine) and no retry can shrink
                    // it: permanent.
                    Self::checkin_to(pool, limit, conn);
                    return Err(StoreError::protocol(format!(
                        "request to {} refused before send: {e}",
                        self.addr
                    )));
                }
                Err(e) => {
                    // The send failed: no complete frame was delivered,
                    // so moving to the next socket cannot double-execute
                    // anything — any request may retry here.
                    self.obs.connections_broken.inc();
                    if fresh {
                        return Err(self.transient_io("request", &e));
                    }
                    continue;
                }
                Ok(reply) => reply,
            };
            match result {
                Ok(Frame::Err(we)) => {
                    // A classified refusal is a healthy conversation: the
                    // connection goes back to the pool, the error class
                    // (transient vs permanent) decodes intact.
                    Self::checkin_to(pool, limit, conn);
                    return Err(we.into_store_error(&self.addr.to_string()));
                }
                Ok(frame) => {
                    Self::checkin_to(pool, limit, conn);
                    return Ok(frame);
                }
                Err(FrameError::Io(e)) => {
                    // The reply never arrived: discard the socket.  A
                    // stale pooled connection means "try the next one" —
                    // but only for idempotent requests, since the server
                    // may have executed this one before the socket died.
                    self.obs.connections_broken.inc();
                    if fresh || !idempotent {
                        return Err(self.transient_io("request", &e));
                    }
                }
                Err(FrameError::Malformed(what)) => {
                    self.obs.connections_broken.inc();
                    return Err(StoreError::protocol(format!(
                        "peer {} sent an unreadable frame: {what}",
                        self.addr
                    )));
                }
            }
        }
    }

    /// A response of a kind the request cannot produce.
    fn unexpected(&self, what: &str, got: Frame) -> StoreError {
        StoreError::protocol(format!("peer {} answered {what} with {got:?}", self.addr))
    }
}

impl Transport for TcpTransport {
    fn has_chunks(&self, hashes: &[ContentHash]) -> Result<Vec<bool>, StoreError> {
        match self.call(&Frame::HasChunks(hashes.to_vec()))? {
            Frame::Flags(flags) => Ok(flags),
            other => Err(self.unexpected("has_chunks", other)),
        }
    }

    fn put_chunk(&self, hash: ContentHash, file_bytes: &[u8]) -> Result<(), StoreError> {
        // The replication hot path: encode straight from the borrowed
        // payload, no owned-frame clone per shipped chunk.  Idempotent —
        // the receiver's content-addressed ingest no-ops on a duplicate.
        match self.call_wire(&Frame::put_chunk_wire(hash, file_bytes), true)? {
            Frame::Done => Ok(()),
            other => Err(self.unexpected("put_chunk", other)),
        }
    }

    fn get_chunk(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        match self.call(&Frame::GetChunk(hash))? {
            Frame::Bytes(bytes) => Ok(bytes),
            other => Err(self.unexpected("get_chunk", other)),
        }
    }

    // A fault-path fetch rides the reserved priority connection: with the
    // shared pool saturated by a background prefetch sweep, the page the
    // restarted process is blocked on still gets a socket immediately
    // instead of queueing per-connection behind bulk chunks.
    fn get_chunk_priority(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        let wire = self.encode_timed(|| Frame::GetChunk(hash).to_wire());
        match self.call_wire_on(&wire, true, &self.priority_idle, 1)? {
            Frame::Bytes(bytes) => Ok(bytes),
            other => Err(self.unexpected("get_chunk", other)),
        }
    }

    fn list_manifests(&self) -> Result<Vec<ImageId>, StoreError> {
        match self.call(&Frame::ListManifests)? {
            Frame::Ids(ids) => Ok(ids),
            other => Err(self.unexpected("list_manifests", other)),
        }
    }

    fn get_manifest(&self, id: ImageId) -> Result<Vec<u8>, StoreError> {
        match self.call(&Frame::GetManifest(id))? {
            Frame::Bytes(bytes) => Ok(bytes),
            other => Err(self.unexpected("get_manifest", other)),
        }
    }

    fn put_manifest(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError> {
        // NOT idempotent: each server-side execution allocates a fresh
        // image id, so a lost reply must not be silently replayed.
        match self.call_wire(&Frame::put_manifest_wire(parent, manifest_bytes), false)? {
            Frame::Id(id) => Ok(id),
            other => Err(self.unexpected("put_manifest", other)),
        }
    }
}
