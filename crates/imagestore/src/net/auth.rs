//! The shared-secret auth handshake gating every TCP connection.
//!
//! Three frames, before any store request is served:
//!
//! ```text
//! server → client   ServerHello { server_nonce }
//! client → server   AuthProof   { client_nonce,
//!                                 mac = H(secret, server_nonce ‖ client_nonce ‖ "client") }
//! server → client   AuthOk      { mac = H(secret, server_nonce ‖ client_nonce ‖ "server") }
//! ```
//!
//! The proof is an HMAC-style construction (inner/outer keyed hashes with
//! the classic `0x36`/`0x5c` pads) over the crate's existing 128-bit
//! content hash — no new dependencies.  Both directions prove knowledge
//! of the secret without ever sending it, fresh nonces keep transcripts
//! from replaying, and the direction tag keeps a reflected proof from
//! verifying.  The same honesty note as [`crate::hash`] applies: FNV-1a
//! is not a cryptographic primitive, so this keeps *honest* stores from
//! being crossed (a mis-pasted address, a stale config) and raises the
//! bar for drive-by connections; a hostile network needs a real MAC and
//! transport encryption layered underneath (the handshake shape would
//! not change).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::ContentHash;
use crate::net::frame::NONCE_LEN;

/// HMAC block size the secret is padded/collapsed to.
const BLOCK: usize = 64;

/// HMAC-style keyed hash: `H((k ⊕ opad) ‖ H((k ⊕ ipad) ‖ msg))` over
/// [`ContentHash`] (FNV-1a-128).
pub(crate) fn mac(secret: &[u8], parts: &[&[u8]]) -> u128 {
    // Collapse an oversized secret to a hash, pad the rest with zeros.
    let mut key = [0u8; BLOCK];
    if secret.len() > BLOCK {
        key[..16].copy_from_slice(&ContentHash::of(secret).0.to_le_bytes());
    } else {
        key[..secret.len()].copy_from_slice(secret);
    }
    let mut inner = Vec::with_capacity(BLOCK + parts.iter().map(|p| p.len()).sum::<usize>());
    inner.extend(key.iter().map(|b| b ^ 0x36));
    for part in parts {
        inner.extend_from_slice(part);
    }
    let inner_digest = ContentHash::of(&inner).0;
    let mut outer = Vec::with_capacity(BLOCK + 16);
    outer.extend(key.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest.to_le_bytes());
    ContentHash::of(&outer).0
}

/// The client's proof over both nonces.
pub(crate) fn client_proof(secret: &[u8], server_nonce: &[u8], client_nonce: &[u8]) -> u128 {
    mac(secret, &[server_nonce, client_nonce, b"client"])
}

/// The server's counter-proof (direction-tagged, so a reflected client
/// proof never verifies as the server's).
pub(crate) fn server_proof(secret: &[u8], server_nonce: &[u8], client_nonce: &[u8]) -> u128 {
    mac(secret, &[server_nonce, client_nonce, b"server"])
}

/// A fresh challenge nonce: `/dev/urandom` where available, otherwise a
/// hash over the clock, the PID and a process-wide counter — unique per
/// handshake is what matters, unpredictability is best-effort to the same
/// degree as the rest of the crate's hashing.
pub(crate) fn fresh_nonce() -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        use std::io::Read;
        if f.read_exact(&mut nonce).is_ok() {
            return nonce;
        }
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut seed = Vec::with_capacity(32);
    seed.extend_from_slice(&now.to_le_bytes());
    seed.extend_from_slice(&count.to_le_bytes());
    seed.extend_from_slice(&std::process::id().to_le_bytes());
    nonce.copy_from_slice(&ContentHash::of(&seed).0.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proofs_depend_on_secret_nonces_and_direction() {
        let (sn, cn) = ([1u8; NONCE_LEN], [2u8; NONCE_LEN]);
        let p = client_proof(b"secret", &sn, &cn);
        assert_eq!(p, client_proof(b"secret", &sn, &cn), "deterministic");
        assert_ne!(p, client_proof(b"other", &sn, &cn), "keyed");
        assert_ne!(p, client_proof(b"secret", &cn, &sn), "nonce-ordered");
        assert_ne!(p, server_proof(b"secret", &sn, &cn), "direction-tagged");
    }

    #[test]
    fn oversized_secrets_are_collapsed_not_truncated() {
        let long_a = vec![0xAA; 200];
        let mut long_b = long_a.clone();
        long_b[199] = 0xAB; // differs beyond the HMAC block size
        let (sn, cn) = ([3u8; NONCE_LEN], [4u8; NONCE_LEN]);
        assert_ne!(
            client_proof(&long_a, &sn, &cn),
            client_proof(&long_b, &sn, &cn)
        );
    }

    #[test]
    fn nonces_are_unique() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
    }
}
