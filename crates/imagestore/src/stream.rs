//! The streaming seams, one per direction.
//!
//! **Checkpoint (write)**: producers push `(region descriptor, page-run
//! payload)` records into a [`ChunkSink`], and anything that can enumerate
//! regions run by run is a [`RegionSource`].  The writer pipeline
//! ([`crate::writer::StreamWriter`]) is the canonical `ChunkSink` (records
//! flow through it straight into chunk files without the image ever being
//! materialised), but the trait is deliberately store-agnostic — a remote
//! or replicated backend implements the same four methods and every
//! producer (the DMTCP coordinator, an in-memory image, a migration
//! source) works against it unchanged —
//! [`crate::remote::RemoteChunkSink`] is exactly that: the same records,
//! shipped to a peer over a [`crate::transport::Transport`].
//!
//! **Restore (read)** — the mirror image: anything that can deliver a
//! stored image's content chunk by chunk is a [`ChunkSource`], and
//! consumers accept its records through a [`RegionSink`].  The reader
//! pipeline ([`crate::reader::StreamReader`]) is the canonical
//! `ChunkSource`; [`MaterialiseSink`] rebuilds a full `CheckpointImage`
//! for legacy in-memory users.  Because verified chunks arrive in fetch
//! order, `RegionSink` declares every region up front and then accepts
//! page runs in *arbitrary* order, each tagged with its target region —
//! the contract that lets the splice overlap fetch/verify with no
//! barrier.  [`crate::remote::RemoteChunkSource`] slots in as exactly
//! such another `ChunkSource`, fetching over a transport instead of from
//! the chunk directory.
//!
//! [`SinkBridge`] adapts a `ChunkSink` to `crac_dmtcp`'s
//! [`CheckpointSink`] so the coordinator — which cannot depend on this
//! crate — can drive the store directly: store errors are parked in the
//! bridge, the coordinator sees only the opaque `SinkClosed` stop marker,
//! and the bridge's owner recovers the real [`StoreError`] afterwards.
//! [`RestoreBridge`] is its restore-side mirror: it presents a
//! `crac_dmtcp` [`RestoreSink`] (the coordinator's restore cursor) as a
//! `RegionSink`, translating the sink's `SinkClosed` back into a
//! [`StoreError`] for the reader.

use crac_addrspace::{PageRun, PAGE_SIZE};
use crac_dmtcp::{
    CheckpointImage, CheckpointSink, RegionDescriptor, RestoreSink, SavedRegion, SinkClosed,
};

use crate::chunk::CHUNK_PAGES;
use crate::error::StoreError;

/// Consumer of streamed checkpoint records.
///
/// Call order contract (the same one `crac_dmtcp::CheckpointSink` has):
///
/// ```text
/// (begin_region (push_run)* end_region)* (push_payload)*
/// ```
///
/// Runs within a region arrive in strictly increasing page order and
/// `bytes.len()` is always `run.count * PAGE_SIZE`.
pub trait ChunkSink {
    /// Opens a region.
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError>;
    /// One run of consecutive dirty pages belonging to the open region.
    fn push_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), StoreError>;
    /// Closes the open region.
    fn end_region(&mut self) -> Result<(), StoreError>;
    /// One named plugin payload.
    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
}

/// Anything that can stream its regions into a [`ChunkSink`].
pub trait RegionSource {
    /// Pushes every region (run by run) and payload into `sink`.
    fn stream_into(&self, sink: &mut dyn ChunkSink) -> Result<(), StoreError>;
}

/// The materialised image is itself a region source: this is how the
/// legacy [`crate::ImageStore::write_image`] path rides the same pipeline
/// as the streaming one.
impl RegionSource for CheckpointImage {
    fn stream_into(&self, sink: &mut dyn ChunkSink) -> Result<(), StoreError> {
        for region in &self.regions {
            sink.begin_region(&RegionDescriptor {
                start: region.start,
                len: region.len,
                prot: region.prot,
                label: region.label.clone(),
            })?;
            let by_index: std::collections::BTreeMap<u64, &[u8]> = region
                .pages
                .iter()
                .map(|(idx, bytes)| (*idx, bytes.as_slice()))
                .collect();
            let mut buf: Vec<u8> = Vec::new();
            for run in region.page_runs() {
                // Split oversized runs so the staging buffer stays bounded
                // (mirrors what the coordinator's streaming walk emits).
                let mut first = run.first;
                let mut remaining = run.count;
                while remaining > 0 {
                    let take = remaining.min(CHUNK_PAGES);
                    buf.clear();
                    for page in first..first + take {
                        buf.extend_from_slice(by_index[&page]);
                    }
                    debug_assert_eq!(buf.len() as u64, take * PAGE_SIZE);
                    sink.push_run(PageRun { first, count: take }, &buf)?;
                    first += take;
                    remaining -= take;
                }
            }
            sink.end_region()?;
        }
        for (name, data) in &self.payloads {
            sink.push_payload(name, data)?;
        }
        Ok(())
    }
}

/// Adapts a [`ChunkSink`] to `crac_dmtcp`'s [`CheckpointSink`].
///
/// The first store error is parked here and surfaced to the coordinator as
/// the opaque [`SinkClosed`] marker; retrieve it with
/// [`SinkBridge::into_error`] after the producer has stopped.
pub struct SinkBridge<'a, S: ChunkSink + ?Sized> {
    sink: &'a mut S,
    error: Option<StoreError>,
}

impl<'a, S: ChunkSink + ?Sized> SinkBridge<'a, S> {
    /// Wraps `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        Self { sink, error: None }
    }

    /// The parked error, if any method failed.
    pub fn into_error(self) -> Option<StoreError> {
        self.error
    }

    fn park(&mut self, r: Result<(), StoreError>) -> Result<(), SinkClosed> {
        match r {
            Ok(()) => Ok(()),
            Err(e) => {
                // Keep the first error: later failures are usually echoes.
                self.error.get_or_insert(e);
                Err(SinkClosed)
            }
        }
    }
}

impl<S: ChunkSink + ?Sized> CheckpointSink for SinkBridge<'_, S> {
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed> {
        let r = self.sink.begin_region(desc);
        self.park(r)
    }

    fn page_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), SinkClosed> {
        let r = self.sink.push_run(run, bytes);
        self.park(r)
    }

    fn end_region(&mut self) -> Result<(), SinkClosed> {
        let r = self.sink.end_region();
        self.park(r)
    }

    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed> {
        let r = self.sink.push_payload(name, data);
        self.park(r)
    }
}

// ---------------------------------------------------------------------
// Restore direction
// ---------------------------------------------------------------------

/// Consumer of streamed restore records.
///
/// Call order contract (looser than the checkpoint one, because content
/// arrives in chunk-fetch order):
///
/// ```text
/// (declare_region)* (push_payload | push_run)*
/// ```
///
/// Every region is declared first, in image order — declaration order
/// defines the region indices `push_run` refers to.  Runs then arrive in
/// **arbitrary order**, across regions and within a region;
/// `bytes.len()` is always `run.count * PAGE_SIZE` and `run.first` is a
/// region-relative page index.  Payloads may arrive at any point after
/// the declarations.
pub trait RegionSink {
    /// Declares the next region (indexed by declaration order, from 0).
    fn declare_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError>;
    /// One verified run of pages belonging to declared region `region`.
    fn push_run(&mut self, region: usize, run: PageRun, bytes: &[u8]) -> Result<(), StoreError>;
    /// One named plugin payload.
    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
}

/// Anything that can stream a stored image's content into a
/// [`RegionSink`]: the store's reader pipeline, an in-memory image, a
/// future remote chunk backend.
pub trait ChunkSource {
    /// Pushes every region declaration, page run and payload into `sink`.
    fn stream_out(&mut self, sink: &mut dyn RegionSink) -> Result<(), StoreError>;
}

/// The materialised image is itself a chunk source — symmetric to its
/// [`RegionSource`] impl on the write side.  The streaming-restore
/// equivalence proptests round-trip an image through this impl and a
/// [`MaterialiseSink`] to pin the seam's contract down without any store
/// involved.
impl ChunkSource for CheckpointImage {
    fn stream_out(&mut self, sink: &mut dyn RegionSink) -> Result<(), StoreError> {
        for region in &self.regions {
            sink.declare_region(&RegionDescriptor {
                start: region.start,
                len: region.len,
                prot: region.prot,
                label: region.label.clone(),
            })?;
        }
        for (name, data) in &self.payloads {
            sink.push_payload(name, data)?;
        }
        for (idx, region) in self.regions.iter().enumerate() {
            for (page, bytes) in &region.pages {
                sink.push_run(
                    idx,
                    PageRun {
                        first: *page,
                        count: 1,
                    },
                    bytes,
                )?;
            }
        }
        Ok(())
    }
}

/// Rebuilds a full [`CheckpointImage`] from a streamed restore — how the
/// legacy [`crate::ImageStore::read_image`] rides the streaming reader.
///
/// Accepts runs in any order (per the [`RegionSink`] contract) and sorts
/// each region's pages when the image is taken out.
#[derive(Debug, Default)]
pub struct MaterialiseSink {
    regions: Vec<SavedRegion>,
    payloads: Vec<(String, Vec<u8>)>,
}

impl MaterialiseSink {
    /// Finishes the materialisation: sorts every region's pages into page
    /// order and stamps the checkpoint time.
    pub fn into_image(self, taken_at_ns: u64) -> CheckpointImage {
        let mut image = CheckpointImage {
            regions: self.regions,
            taken_at_ns,
            ..Default::default()
        };
        for region in &mut image.regions {
            region.pages.sort_by_key(|(idx, _)| *idx);
        }
        for (name, data) in self.payloads {
            image.payloads.insert(name, data);
        }
        image
    }
}

impl RegionSink for MaterialiseSink {
    fn declare_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError> {
        self.regions.push(SavedRegion {
            start: desc.start,
            len: desc.len,
            prot: desc.prot,
            label: desc.label.clone(),
            pages: Vec::new(),
        });
        Ok(())
    }

    fn push_run(&mut self, region: usize, run: PageRun, bytes: &[u8]) -> Result<(), StoreError> {
        debug_assert_eq!(bytes.len() as u64, run.count * PAGE_SIZE);
        let region = self
            .regions
            .get_mut(region)
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            .expect("push_run targets an undeclared region");
        for (i, page) in run.pages().enumerate() {
            let off = i * PAGE_SIZE as usize;
            region
                .pages
                .push((page, bytes[off..off + PAGE_SIZE as usize].to_vec()));
        }
        Ok(())
    }

    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.payloads.push((name.to_string(), data.to_vec()));
        Ok(())
    }
}

/// Adapts a `crac_dmtcp` [`RestoreSink`] to this crate's [`RegionSink`] —
/// the restore-side mirror of [`SinkBridge`].
///
/// The coordinator's restore cursor cannot return a [`StoreError`]; if it
/// reports [`SinkClosed`], the bridge surfaces a generic stop error to
/// abort the reader, and the cursor's owner knows the real cause.
pub struct RestoreBridge<'a, S: RestoreSink + ?Sized> {
    sink: &'a mut S,
}

impl<'a, S: RestoreSink + ?Sized> RestoreBridge<'a, S> {
    /// Wraps `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        Self { sink }
    }

    fn closed(_: SinkClosed) -> StoreError {
        StoreError::busy("restore sink closed")
    }
}

impl<S: RestoreSink + ?Sized> RegionSink for RestoreBridge<'_, S> {
    fn declare_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError> {
        self.sink.declare_region(desc).map_err(Self::closed)
    }

    fn push_run(&mut self, region: usize, run: PageRun, bytes: &[u8]) -> Result<(), StoreError> {
        self.sink.page_run(region, run, bytes).map_err(Self::closed)
    }

    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.sink.payload(name, data).map_err(Self::closed)
    }
}
