//! The streaming seam: producers push `(region descriptor, page-run
//! payload)` records into a [`ChunkSink`], and anything that can enumerate
//! regions run by run is a [`RegionSource`].
//!
//! This is the store's producer-facing API.  The writer pipeline
//! ([`crate::writer::StreamWriter`]) is the canonical `ChunkSink` (records
//! flow through it straight into chunk files without the image ever being
//! materialised), but the trait is deliberately store-agnostic — a remote
//! or replicated backend implements the same four methods and every
//! producer (the DMTCP coordinator, an in-memory image, a future
//! migration source) works against it unchanged.
//!
//! [`SinkBridge`] adapts a `ChunkSink` to `crac_dmtcp`'s
//! [`CheckpointSink`] so the coordinator — which cannot depend on this
//! crate — can drive the store directly: store errors are parked in the
//! bridge, the coordinator sees only the opaque `SinkClosed` stop marker,
//! and the bridge's owner recovers the real [`StoreError`] afterwards.

use crac_addrspace::{PageRun, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, CheckpointSink, RegionDescriptor, SinkClosed};

use crate::chunk::CHUNK_PAGES;
use crate::error::StoreError;

/// Consumer of streamed checkpoint records.
///
/// Call order contract (the same one `crac_dmtcp::CheckpointSink` has):
///
/// ```text
/// (begin_region (push_run)* end_region)* (push_payload)*
/// ```
///
/// Runs within a region arrive in strictly increasing page order and
/// `bytes.len()` is always `run.count * PAGE_SIZE`.
pub trait ChunkSink {
    /// Opens a region.
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError>;
    /// One run of consecutive dirty pages belonging to the open region.
    fn push_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), StoreError>;
    /// Closes the open region.
    fn end_region(&mut self) -> Result<(), StoreError>;
    /// One named plugin payload.
    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
}

/// Anything that can stream its regions into a [`ChunkSink`].
pub trait RegionSource {
    /// Pushes every region (run by run) and payload into `sink`.
    fn stream_into(&self, sink: &mut dyn ChunkSink) -> Result<(), StoreError>;
}

/// The materialised image is itself a region source: this is how the
/// legacy [`crate::ImageStore::write_image`] path rides the same pipeline
/// as the streaming one.
impl RegionSource for CheckpointImage {
    fn stream_into(&self, sink: &mut dyn ChunkSink) -> Result<(), StoreError> {
        for region in &self.regions {
            sink.begin_region(&RegionDescriptor {
                start: region.start,
                len: region.len,
                prot: region.prot,
                label: region.label.clone(),
            })?;
            let by_index: std::collections::BTreeMap<u64, &[u8]> = region
                .pages
                .iter()
                .map(|(idx, bytes)| (*idx, bytes.as_slice()))
                .collect();
            let mut buf: Vec<u8> = Vec::new();
            for run in region.page_runs() {
                // Split oversized runs so the staging buffer stays bounded
                // (mirrors what the coordinator's streaming walk emits).
                let mut first = run.first;
                let mut remaining = run.count;
                while remaining > 0 {
                    let take = remaining.min(CHUNK_PAGES);
                    buf.clear();
                    for page in first..first + take {
                        buf.extend_from_slice(by_index[&page]);
                    }
                    debug_assert_eq!(buf.len() as u64, take * PAGE_SIZE);
                    sink.push_run(PageRun { first, count: take }, &buf)?;
                    first += take;
                    remaining -= take;
                }
            }
            sink.end_region()?;
        }
        for (name, data) in &self.payloads {
            sink.push_payload(name, data)?;
        }
        Ok(())
    }
}

/// Adapts a [`ChunkSink`] to `crac_dmtcp`'s [`CheckpointSink`].
///
/// The first store error is parked here and surfaced to the coordinator as
/// the opaque [`SinkClosed`] marker; retrieve it with
/// [`SinkBridge::into_error`] after the producer has stopped.
pub struct SinkBridge<'a, S: ChunkSink + ?Sized> {
    sink: &'a mut S,
    error: Option<StoreError>,
}

impl<'a, S: ChunkSink + ?Sized> SinkBridge<'a, S> {
    /// Wraps `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        Self { sink, error: None }
    }

    /// The parked error, if any method failed.
    pub fn into_error(self) -> Option<StoreError> {
        self.error
    }

    fn park(&mut self, r: Result<(), StoreError>) -> Result<(), SinkClosed> {
        match r {
            Ok(()) => Ok(()),
            Err(e) => {
                // Keep the first error: later failures are usually echoes.
                self.error.get_or_insert(e);
                Err(SinkClosed)
            }
        }
    }
}

impl<S: ChunkSink + ?Sized> CheckpointSink for SinkBridge<'_, S> {
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed> {
        let r = self.sink.begin_region(desc);
        self.park(r)
    }

    fn page_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), SinkClosed> {
        let r = self.sink.push_run(run, bytes);
        self.park(r)
    }

    fn end_region(&mut self) -> Result<(), SinkClosed> {
        let r = self.sink.end_region();
        self.park(r)
    }

    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed> {
        let r = self.sink.push_payload(name, data);
        self.park(r)
    }
}
