//! Integrity primitives: CRC-32 (IEEE) framing checks and the 128-bit
//! content hash that names chunks.
//!
//! Both are implemented locally because the build environment has no
//! registry access.  CRC-32 guards against *accidental* corruption (the
//! roundtrip tests flip single bytes); the content hash only needs to make
//! collisions between distinct page contents astronomically unlikely, for
//! which 128-bit FNV-1a is sufficient — there is no adversary in a
//! checkpoint store the process writes for itself.

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
    }

    /// Finalises and returns the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// 128-bit content hash naming a chunk in the store.
///
/// Equal hash ⇒ treated as equal content (that is what deduplication
/// *means*); the 128-bit width makes accidental collisions negligible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl ContentHash {
    /// Hashes `bytes` with FNV-1a-128.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        ContentHash(h)
    }

    /// Lower-case hex rendering (32 chars) — also the chunk's file stem.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses [`ContentHash::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming equals one-shot.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn content_hash_hex_round_trip() {
        let h = ContentHash::of(b"some page bytes");
        assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
        assert_ne!(h, ContentHash::of(b"other page bytes"));
        assert!(ContentHash::from_hex("xyz").is_none());
    }

    #[test]
    fn single_bit_flip_changes_both_digests() {
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[2049] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
        assert_ne!(ContentHash::of(&a), ContentHash::of(&b));
    }
}
