//! Remote replication over a [`Transport`]: dedup-aware shipping on the
//! write side, verified parallel fetching on the restore side.
//!
//! Four entry points, all transport-agnostic:
//!
//! * [`ImageStore::replicate_to`] — push one stored image to a peer,
//!   restic/borg-style: batched `has_chunks` negotiation first, then only
//!   the chunks the peer is missing travel (as verbatim encoded chunk
//!   files — no decode/re-encode on the hot path), and the manifest is
//!   published strictly last.  Safe to re-run after any interruption: the
//!   negotiation re-skips everything that already landed, so a resumed
//!   replication ships exactly the remainder.
//! * [`ImageStore::replicate_from`] — the pull mirror: fetch a peer's
//!   manifest, fetch + verify the chunks missing locally, adopt the
//!   manifest under a fresh local id.
//! * [`RemoteChunkSink`] — a [`ChunkSink`] whose backing store is a peer:
//!   a live checkpoint streams *directly* to the remote node without ever
//!   touching a local store (the coordinator cannot tell the difference —
//!   same trait the local writer pipeline implements).  Content is
//!   chunked and hashed exactly like [`crate::writer::StreamWriter`]
//!   (same boundaries ⇒ same hashes ⇒ dedup against anything the peer
//!   already holds, local- or remote-written).
//! * [`RemoteChunkSource`] — a [`ChunkSource`] whose chunks arrive via
//!   `get_chunk`: the *same* parallel fetch/verify/splice pipeline as the
//!   local [`crate::reader::StreamReader`] (one code path —
//!   [`crate::reader::run_fetch_pipeline`]), so remote restores get the
//!   bounded-memory guarantee and full integrity checking for free, plus
//!   bounded retry on transient transport faults.
//!
//! Everything that crosses the wire is verified on arrival — the
//! receiving side never trusts the sender (chunk CRC, decode, content
//! hash; manifest CRC; chunks-before-manifest ordering) — so a crashed or
//! faulty replication can never leave a torn image visible.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crac_addrspace::{PageRun, PAGE_SIZE};
use crac_dmtcp::RegionDescriptor;
use crac_obs::{Counter, EventKind, ObsRegistry, Span};

use crate::chunk::RunChunker;
use crate::codec::{encode, Compression};
use crate::error::StoreError;
use crate::format::{ChunkEntry, ChunkFile, Manifest, RegionEntry};
use crate::hash::ContentHash;
use crate::pipeline::Gauge;
use crate::reader::{
    build_fetch_plan, declare_manifest, run_fetch_pipeline, verify_chunk_file_bytes, ChunkFetch,
    ReadStats, ReaderObs,
};
use crate::store::{ImageId, ImageStore};
use crate::stream::{ChunkSink, ChunkSource, RegionSink};
use crate::transport::{with_transient_retry_observed, RetryObs, Transport, HAS_CHUNKS_BATCH};

/// What one replication (or remote-streamed checkpoint) cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicateStats {
    /// *Distinct* chunks the image references (repeated content counts
    /// once, on every path — `chunks_shipped + chunks_deduped` always
    /// equals this).
    pub chunks_total: usize,
    /// Chunks actually shipped across the transport.
    pub chunks_shipped: usize,
    /// Chunks skipped because the peer already held their content — the
    /// dedup negotiation's savings.
    pub chunks_deduped: usize,
    /// Raw (decoded) bytes across the image's chunk *references*
    /// (repeats included: the image's logical chunk payload).
    pub raw_chunk_bytes: u64,
    /// Encoded chunk-file bytes that actually crossed the transport.
    pub bytes_shipped: u64,
    /// Manifest bytes that crossed the transport.
    pub manifest_bytes: u64,
    /// `has_chunks` negotiation batches sent.
    pub has_batches: usize,
    /// Transient transport failures absorbed by the bounded retry.
    pub transient_retries: usize,
    /// Wall-clock time of the whole operation.
    pub elapsed: Duration,
}

impl ReplicateStats {
    /// Fraction of the image's chunks the negotiation avoided shipping
    /// (1.0 = the peer already had everything).
    pub fn dedup_ratio(&self) -> f64 {
        if self.chunks_total == 0 {
            return 0.0;
        }
        self.chunks_deduped as f64 / self.chunks_total as f64
    }
}

/// A chunk staged in the sink, waiting for its `has_chunks` batch (its
/// manifest entry was already recorded at staging time).
struct StagedChunk {
    hash: ContentHash,
    raw: Vec<u8>,
}

/// Per-operation observability bundle for the ship side (sink and both
/// `replicate_*` paths): a fresh run registry whose counters are the
/// authoritative accounting — [`ReplicateStats`] is a view over its final
/// snapshot — plus the long-lived registry events and retry metrics go
/// to directly.
struct ShipObs {
    /// Per-run metric namespace; folded into `events` when the run ends.
    run: ObsRegistry,
    /// Long-lived registry (the store's, or one attached via
    /// [`RemoteChunkSink::with_obs`]).
    events: ObsRegistry,
    chunks_total: Counter,
    chunks_shipped: Counter,
    chunks_deduped: Counter,
    raw_chunk_bytes: Counter,
    bytes_shipped: Counter,
    has_batches: Counter,
}

impl ShipObs {
    fn new(events: ObsRegistry) -> Self {
        let run = ObsRegistry::new();
        Self {
            chunks_total: run.counter("crac_remote_chunks_total"),
            chunks_shipped: run.counter("crac_remote_chunks_shipped"),
            chunks_deduped: run.counter("crac_remote_chunks_deduped"),
            raw_chunk_bytes: run.counter("crac_remote_raw_chunk_bytes"),
            bytes_shipped: run.counter("crac_remote_bytes_shipped"),
            has_batches: run.counter("crac_remote_has_batches"),
            run,
            events,
        }
    }

    /// Retry observation for one transport operation.
    fn retry(&self, op: &'static str) -> RetryObs {
        RetryObs {
            reg: self.events.clone(),
            op,
        }
    }

    /// One negotiation batch settled: count it and surface non-empty
    /// ship/dedup outcomes as events (per batch, not per chunk, so a
    /// large image cannot flood the bounded ring).
    fn batch_settled(&self, shipped: usize, shipped_bytes: u64, deduped: usize) {
        let batch = self.has_batches.get();
        if shipped > 0 {
            self.events.event(
                EventKind::ChunkShipped,
                format!("batch={batch} chunks={shipped} bytes={shipped_bytes}"),
            );
        }
        if deduped > 0 {
            self.events.event(
                EventKind::ChunkDeduped,
                format!("batch={batch} chunks={deduped}"),
            );
        }
    }

    /// Ends the run: folds the run registry into the long-lived one and
    /// returns [`ReplicateStats`] as a view over the final snapshot.
    fn finish_stats(&self, retries: &AtomicUsize, elapsed: Duration) -> ReplicateStats {
        self.run
            .counter("crac_remote_transient_retries")
            .add(retries.load(Ordering::Relaxed) as u64);
        let snap = self.run.snapshot();
        self.events.absorb(&snap);
        ReplicateStats {
            chunks_total: snap.counter("crac_remote_chunks_total") as usize,
            chunks_shipped: snap.counter("crac_remote_chunks_shipped") as usize,
            chunks_deduped: snap.counter("crac_remote_chunks_deduped") as usize,
            raw_chunk_bytes: snap.counter("crac_remote_raw_chunk_bytes"),
            bytes_shipped: snap.counter("crac_remote_bytes_shipped"),
            manifest_bytes: snap.counter("crac_remote_manifest_bytes"),
            has_batches: snap.counter("crac_remote_has_batches") as usize,
            transient_retries: retries.load(Ordering::Relaxed),
            elapsed,
        }
    }
}

/// A `has_chunks` reply of the wrong length is a *protocol* defect in the
/// peer, not weather: it will fail identically on every retry, so it is
/// classified as permanent ([`StoreError::Protocol`]), never transient.
fn protocol_violation(asked: usize, answered: usize) -> StoreError {
    StoreError::protocol(format!(
        "peer answered {answered} has_chunks flags for {asked} hashes"
    ))
}

/// A [`ChunkSink`] that ships a streaming checkpoint straight to a remote
/// peer: chunks are hashed locally, negotiated in [`HAS_CHUNKS_BATCH`]
/// batches, and only missing content is encoded and shipped; the manifest
/// is published last, under an id the *peer* assigns.
///
/// Chunk boundaries replicate [`crate::writer::StreamWriter`]'s exactly,
/// so a checkpoint streamed remotely dedups against images the peer
/// received from any source.  Resumable by construction: a failed stream
/// publishes no manifest, and a retried checkpoint re-negotiates — chunks
/// that already landed are skipped, not re-sent.
pub struct RemoteChunkSink<'t> {
    transport: &'t dyn Transport,
    compression: Compression,
    /// Peer-side parent for the published manifest's lineage.
    parent: Option<ImageId>,
    taken_at_ns: u64,
    started: Instant,
    retries: AtomicUsize,

    // Chunker for the currently open region: the same shared
    // [`RunChunker`] the local writer uses, so content hashes line up.
    cur_region: Option<usize>,
    chunker: RunChunker,

    /// Chunks awaiting their negotiation batch (bounded:
    /// [`HAS_CHUNKS_BATCH`] chunks of ≤[`crate::chunk::CHUNK_PAGES`] pages
    /// each).
    staged: Vec<StagedChunk>,
    /// Every distinct hash this stream has seen: the `chunks_total`
    /// accounting, and the in-stream dedup — a hash is staged (and so
    /// negotiated/shipped) at most once per stream.
    seen: HashSet<ContentHash>,

    // Manifest accumulation.
    regions: Vec<RegionDescriptor>,
    chunks: Vec<Vec<ChunkEntry>>,
    payloads: Vec<(String, Vec<u8>)>,
    obs: ShipObs,
}

impl<'t> RemoteChunkSink<'t> {
    /// Opens a remote checkpoint stream over `transport`.  `parent` is the
    /// *peer-side* id recorded as the published manifest's lineage (or
    /// `None` for a fresh chain — chunk-level dedup applies either way).
    pub fn new(
        transport: &'t dyn Transport,
        compression: Compression,
        parent: Option<ImageId>,
    ) -> Self {
        Self::with_obs(transport, compression, parent, ObsRegistry::new())
    }

    /// Like [`RemoteChunkSink::new`], but recording into `obs`: shipping
    /// metrics are folded into it when the stream finishes, and
    /// ship/dedup/retry events land on it live, so a coordinator-held
    /// registry observes the remote checkpoint while it streams.
    pub fn with_obs(
        transport: &'t dyn Transport,
        compression: Compression,
        parent: Option<ImageId>,
        obs: ObsRegistry,
    ) -> Self {
        Self {
            transport,
            compression,
            parent,
            taken_at_ns: 0,
            // crac-lint: allow(raw-instant) — wall-clock anchor for ship stats, not a stage timing
            started: Instant::now(),
            retries: AtomicUsize::new(0),
            cur_region: None,
            chunker: RunChunker::default(),
            staged: Vec::new(),
            seen: HashSet::new(),
            regions: Vec::new(),
            chunks: Vec::new(),
            payloads: Vec::new(),
            obs: ShipObs::new(obs),
        }
    }

    /// Stamps the manifest's `taken_at_ns` (virtual checkpoint-completion
    /// time).  May be called at any point before [`RemoteChunkSink::finish`].
    pub fn set_taken_at(&mut self, ns: u64) {
        self.taken_at_ns = ns;
    }

    /// Records one packed chunk into the manifest and, if its content is
    /// new to this stream, stages it for negotiation.
    ///
    /// A chunk emitted outside any region is a producer protocol
    /// violation: it surfaces as [`StoreError::Protocol`] — an error on
    /// the wire, never a process abort (this sink sits behind network
    /// servers, where a misbehaving remote producer must not be able to
    /// take the serving process down).
    fn stage_chunk(&mut self, runs: Vec<PageRun>, raw: Vec<u8>) -> Result<(), StoreError> {
        let region_seq = self
            .cur_region
            .ok_or_else(|| StoreError::protocol("chunk emitted outside any open region"))?;
        let hash = ContentHash::of(&raw);
        self.obs.raw_chunk_bytes.add(raw.len() as u64);
        self.chunks[region_seq].push(ChunkEntry {
            runs,
            hash,
            raw_len: raw.len() as u64,
        });
        // An in-stream twin references content already staged (or shipped
        // or confirmed present): the manifest entry above is all it
        // costs.  `chunks_total` counts distinct content, matching
        // [`ImageStore::replicate_to`]'s accounting.
        if !self.seen.insert(hash) {
            return Ok(());
        }
        self.obs.chunks_total.inc();
        self.staged.push(StagedChunk { hash, raw });
        if self.staged.len() >= HAS_CHUNKS_BATCH {
            self.negotiate_and_ship()?;
        }
        Ok(())
    }

    /// One round of the dedup negotiation: ask the peer which staged
    /// hashes it is missing, ship exactly those, drop the rest.
    fn negotiate_and_ship(&mut self) -> Result<(), StoreError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let staged = std::mem::take(&mut self.staged);
        // Staged hashes are distinct by construction (`seen`), so the
        // whole batch is the query.
        let to_query: Vec<ContentHash> = staged.iter().map(|c| c.hash).collect();
        self.obs.has_batches.inc();
        let transport = self.transport;
        let retry = self.obs.retry("has_chunks");
        let present = with_transient_retry_observed(
            &self.retries,
            || false,
            Some(&retry),
            || transport.has_chunks(&to_query),
        )?;
        if present.len() != to_query.len() {
            return Err(protocol_violation(to_query.len(), present.len()));
        }
        let retry = self.obs.retry("put_chunk");
        let (mut shipped, mut shipped_bytes, mut deduped) = (0usize, 0u64, 0usize);
        for (chunk, is_present) in staged.into_iter().zip(present) {
            if is_present {
                // The peer already had this content.
                self.obs.chunks_deduped.inc();
                deduped += 1;
                continue;
            }
            let raw_len = chunk.raw.len() as u64;
            let (encoding, encoded) = encode(&chunk.raw, self.compression);
            drop(chunk.raw);
            let file_bytes = ChunkFile {
                encoding,
                raw_len,
                encoded,
            }
            .to_bytes();
            with_transient_retry_observed(
                &self.retries,
                || false,
                Some(&retry),
                || transport.put_chunk(chunk.hash, &file_bytes),
            )?;
            self.obs.chunks_shipped.inc();
            self.obs.bytes_shipped.add(file_bytes.len() as u64);
            shipped += 1;
            shipped_bytes += file_bytes.len() as u64;
        }
        self.obs.batch_settled(shipped, shipped_bytes, deduped);
        Ok(())
    }

    /// Completes the stream: ships the final batch, publishes the
    /// manifest on the peer (strictly after every chunk landed) and
    /// returns the peer-assigned image id plus the shipping stats.
    pub fn finish(mut self) -> Result<(ImageId, ReplicateStats), StoreError> {
        if self.cur_region.is_some() || !self.chunker.is_empty() {
            return Err(StoreError::protocol(
                "finish called with a region still open",
            ));
        }
        self.negotiate_and_ship()?;

        // Drop chunk entries fully superseded by later rounds' re-emitted
        // runs (mirrors the local writer's manifest trim; already-shipped
        // content stays on the peer — valid, unreferenced, sweepable).
        for chunks in self.chunks.iter_mut() {
            crate::chunk::trim_superseded(chunks, |c| c.runs.as_slice());
        }

        // Deterministic manifest regardless of producer payload order
        // (mirrors the local writer).
        self.payloads.sort_by(|(a, _), (b, _)| a.cmp(b));
        let manifest = Manifest {
            // The peer owns id allocation; 0 is the "unassigned" sentinel
            // it rewrites on adoption.
            image_id: ImageId(0),
            parent: None,
            taken_at_ns: self.taken_at_ns,
            compression: self.compression,
            regions: self
                .regions
                .iter()
                .zip(self.chunks.iter())
                .map(|(desc, chunks)| RegionEntry {
                    start: desc.start.as_u64(),
                    len: desc.len,
                    prot: desc.prot,
                    label: desc.label.clone(),
                    chunks: chunks.clone(),
                })
                .collect(),
            payloads: std::mem::take(&mut self.payloads),
        };
        let bytes = manifest.to_bytes();
        let parent = self.parent;
        let transport = self.transport;
        let retry = self.obs.retry("put_manifest");
        let id = with_transient_retry_observed(
            &self.retries,
            || false,
            Some(&retry),
            || transport.put_manifest(&bytes, parent),
        )?;
        self.obs
            .run
            .counter("crac_remote_manifest_bytes")
            .add(bytes.len() as u64);
        let stats = self.obs.finish_stats(&self.retries, self.started.elapsed());
        self.obs.events.event(
            EventKind::CheckpointFinished,
            format!(
                "remote image={id} chunks={} shipped={} deduped={} bytes_shipped={}",
                stats.chunks_total, stats.chunks_shipped, stats.chunks_deduped, stats.bytes_shipped
            ),
        );
        Ok((id, stats))
    }
}

impl ChunkSink for RemoteChunkSink<'_> {
    // Ordering violations are real errors, not debug assertions: this
    // sink is driven by remote producers (a checkpoint streaming in over
    // a socket), and a misbehaving producer must surface as an error on
    // the wire — release builds used to compile the checks out and then
    // panic (or corrupt the manifest) further down.
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError> {
        if self.cur_region.is_some() {
            return Err(StoreError::protocol(
                "begin_region while a region is already open",
            ));
        }
        // A start address seen before re-opens that region: a pre-copy
        // producer appending a later round's re-dirtied runs (mirrors the
        // local writer — later chunk entries win at restore).
        let existing = self.regions.iter().position(|r| r.start == desc.start);
        self.cur_region = Some(match existing {
            Some(idx) => idx,
            None => {
                self.regions.push(desc.clone());
                self.chunks.push(Vec::new());
                self.regions.len() - 1
            }
        });
        Ok(())
    }

    fn push_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), StoreError> {
        if self.cur_region.is_none() {
            return Err(StoreError::protocol("push_run outside any open region"));
        }
        if bytes.len() as u64 != run.count * PAGE_SIZE {
            return Err(StoreError::protocol(format!(
                "push_run payload is {} bytes but the run declares {} pages",
                bytes.len(),
                run.count
            )));
        }
        // The shared RunChunker guarantees writer-identical boundaries,
        // so content hashes — and therefore cross-node dedup — are
        // stable by construction.
        let mut chunker = std::mem::take(&mut self.chunker);
        let result = chunker.push(run, bytes, &mut |runs, raw| self.stage_chunk(runs, raw));
        self.chunker = chunker;
        result
    }

    fn end_region(&mut self) -> Result<(), StoreError> {
        if self.cur_region.is_none() {
            return Err(StoreError::protocol("end_region without begin_region"));
        }
        let mut chunker = std::mem::take(&mut self.chunker);
        let result = chunker.flush(&mut |runs, raw| self.stage_chunk(runs, raw));
        self.chunker = chunker;
        result?;
        self.cur_region = None;
        Ok(())
    }

    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.payloads.push((name.to_string(), data.to_vec()));
        Ok(())
    }
}

/// [`ChunkFetch`] over a transport: `get_chunk`, then the same
/// verification ladder the local fetch runs (CRC → decode → content
/// hash) — a faulty peer surfaces as corruption, never as wrong memory.
pub(crate) struct RemoteFetch<'t> {
    pub(crate) transport: &'t dyn Transport,
    pub(crate) label: PathBuf,
}

impl RemoteFetch<'_> {
    /// The shared get → verify ladder behind both fetch flavours.
    fn fetch_with(
        &self,
        get: impl FnOnce() -> Result<Vec<u8>, StoreError>,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        let stage = Span::enter(&obs.stage_fetch);
        let bytes = get()?;
        stage.finish();
        let wire_bytes = bytes.len() as u64;
        gauge.add(wire_bytes);
        let stage = Span::enter(&obs.stage_verify);
        let result = verify_chunk_file_bytes(&self.label, &bytes, hash, raw_len, gauge);
        stage.finish();
        drop(bytes);
        gauge.sub(wire_bytes);
        result.map(|raw| (raw, wire_bytes))
    }
}

impl ChunkFetch for RemoteFetch<'_> {
    fn fetch(
        &self,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        self.fetch_with(|| self.transport.get_chunk(hash), hash, raw_len, gauge, obs)
    }

    // A fault-path fetch jumps the transport's per-connection queueing
    // (the pooled TCP client reserves a connection for these); the
    // verification ladder is identical.
    fn fetch_priority(
        &self,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        self.fetch_with(
            || self.transport.get_chunk_priority(hash),
            hash,
            raw_len,
            gauge,
            obs,
        )
    }
}

/// A [`ChunkSource`] streaming a remote image: the restore-side mirror of
/// [`RemoteChunkSink`].  Construction fetches and CRC-verifies the
/// manifest only (descriptors, payloads and the timestamp are available
/// before any content moves); [`ChunkSource::stream_out`] then runs the
/// shared parallel fetch pipeline against the transport — with bounded
/// retry on transient faults — and splices verified chunks into the sink
/// as they arrive, under the same
/// [`crate::reader::restore_buffer_bound`] memory bound as a local
/// restore.
pub struct RemoteChunkSource<'t> {
    pub(crate) transport: &'t dyn Transport,
    pub(crate) manifest: Manifest,
    pub(crate) label: PathBuf,
    pub(crate) obs: ReaderObs,
    pub(crate) stats: ReadStats,
}

impl<'t> RemoteChunkSource<'t> {
    /// Fetches and verifies the manifest of remote image `id`.
    pub fn open(transport: &'t dyn Transport, id: ImageId) -> Result<Self, StoreError> {
        Self::open_with_obs(transport, id, ObsRegistry::new())
    }

    /// Like [`RemoteChunkSource::open`], but recording into `obs`: the
    /// restore's metrics are folded into it when the stream completes,
    /// and restore/retry events land on it live.
    pub fn open_with_obs(
        transport: &'t dyn Transport,
        id: ImageId,
        obs: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let obs = ReaderObs::new(obs);
        let retries = AtomicUsize::new(0);
        let retry = obs.retry("get_manifest");
        let bytes = with_transient_retry_observed(
            &retries,
            || false,
            Some(&retry),
            || transport.get_manifest(id),
        )?;
        let label = PathBuf::from(format!("remote:{id}"));
        let manifest =
            Manifest::from_bytes(&bytes).map_err(|what| StoreError::corrupt(&label, what))?;
        obs.run
            .counter("crac_reader_manifest_bytes")
            .add(bytes.len() as u64);
        obs.run
            .counter("crac_reader_transient_retries")
            .add(retries.load(Ordering::Relaxed) as u64);
        let stats = ReadStats {
            manifest_bytes: bytes.len() as u64,
            transient_retries: retries.load(Ordering::Relaxed),
            ..Default::default()
        };
        Ok(Self {
            transport,
            manifest,
            label,
            obs,
            stats,
        })
    }

    /// Virtual time the stored checkpoint was taken.
    pub fn taken_at_ns(&self) -> u64 {
        self.manifest.taken_at_ns
    }

    /// A named plugin payload (inline manifest data, available without
    /// fetching a single chunk).
    pub fn payload(&self, name: &str) -> Option<&[u8]> {
        self.manifest
            .payloads
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Number of saved regions the image describes.
    pub fn region_count(&self) -> usize {
        self.manifest.regions.len()
    }

    /// What the read has cost so far (complete once
    /// [`ChunkSource::stream_out`] returned).
    pub fn stats(&self) -> ReadStats {
        self.stats
    }
}

impl ChunkSource for RemoteChunkSource<'_> {
    fn stream_out(&mut self, sink: &mut dyn RegionSink) -> Result<(), StoreError> {
        // crac-lint: allow(raw-instant) — whole-restore wall time lands in ReadStats via finish_stats
        let start = Instant::now();
        self.obs.events.event(
            EventKind::RestoreBegun,
            format!(
                "source={} regions={}",
                self.label.display(),
                self.manifest.regions.len()
            ),
        );
        declare_manifest(&self.manifest, sink)?;
        let (plan, refs_total) = build_fetch_plan(&self.manifest, &self.label)?;
        self.obs
            .run
            .counter("crac_reader_chunks_cached")
            .add((refs_total - plan.len()) as u64);
        let fetcher = RemoteFetch {
            transport: self.transport,
            label: self.label.clone(),
        };
        let result = run_fetch_pipeline(&plan, sink, &fetcher, &self.obs);
        self.stats = self.obs.finish_stats(start.elapsed());
        self.obs.events.event(
            EventKind::RestoreFinished,
            format!(
                "source={} ok={} chunks_read={} bytes_read={}",
                self.label.display(),
                result.is_ok(),
                self.stats.chunks_read,
                self.stats.chunk_bytes_read
            ),
        );
        result
    }
}

impl ImageStore {
    /// Pushes image `id` to the peer behind `transport`, shipping only the
    /// chunks the peer is missing (batched `has_chunks` negotiation) as
    /// verbatim encoded chunk files, then publishing the manifest —
    /// strictly last, so a crashed replication leaves at most orphan
    /// chunks on the peer, never a visible torn image.  Returns the
    /// peer-assigned id of the replica.
    ///
    /// Resumable: re-running after any interruption re-negotiates and
    /// ships exactly the chunks that have not landed yet (a completed
    /// replica re-replicates for the cost of the negotiation alone —
    /// zero chunks travel).  Works on read-only stores: replication out
    /// of a store a live writer holds is a reader-side operation.
    pub fn replicate_to(
        &self,
        id: ImageId,
        transport: &dyn Transport,
    ) -> Result<(ImageId, ReplicateStats), StoreError> {
        // crac-lint: allow(raw-instant) — whole-replication wall time lands in ReplicateStats
        let started = Instant::now();
        // One read serves both the chunk walk and the final publication —
        // the manifest cannot vanish (or change) between the two.
        let manifest_path = self.image_path(id);
        let manifest_bytes = match std::fs::read(&manifest_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::UnknownImage(id))
            }
            Err(e) => return Err(StoreError::io(&manifest_path, e)),
        };
        let manifest = Manifest::from_bytes(&manifest_bytes)
            .map_err(|what| StoreError::corrupt(&manifest_path, what))?;
        let obs = ShipObs::new(self.obs());
        let retries = AtomicUsize::new(0);

        // Distinct hashes in first-reference order.
        let mut hashes: Vec<(ContentHash, u64)> = Vec::new();
        let mut seen: HashSet<ContentHash> = HashSet::new();
        for chunk in manifest.chunk_refs() {
            obs.raw_chunk_bytes.add(chunk.raw_len);
            if seen.insert(chunk.hash) {
                hashes.push((chunk.hash, chunk.raw_len));
            }
        }
        obs.chunks_total.add(hashes.len() as u64);

        for batch in hashes.chunks(HAS_CHUNKS_BATCH) {
            let query: Vec<ContentHash> = batch.iter().map(|(h, _)| *h).collect();
            obs.has_batches.inc();
            let retry = obs.retry("has_chunks");
            let present = with_transient_retry_observed(
                &retries,
                || false,
                Some(&retry),
                || transport.has_chunks(&query),
            )?;
            if present.len() != query.len() {
                return Err(protocol_violation(query.len(), present.len()));
            }
            let retry = obs.retry("put_chunk");
            let (mut shipped, mut shipped_bytes, mut deduped) = (0usize, 0u64, 0usize);
            for (&(hash, raw_len), is_present) in batch.iter().zip(present) {
                if is_present {
                    obs.chunks_deduped.inc();
                    deduped += 1;
                    continue;
                }
                let path = self.chunk_path(hash);
                let file_bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
                // Never ship bytes we would not accept ourselves: verify
                // the local chunk before it crosses the wire, so a locally
                // corrupted store fails the replication loudly instead of
                // poisoning the peer.
                let gauge = Gauge::default();
                verify_chunk_file_bytes(&path, &file_bytes, hash, raw_len, &gauge)?;
                with_transient_retry_observed(
                    &retries,
                    || false,
                    Some(&retry),
                    || transport.put_chunk(hash, &file_bytes),
                )?;
                obs.chunks_shipped.inc();
                obs.bytes_shipped.add(file_bytes.len() as u64);
                shipped += 1;
                shipped_bytes += file_bytes.len() as u64;
            }
            obs.batch_settled(shipped, shipped_bytes, deduped);
        }

        // Chunks all landed: publish the manifest (its verbatim file
        // bytes — the peer re-verifies the CRC and rewrites the identity).
        let retry = obs.retry("put_manifest");
        let remote_id = with_transient_retry_observed(
            &retries,
            || false,
            Some(&retry),
            || transport.put_manifest(&manifest_bytes, None),
        )?;
        obs.run
            .counter("crac_remote_manifest_bytes")
            .add(manifest_bytes.len() as u64);
        let stats = obs.finish_stats(&retries, started.elapsed());
        Ok((remote_id, stats))
    }

    /// Pulls remote image `remote_id` from the peer behind `transport`
    /// into this store: fetches the manifest, fetches and fully verifies
    /// the chunks missing locally (each made visible only via atomic
    /// rename), then adopts the manifest under a fresh local id — the
    /// pull mirror of [`ImageStore::replicate_to`], equally resumable.
    pub fn replicate_from(
        &self,
        transport: &dyn Transport,
        remote_id: ImageId,
    ) -> Result<(ImageId, ReplicateStats), StoreError> {
        self.check_writable()?;
        // Hold the writer gate for the *whole* pull, exactly like a local
        // streaming write: a concurrent deletion sweep must not reclaim
        // the just-ingested (still manifest-less) chunks mid-replication
        // and fail the final manifest adoption spuriously.
        let _writing = self.writer_guard();
        // crac-lint: allow(raw-instant) — whole-pull wall time lands in ReplicateStats
        let started = Instant::now();
        let obs = ShipObs::new(self.obs());
        let retries = AtomicUsize::new(0);
        let retry = obs.retry("get_manifest");
        let manifest_bytes = with_transient_retry_observed(
            &retries,
            || false,
            Some(&retry),
            || transport.get_manifest(remote_id),
        )?;
        let label = PathBuf::from(format!("remote:{remote_id}"));
        let manifest = Manifest::from_bytes(&manifest_bytes)
            .map_err(|what| StoreError::corrupt(&label, what))?;

        let retry = obs.retry("get_chunk");
        let mut seen: HashSet<ContentHash> = HashSet::new();
        for chunk in manifest.chunk_refs() {
            obs.raw_chunk_bytes.add(chunk.raw_len);
            if !seen.insert(chunk.hash) {
                continue;
            }
            obs.chunks_total.inc();
            if self.contains_chunk(chunk.hash) {
                obs.chunks_deduped.inc();
                continue;
            }
            let file_bytes = with_transient_retry_observed(
                &retries,
                || false,
                Some(&retry),
                || transport.get_chunk(chunk.hash),
            )?;
            // The locked ingest re-verifies (CRC, decode, content hash)
            // before the atomic rename publishes the chunk; we already
            // hold the writer gate, so the `_locked` variant avoids a
            // recursive read-lock.
            self.ingest_chunk_file_locked(chunk.hash, &file_bytes)?;
            obs.chunks_shipped.inc();
            obs.bytes_shipped.add(file_bytes.len() as u64);
        }

        let id = self.adopt_manifest_locked(&manifest_bytes, None)?;
        obs.run
            .counter("crac_remote_manifest_bytes")
            .add(manifest_bytes.len() as u64);
        let stats = obs.finish_stats(&retries, started.elapsed());
        obs.events.event(
            EventKind::ChunkShipped,
            format!(
                "pull remote={remote_id} local={id} chunks={} pulled={} deduped={} bytes={}",
                stats.chunks_total, stats.chunks_shipped, stats.chunks_deduped, stats.bytes_shipped
            ),
        );
        Ok((id, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::transport::LoopbackTransport;
    use crac_addrspace::Addr;

    fn descriptor() -> RegionDescriptor {
        RegionDescriptor {
            start: Addr(0x4000_0000_0000),
            len: 4 * PAGE_SIZE,
            prot: crac_addrspace::Prot::RW,
            label: "misuse".into(),
        }
    }

    /// Regression (PR 5 bug): sink misuse used to `expect`-panic (or pass
    /// silently in release, where the `debug_assert!` ordering checks
    /// compiled out).  Every violation must now surface as a
    /// [`StoreError::Protocol`] error — never abort the process.
    #[test]
    fn sink_misuse_is_an_error_not_a_panic() {
        let dir = TempDir::new("sink-misuse");
        let store = ImageStore::open(dir.path()).unwrap();
        let transport = LoopbackTransport::new(&store);
        let page = vec![0u8; PAGE_SIZE as usize];

        // push_run before any begin_region.
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        let err = sink
            .push_run(PageRun { first: 0, count: 1 }, &page)
            .unwrap_err();
        assert!(matches!(err, StoreError::Protocol { .. }), "got: {err}");
        assert!(!err.is_transient() && !err.is_corruption());

        // begin_region while one is already open.
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        sink.begin_region(&descriptor()).unwrap();
        let err = sink.begin_region(&descriptor()).unwrap_err();
        assert!(matches!(err, StoreError::Protocol { .. }), "got: {err}");

        // end_region without begin.
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        let err = sink.end_region().unwrap_err();
        assert!(matches!(err, StoreError::Protocol { .. }), "got: {err}");

        // A run whose payload disagrees with its declared page count.
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        sink.begin_region(&descriptor()).unwrap();
        let err = sink
            .push_run(PageRun { first: 0, count: 2 }, &page)
            .unwrap_err();
        assert!(matches!(err, StoreError::Protocol { .. }), "got: {err}");

        // finish with a region still open.
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        sink.begin_region(&descriptor()).unwrap();
        sink.push_run(PageRun { first: 0, count: 1 }, &page)
            .unwrap();
        let err = sink.finish().unwrap_err();
        assert!(matches!(err, StoreError::Protocol { .. }), "got: {err}");

        // Nothing landed on the peer from any of the broken streams.
        assert_eq!(store.stats().unwrap().images, 0);
        assert_eq!(transport.stats().manifests_put, 0);
    }

    /// A well-formed stream still publishes after the misuse checks.
    #[test]
    fn well_formed_stream_still_finishes() {
        let dir = TempDir::new("sink-ok");
        let store = ImageStore::open(dir.path()).unwrap();
        let transport = LoopbackTransport::new(&store);
        let mut sink = RemoteChunkSink::new(&transport, Compression::None, None);
        sink.begin_region(&descriptor()).unwrap();
        let mut page = vec![7u8; PAGE_SIZE as usize];
        page[0] = 1;
        sink.push_run(PageRun { first: 0, count: 1 }, &page)
            .unwrap();
        sink.end_region().unwrap();
        sink.push_payload("crac", b"payload").unwrap();
        let (id, stats) = sink.finish().unwrap();
        assert_eq!(stats.chunks_shipped, 1);
        assert!(store.contains_image(id));
    }
}
