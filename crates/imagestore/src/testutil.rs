//! Test/bench support: a self-cleaning temporary directory.
//!
//! The environment has no `tempfile` crate, so tests and benches share this
//! minimal equivalent.  Not part of the store's public API surface proper
//! (`doc(hidden)`), but exported so downstream crates' tests can use it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory; `tag` helps identify leftovers if cleanup
    /// is skipped by a crash.
    pub fn new(tag: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "crac-{tag}-{}-{}-{nanos}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed),
        ));
        // crac-lint: allow(no-unwrap) — test-support helper; aborting on tempdir failure is correct
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
