//! Lazy first-touch restore: resume in O(working set), fault pages in
//! from the store or the wire.
//!
//! The eager restore pipeline ([`crate::reader`]) splices every page of
//! the image before the process resumes, so restart latency is O(image).
//! This module inverts it into a demand-paging path (the CRUM trick):
//!
//! ```text
//!            declare (metadata only)            resume ──► app runs
//! manifest ──► map regions, mark pages absent ──►│
//!                                                │ first touch of an
//!                                                │ absent page
//!                                                ▼
//!                        ┌──────── fault: priority queue ────────┐
//!   background prefetch  │  faulted chunks preempt the sweep;    │
//!   sweep (all workers) ─┤  chunk-level dedup — a chunk is       ├─► verify ─► install
//!                        │  fetched once, fault or prefetch      │
//!                        └──────────────────────────────────────-┘
//! ```
//!
//! A [`LazyRestoreSession`] is the long-lived owner of the fetch plan the
//! eager path would drain in one shot ([`crate::reader::build_fetch_plan`]
//! builds it for both).  Its workers run a **two-priority queue**: chunks
//! a page fault is blocked on jump ahead of a background prefetch sweep
//! that fills in the rest of the plan — the restore completes even if the
//! application never touches everything.  A chunk is fetched **once**, no
//! matter how many faults and the prefetcher race for it (states
//! `NotStarted → Queued/Fetching → Done`; late arrivals wait on the
//! in-flight fetch).  A verified chunk installs *all* the pages it covers
//! ([`crac_addrspace::AddressSpace::install_resident`]), so one fault
//! typically makes a whole chunk's worth of neighbours resident.
//!
//! The session is source-agnostic exactly like the eager pipeline: the
//! same [`ChunkFetch`] seam serves the local store and a remote
//! [`Transport`], and the fault path uses its `fetch_priority` flavour so
//! a pooled TCP transport can route it past the prefetcher's saturated
//! connections.
//!
//! **Failure semantics** mirror the eager pipeline: transient fetch
//! failures retry with capped exponential backoff
//! ([`crate::transport::MAX_TRANSIENT_RETRIES`]); the first permanent
//! failure is latched, workers shut down, and every access blocked in a
//! fault surfaces [`MemError::NotResident`] — the process's restore
//! source is gone and [`LazyRestoreSession::drain`] reports why.

use crac_sync::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crac_addrspace::{page_runs, Addr, MemError, PageFaultHandler, SharedSpace, PAGE_SIZE};
use crac_dmtcp::{Coordinator, LazyDeclaration, RegionDescriptor, RestartStats};
use crac_obs::{Buckets, EventKind, Histogram, ObsRegistry};

use crate::error::StoreError;
use crate::format::Manifest;
use crate::pipeline::Gauge;
use crate::reader::{
    build_fetch_plan, effective_read_threads, ChunkFetch, FetchPlan, LocalFetch, ReadStats,
    ReaderObs,
};
use crate::remote::{RemoteChunkSource, RemoteFetch};
use crate::store::{ImageId, ImageStore};
use crate::transport::{with_transient_retry_observed, Transport};

/// Background-prefetch progress events are emitted every this many
/// swept chunks (plus one final event), so a large image cannot flood
/// the bounded event ring with per-chunk noise.
const PREFETCH_EVENT_EVERY: u64 = 16;

/// What one lazy restore did, beyond the [`ReadStats`] I/O accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyRestoreStats {
    /// Declare→resume latency in microseconds: the time from entering
    /// [`LazyRestoreSession::attach`] to the process being resumable —
    /// the headline number lazy restore exists to shrink.
    pub resume_us: u64,
    /// Chunks that had been fetched when the process resumed.  `0` is the
    /// lazy guarantee: resume happened before any page bytes moved.
    pub chunks_at_resume: u64,
    /// First-touch faults serviced (each blocked an application access).
    pub faults_served: u64,
    /// Chunks fetched through the priority (fault) path.
    pub chunks_faulted: u64,
    /// Chunks fetched by the background prefetch sweep.
    pub chunks_prefetched: u64,
    /// Pages made resident by chunk installation (pages of regions the
    /// application unmapped mid-restore are skipped, not counted).
    pub pages_installed: u64,
    /// Distinct chunks in the fetch plan (faulted + prefetched when the
    /// drain completed).
    pub chunks_total: usize,
}

/// Fetch lifecycle of one plan entry.  The single-owner transitions are
/// what make chunk-level dedup hold: only `NotStarted → Queued` (a fault)
/// and `NotStarted`/`Queued` `→ Fetching` (a worker claiming it) exist,
/// so a chunk is fetched at most once no matter how the fault path and
/// the prefetch sweep race.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Not requested yet; the prefetch sweep will reach it.
    NotStarted,
    /// A fault put it on the priority queue; no worker holds it yet.
    Queued,
    /// A worker is fetching it; faulters wait for the broadcast.
    Fetching,
    /// Verified and installed; waiters proceed.
    Done,
}

/// The mutable heart of the session, guarded by one mutex + condvar.
struct LazyQueue {
    state: Vec<ChunkState>,
    /// Fault-requested chunk indices, FIFO.  Workers drain this before
    /// touching the sweep.
    priority: VecDeque<usize>,
    /// Next candidate of the background sweep (monotone cursor over the
    /// plan; skips chunks the fault path already claimed).
    sweep: usize,
    /// Chunks in `Done`.
    done: usize,
    /// Latched on first error (or abort): workers exit, faulters fail.
    shutdown: bool,
}

/// Everything the fault handler, the workers and the session share.
/// Fully owned (`'static`), so the handler can live inside the address
/// space while the session's borrows stay outside.
struct LazyShared {
    /// Set at [`LazyRestoreSession::attach`] — the space does not exist
    /// before the coordinator maps it.
    space: OnceLock<SharedSpace>,
    /// Region start addresses in manifest order (install targets).
    region_starts: Vec<u64>,
    /// `(start, end, region index)` sorted by start: fault-address
    /// resolution.
    lookup: Vec<(u64, u64, usize)>,
    plan: Vec<FetchPlan>,
    /// `(region index, region-relative page) → plan index`: which chunk
    /// a faulting page is blocked on.
    owner: HashMap<(usize, u64), usize>,
    queue: Mutex<LazyQueue>,
    cv: Condvar,
    error: Mutex<Option<StoreError>>,
    gauge: Gauge,
    obs: ReaderObs,
    fault_us: Histogram,
    retries: AtomicUsize,
    faults_served: AtomicU64,
    chunks_faulted: AtomicU64,
    chunks_prefetched: AtomicU64,
    pages_installed: AtomicU64,
}

impl LazyShared {
    fn q(&self) -> MutexGuard<'_, LazyQueue> {
        self.queue.lock()
    }

    /// The plan entry owning the page containing `addr`, if any.
    fn resolve(&self, addr: Addr) -> Option<usize> {
        let a = addr.as_u64();
        let i = self.lookup.partition_point(|&(start, _, _)| start <= a);
        let &(start, end, region) = self.lookup.get(i.checked_sub(1)?)?;
        if a >= end {
            return None;
        }
        self.owner.get(&(region, (a - start) / PAGE_SIZE)).copied()
    }

    /// Blocks until chunk `idx` is `Done`, queueing it at priority if
    /// nobody has requested it yet.  `Err` means the session shut down
    /// (error latched or aborted) before the chunk materialised.
    fn wait_for_chunk(&self, idx: usize) -> Result<(), ()> {
        let mut q = self.q();
        loop {
            match q.state[idx] {
                ChunkState::Done => return Ok(()),
                ChunkState::NotStarted => {
                    q.state[idx] = ChunkState::Queued;
                    q.priority.push_back(idx);
                    self.chunks_faulted.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                }
                ChunkState::Queued | ChunkState::Fetching => {}
            }
            if q.shutdown {
                return Err(());
            }
            q = self.cv.wait(q);
        }
    }

    /// One fetch worker: drain the priority queue, else advance the
    /// background sweep, else wait; exit when the plan is done or the
    /// session shut down.
    fn worker(&self, fetcher: &dyn ChunkFetch) {
        let retry_obs = self.obs.retry("fetch_chunk");
        loop {
            let (idx, prio) = {
                let mut q = self.q();
                loop {
                    if q.shutdown {
                        return;
                    }
                    if let Some(i) = q.priority.pop_front() {
                        q.state[i] = ChunkState::Fetching;
                        break (i, true);
                    }
                    while q.sweep < q.state.len() && q.state[q.sweep] != ChunkState::NotStarted {
                        q.sweep += 1;
                    }
                    if q.sweep < q.state.len() {
                        let i = q.sweep;
                        q.state[i] = ChunkState::Fetching;
                        q.sweep += 1;
                        break (i, false);
                    }
                    if q.done == q.state.len() {
                        return;
                    }
                    q = self.cv.wait(q);
                }
            };
            let entry = &self.plan[idx];
            // Same bounded retry + backoff as the eager pipeline; the
            // shutdown latch doubles as the cancellation probe so one
            // failure stops every other worker's retry loop promptly.
            let fetched = with_transient_retry_observed(
                &self.retries,
                || self.q().shutdown,
                Some(&retry_obs),
                || {
                    if prio {
                        fetcher.fetch_priority(entry.hash, entry.raw_len, &self.gauge, &self.obs)
                    } else {
                        fetcher.fetch(entry.hash, entry.raw_len, &self.gauge, &self.obs)
                    }
                },
            );
            let (raw, wire_bytes) = match fetched {
                Ok(ok) => ok,
                Err(e) => return self.fail(e),
            };
            let len = raw.len() as u64;
            let installed = self.install(entry, &raw);
            drop(raw);
            self.gauge.sub(len);
            let pages = match installed {
                Ok(p) => p,
                Err(e) => return self.fail(e),
            };
            self.pages_installed.fetch_add(pages, Ordering::Relaxed);
            self.obs.run.gauge("crac_lazy_pages_resident").add(pages);
            self.obs.chunks_read.inc();
            self.obs.chunk_bytes_read.add(wire_bytes);
            let all_done = {
                let mut q = self.q();
                q.state[idx] = ChunkState::Done;
                q.done += 1;
                q.done == q.state.len()
            };
            if !prio {
                let swept = self.chunks_prefetched.fetch_add(1, Ordering::Relaxed) + 1;
                self.obs.run.gauge("crac_lazy_chunks_prefetched").add(1);
                if swept.is_multiple_of(PREFETCH_EVENT_EVERY) || all_done {
                    self.obs.events.event(
                        EventKind::PrefetchRound,
                        format!(
                            "prefetched={swept} faulted={} done={} total={} pages_resident={}",
                            self.chunks_faulted.load(Ordering::Relaxed),
                            self.q().done,
                            self.plan.len(),
                            self.pages_installed.load(Ordering::Relaxed),
                        ),
                    );
                }
            }
            self.cv.notify_all();
        }
    }

    /// Splices one verified chunk: every page it covers, in every target
    /// region, becomes resident (pages of since-unmapped regions are
    /// skipped — their content is dead).  Returns pages installed.
    fn install(&self, entry: &FetchPlan, raw: &[u8]) -> Result<u64, StoreError> {
        let space = self
            .space
            .get()
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            .expect("workers spawn only after attach set the space");
        let mut pages = 0u64;
        for (region, pieces) in &entry.targets {
            let start = self.region_starts[*region];
            for (run, offset) in pieces {
                let addr = Addr(start + run.first * PAGE_SIZE);
                let len = (run.count * PAGE_SIZE) as usize;
                pages += space
                    .with_mut(|s| s.install_resident(addr, &raw[*offset..*offset + len]))
                    .map_err(|e| {
                        StoreError::protocol(format!("lazy install failed at {addr}: {e}"))
                    })?;
            }
        }
        Ok(pages)
    }

    /// Latches the first error and shuts the session down: workers exit,
    /// blocked faulters wake and fail with [`MemError::NotResident`].
    fn fail(&self, e: StoreError) {
        {
            let mut err = self.error.lock();
            if err.is_none() {
                *err = Some(e);
            }
        }
        self.q().shutdown = true;
        self.cv.notify_all();
    }
}

/// The [`PageFaultHandler`] a lazy restore installs: resolves the
/// faulting address to its winning chunk, queues that chunk at priority,
/// and blocks until its pages are resident.
struct LazyFaultHandler {
    shared: Arc<LazyShared>,
}

impl PageFaultHandler for LazyFaultHandler {
    fn fault(&self, addr: Addr) -> Result<(), MemError> {
        // crac-lint: allow(raw-instant) — failed faults must not pollute the latency histogram, so the span is manual
        let t0 = Instant::now();
        // A page with no plan owner should never be absent (only planned
        // pages are declared absent); surfacing NotResident keeps a
        // bookkeeping bug loud instead of spinning the retry loop.
        let Some(idx) = self.shared.resolve(addr) else {
            return Err(MemError::NotResident(addr));
        };
        if self.shared.wait_for_chunk(idx).is_err() {
            return Err(MemError::NotResident(addr));
        }
        let us = t0.elapsed().as_micros() as u64;
        self.shared.fault_us.observe(us);
        self.shared.faults_served.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.events.event(
            EventKind::FaultServed,
            format!(
                "addr={addr} chunk={} service_us={us}",
                self.shared.plan[idx].hash
            ),
        );
        Ok(())
    }
}

/// A long-lived demand-paging restore session: the lazy counterpart of
/// driving a [`crate::stream::ChunkSource`] to completion.
///
/// Lifecycle:
///
/// 1. [`open_local`](LazyRestoreSession::open_local) /
///    [`open_remote`](LazyRestoreSession::open_remote) — manifest only,
///    no chunk is touched; build the fetch plan and the absent-page
///    declaration.
/// 2. [`attach`](LazyRestoreSession::attach) — the coordinator maps the
///    skeleton, declares pages absent, installs the fault handler: the
///    process is resumable *now*.
/// 3. [`spawn_workers`](LazyRestoreSession::spawn_workers) — start the
///    fault-service/prefetch workers on a caller-owned scope.
/// 4. The application runs; first touches fault chunks in at priority
///    while the sweep prefetches the rest.
/// 5. [`drain`](LazyRestoreSession::drain) — block until the whole plan
///    is resident (or the latched error surfaces);
///    [`finish`](LazyRestoreSession::finish) yields the stats.
pub struct LazyRestoreSession<'a> {
    shared: Arc<LazyShared>,
    fetcher: Box<dyn ChunkFetch + 'a>,
    threads: usize,
    declaration: LazyDeclaration,
    taken_at_ns: u64,
    started: Instant,
    resume_latency: Histogram,
    resume_us: AtomicU64,
    chunks_at_resume: AtomicU64,
}

impl<'a> LazyRestoreSession<'a> {
    /// Opens a lazy session over a locally stored image.  Loads and
    /// CRC-verifies the manifest only; region descriptors, payloads and
    /// the timestamp are available immediately, no chunk is read.
    pub fn open_local(
        store: &'a ImageStore,
        id: ImageId,
        obs: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let manifest = store.load_manifest(id)?;
        let robs = ReaderObs::new(obs);
        robs.run
            .counter("crac_reader_manifest_bytes")
            .add(store.manifest_size(id)?);
        let label = store.image_path(id);
        Self::build(manifest, label, robs, Box::new(LocalFetch { store }))
    }

    /// Opens a lazy session over a remote image behind `transport` —
    /// the same session, fed by `get_chunk`/`get_chunk_priority` instead
    /// of the chunk directory.  Fetches and verifies the manifest only.
    pub fn open_remote(
        transport: &'a dyn Transport,
        id: ImageId,
        obs: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let RemoteChunkSource {
            transport,
            manifest,
            label,
            obs,
            ..
        } = RemoteChunkSource::open_with_obs(transport, id, obs)?;
        let fetcher = Box::new(RemoteFetch {
            transport,
            label: label.clone(),
        });
        Self::build(manifest, label, obs, fetcher)
    }

    fn build(
        manifest: Manifest,
        label: PathBuf,
        obs: ReaderObs,
        fetcher: Box<dyn ChunkFetch + 'a>,
    ) -> Result<Self, StoreError> {
        let (plan, refs_total) = build_fetch_plan(&manifest, &label)?;
        obs.run
            .counter("crac_reader_chunks_cached")
            .add((refs_total - plan.len()) as u64);

        // Region skeleton, plus which pages of each region have image
        // content coming.  Pages with no winner (never dirtied) are left
        // resident: the sparse page store restores them as zeros for free.
        let mut regions = Vec::with_capacity(manifest.regions.len());
        let mut region_starts = Vec::with_capacity(manifest.regions.len());
        for r in &manifest.regions {
            regions.push(RegionDescriptor {
                start: Addr(r.start),
                len: r.len,
                prot: r.prot,
                label: r.label.clone(),
            });
            region_starts.push(r.start);
        }
        let mut owner: HashMap<(usize, u64), usize> = HashMap::new();
        let mut absent_pages: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); regions.len()];
        for (idx, entry) in plan.iter().enumerate() {
            for (region, pieces) in &entry.targets {
                for (run, _) in pieces {
                    for page in run.pages() {
                        owner.insert((*region, page), idx);
                        absent_pages[*region].insert(page);
                    }
                }
            }
        }
        let absent = absent_pages
            .iter()
            .enumerate()
            .filter(|(_, pages)| !pages.is_empty())
            .map(|(i, pages)| (i, page_runs(pages.iter().copied())))
            .collect();
        let declaration = LazyDeclaration {
            regions,
            absent,
            payloads: manifest.payloads.clone(),
        };

        let mut lookup: Vec<(u64, u64, usize)> = manifest
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.start, r.start + r.len, i))
            .collect();
        lookup.sort_unstable_by_key(|&(start, _, _)| start);

        let threads = effective_read_threads(plan.len());
        obs.run.gauge("crac_reader_threads").set(threads as u64);
        let fault_us = obs
            .events
            .histogram("crac_fault_service_us", Buckets::LATENCY_US);
        let resume_latency = obs
            .events
            .histogram("crac_restore_resume_latency_us", Buckets::LATENCY_US);
        let state = vec![ChunkState::NotStarted; plan.len()];
        Ok(Self {
            shared: Arc::new(LazyShared {
                space: OnceLock::new(),
                region_starts,
                lookup,
                plan,
                owner,
                queue: Mutex::new(
                    "imagestore.lazy.queue",
                    LazyQueue {
                        state,
                        priority: VecDeque::new(),
                        sweep: 0,
                        done: 0,
                        shutdown: false,
                    },
                ),
                cv: Condvar::new(),
                error: Mutex::new("imagestore.lazy.error", None),
                gauge: Gauge::default(),
                obs,
                fault_us,
                retries: AtomicUsize::new(0),
                faults_served: AtomicU64::new(0),
                chunks_faulted: AtomicU64::new(0),
                chunks_prefetched: AtomicU64::new(0),
                pages_installed: AtomicU64::new(0),
            }),
            fetcher,
            threads,
            declaration,
            taken_at_ns: manifest.taken_at_ns,
            // crac-lint: allow(raw-instant) — wall-clock anchor for session stats, not a stage timing
            started: Instant::now(),
            resume_latency,
            resume_us: AtomicU64::new(0),
            chunks_at_resume: AtomicU64::new(0),
        })
    }

    /// Virtual time the stored checkpoint was taken.
    pub fn taken_at_ns(&self) -> u64 {
        self.taken_at_ns
    }

    /// A named plugin payload (manifest-inline, available before resume).
    pub fn payload(&self, name: &str) -> Option<&[u8]> {
        self.declaration
            .payloads
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Distinct chunks the fetch plan holds.
    pub fn chunks_total(&self) -> usize {
        self.shared.plan.len()
    }

    /// Maps the checkpoint's skeleton into `space`, declares the planned
    /// pages absent, installs the fault handler and fires the plugins'
    /// restart hooks (through [`Coordinator::restart_lazy`]) — metadata
    /// only, **no page bytes move**.  The process is resumable the moment
    /// this returns; call [`spawn_workers`](Self::spawn_workers) next so
    /// faults (and the prefetch sweep) get serviced.
    pub fn attach(&self, coordinator: &Coordinator, space: &SharedSpace) -> RestartStats {
        // crac-lint: allow(raw-instant) — resume latency lands in RestartStats, not an obs histogram
        let t0 = Instant::now();
        self.shared
            .space
            .set(space.clone())
            // crac-lint: allow(no-unwrap) — attach-twice is a caller contract violation; failing loudly is the design
            .unwrap_or_else(|_| panic!("attach called twice"));
        let handler: Arc<dyn PageFaultHandler> = Arc::new(LazyFaultHandler {
            shared: Arc::clone(&self.shared),
        });
        let stats = coordinator.restart_lazy(space, &self.declaration, handler);
        let us = t0.elapsed().as_micros() as u64;
        self.resume_us.store(us, Ordering::Relaxed);
        self.resume_latency.observe(us);
        self.chunks_at_resume
            .store(self.shared.obs.chunks_read.get(), Ordering::Relaxed);
        self.shared.obs.events.event(
            EventKind::RestoreBegun,
            format!(
                "lazy regions={} chunks={} resume_us={us}",
                self.declaration.regions.len(),
                self.shared.plan.len()
            ),
        );
        stats
    }

    /// Spawns the fetch workers onto a caller-owned thread scope.  Must
    /// run after [`attach`](Self::attach) (workers install into the
    /// attached space) and before the application touches absent pages
    /// from threads outside the scope.
    pub fn spawn_workers<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
    ) {
        for _ in 0..self.threads {
            let shared: &LazyShared = &self.shared;
            let fetcher: &dyn ChunkFetch = &*self.fetcher;
            scope.spawn(move || shared.worker(fetcher));
        }
    }

    /// Blocks until every chunk of the plan is resident — the lazy
    /// restore is then complete whether or not the application touched
    /// everything — or until a latched failure surfaces.
    pub fn drain(&self) -> Result<(), StoreError> {
        let mut q = self.shared.q();
        while !q.shutdown && q.done < q.state.len() {
            q = self.shared.cv.wait(q);
        }
        drop(q);
        match self.shared.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Shuts the session down without waiting: workers exit, blocked
    /// faulters fail.  Used when the surrounding restart aborts.
    pub fn abort(&self) {
        self.shared.q().shutdown = true;
        self.shared.cv.notify_all();
    }

    /// Ends the session, folding its metrics into the long-lived
    /// registry; returns the I/O accounting plus the lazy-specific stats.
    pub fn finish(self) -> (ReadStats, LazyRestoreStats) {
        self.shared
            .obs
            .run
            .counter("crac_reader_transient_retries")
            .add(self.shared.retries.load(Ordering::Relaxed) as u64);
        let mut stats = self.shared.obs.finish_stats(self.started.elapsed());
        stats.resume_us = self.resume_us.load(Ordering::Relaxed);
        let lazy = LazyRestoreStats {
            resume_us: stats.resume_us,
            chunks_at_resume: self.chunks_at_resume.load(Ordering::Relaxed),
            faults_served: self.shared.faults_served.load(Ordering::Relaxed),
            chunks_faulted: self.shared.chunks_faulted.load(Ordering::Relaxed),
            chunks_prefetched: self.shared.chunks_prefetched.load(Ordering::Relaxed),
            pages_installed: self.shared.pages_installed.load(Ordering::Relaxed),
            chunks_total: self.shared.plan.len(),
        };
        self.shared.obs.events.event(
            EventKind::RestoreFinished,
            format!(
                "lazy ok={} chunks_faulted={} chunks_prefetched={} faults_served={} resume_us={}",
                lazy.chunks_faulted + lazy.chunks_prefetched >= lazy.chunks_total as u64,
                lazy.chunks_faulted,
                lazy.chunks_prefetched,
                lazy.faults_served,
                lazy.resume_us
            ),
        );
        (stats, lazy)
    }
}
