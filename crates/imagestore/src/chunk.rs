//! Splitting a [`SavedRegion`]'s dirty pages into content-addressed chunks.
//!
//! Chunk boundaries follow the region's dirty-page *runs* (maximal spans of
//! consecutive dirty pages, via `crac_addrspace::page_runs`), split to at
//! most [`CHUNK_PAGES`] pages each.  Aligning chunks to runs keeps them
//! stable across checkpoints: a page written between two checkpoints only
//! perturbs the chunks of its own run, so every other chunk re-hashes to the
//! same content hash and is deduplicated away by the incremental writer.

use crac_addrspace::{PageRun, PAGE_SIZE};
use crac_dmtcp::SavedRegion;

use crate::error::StoreError;
use crate::hash::ContentHash;

/// Maximum pages per chunk (16 × 4 KiB = 64 KiB raw), balancing dedup
/// granularity against per-chunk metadata and file-count overhead.
pub const CHUNK_PAGES: u64 = 16;

/// Incremental run-to-chunk packer: the *one* place the chunk-boundary
/// rules live for streaming sinks.
///
/// Every `ChunkSink` that accepts page runs — the local
/// [`crate::writer::StreamWriter`], the remote
/// [`crate::remote::RemoteChunkSink`] — must split identically, because
/// identical boundaries are what make content hashes (and therefore
/// dedup, local *and* cross-node) line up.  Both push runs through this
/// type: it packs them into ≤[`CHUNK_PAGES`]-page chunks, calling `emit`
/// with each filled chunk's `(runs, raw bytes)`; [`RunChunker::flush`]
/// emits the partial trailing chunk at region end.
#[derive(Debug, Default)]
pub struct RunChunker {
    runs: Vec<PageRun>,
    buf: Vec<u8>,
    pages: u64,
}

impl RunChunker {
    /// Packs `run` (whose payload is `bytes`) into the staged chunk,
    /// emitting every chunk that fills up along the way.
    pub fn push(
        &mut self,
        run: PageRun,
        bytes: &[u8],
        emit: &mut dyn FnMut(Vec<PageRun>, Vec<u8>) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        debug_assert_eq!(bytes.len() as u64, run.count * PAGE_SIZE);
        let mut first = run.first;
        let mut offset = 0usize;
        let mut remaining = run.count;
        while remaining > 0 {
            let space = CHUNK_PAGES - self.pages;
            let take = remaining.min(space);
            let len = (take * PAGE_SIZE) as usize;
            self.runs.push(PageRun { first, count: take });
            self.buf.extend_from_slice(&bytes[offset..offset + len]);
            self.pages += take;
            first += take;
            offset += len;
            remaining -= take;
            if self.pages == CHUNK_PAGES {
                self.flush(emit)?;
            }
        }
        Ok(())
    }

    /// Emits the partial staged chunk, if any (call at region end).
    pub fn flush(
        &mut self,
        emit: &mut dyn FnMut(Vec<PageRun>, Vec<u8>) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        if self.runs.is_empty() {
            return Ok(());
        }
        self.pages = 0;
        emit(
            std::mem::take(&mut self.runs),
            std::mem::take(&mut self.buf),
        )
    }

    /// `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Retains, in order, only the chunk entries still contributing at least
/// one page once later entries are applied last-write-wins — the manifest
/// trim for pre-copy checkpoints, where a later round's re-emitted runs
/// can fully supersede an earlier round's chunk.  `runs_of` projects an
/// entry's page runs.
pub(crate) fn trim_superseded<T>(chunks: &mut Vec<T>, runs_of: impl Fn(&T) -> &[PageRun]) {
    if chunks.len() < 2 {
        return;
    }
    let mut covered = std::collections::HashSet::new();
    let mut keep = vec![false; chunks.len()];
    for (i, c) in chunks.iter().enumerate().rev() {
        let mut contributes = false;
        for run in runs_of(c) {
            for page in run.pages() {
                if covered.insert(page) {
                    contributes = true;
                }
            }
        }
        keep[i] = contributes;
    }
    let mut flags = keep.iter();
    // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
    chunks.retain(|_| *flags.next().expect("one flag per chunk"));
}

/// A chunk not yet hashed or encoded: which pages of which region it covers,
/// and their raw bytes.
#[derive(Clone, Debug)]
pub struct ChunkJob {
    /// Index of the source region within the image's region list.
    pub region_index: usize,
    /// The page runs (indices relative to the region start) this chunk
    /// covers, in increasing order.
    pub runs: Vec<PageRun>,
    /// Concatenated page bytes in run order; length is a multiple of
    /// [`PAGE_SIZE`].
    pub raw: Vec<u8>,
}

impl ChunkJob {
    /// Number of pages in the chunk.
    pub fn page_count(&self) -> u64 {
        self.runs.iter().map(|r| r.count).sum()
    }

    /// Content hash of the raw bytes.
    pub fn content_hash(&self) -> ContentHash {
        ContentHash::of(&self.raw)
    }
}

/// Splits one region's dirty pages into chunk jobs.
///
/// `region_index` is recorded into each job so parallel workers can be
/// handed a flat job list across all regions.
pub fn chunk_region(region_index: usize, region: &SavedRegion) -> Vec<ChunkJob> {
    let runs = region.page_runs();
    // Page bytes keyed by index for O(log n) lookup while assembling runs.
    let by_index: std::collections::BTreeMap<u64, &[u8]> = region
        .pages
        .iter()
        .map(|(idx, bytes)| (*idx, bytes.as_slice()))
        .collect();

    let mut jobs: Vec<ChunkJob> = Vec::new();
    let mut cur_runs: Vec<PageRun> = Vec::new();
    let mut cur_pages = 0u64;
    let mut flush = |cur_runs: &mut Vec<PageRun>, cur_pages: &mut u64| {
        if cur_runs.is_empty() {
            return;
        }
        let mut raw = Vec::with_capacity((*cur_pages * PAGE_SIZE) as usize);
        for run in cur_runs.iter() {
            for page in run.pages() {
                let bytes = by_index[&page];
                debug_assert_eq!(bytes.len(), PAGE_SIZE as usize);
                raw.extend_from_slice(bytes);
            }
        }
        jobs.push(ChunkJob {
            region_index,
            runs: std::mem::take(cur_runs),
            raw,
        });
        *cur_pages = 0;
    };

    for run in runs {
        // Split oversized runs into CHUNK_PAGES pieces first.
        let mut first = run.first;
        let mut remaining = run.count;
        while remaining > 0 {
            let space = CHUNK_PAGES - cur_pages;
            let take = remaining.min(space);
            cur_runs.push(PageRun { first, count: take });
            cur_pages += take;
            first += take;
            remaining -= take;
            if cur_pages == CHUNK_PAGES {
                flush(&mut cur_runs, &mut cur_pages);
            }
        }
    }
    flush(&mut cur_runs, &mut cur_pages);
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crac_addrspace::{Addr, Prot};

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE as usize]
    }

    fn region_with_pages(indices: &[u64]) -> SavedRegion {
        SavedRegion {
            start: Addr(0x4000_0000_0000),
            len: 1 << 20,
            prot: Prot::RW,
            label: "test".into(),
            pages: indices.iter().map(|&i| (i, page(i as u8))).collect(),
        }
    }

    #[test]
    fn contiguous_pages_form_one_chunk() {
        let region = region_with_pages(&[0, 1, 2, 3]);
        let jobs = chunk_region(0, &region);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].runs, vec![PageRun { first: 0, count: 4 }]);
        assert_eq!(jobs[0].raw.len(), 4 * PAGE_SIZE as usize);
        // Bytes are in page order.
        assert_eq!(jobs[0].raw[0], 0);
        assert_eq!(jobs[0].raw[PAGE_SIZE as usize], 1);
    }

    #[test]
    fn long_runs_split_at_chunk_pages() {
        let indices: Vec<u64> = (0..CHUNK_PAGES * 2 + 3).collect();
        let jobs = chunk_region(0, &region_with_pages(&indices));
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].page_count(), CHUNK_PAGES);
        assert_eq!(jobs[1].page_count(), CHUNK_PAGES);
        assert_eq!(jobs[2].page_count(), 3);
        assert_eq!(
            jobs[1].runs,
            vec![PageRun {
                first: CHUNK_PAGES,
                count: CHUNK_PAGES
            }]
        );
    }

    #[test]
    fn scattered_runs_pack_into_one_chunk() {
        let jobs = chunk_region(7, &region_with_pages(&[0, 5, 6, 9]));
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].region_index, 7);
        assert_eq!(
            jobs[0].runs,
            vec![
                PageRun { first: 0, count: 1 },
                PageRun { first: 5, count: 2 },
                PageRun { first: 9, count: 1 },
            ]
        );
        assert_eq!(jobs[0].page_count(), 4);
    }

    #[test]
    fn unchanged_tail_chunks_keep_their_hash_when_one_page_changes() {
        let indices: Vec<u64> = (0..CHUNK_PAGES * 4).collect();
        let mut a = region_with_pages(&indices);
        let before: Vec<ContentHash> = chunk_region(0, &a)
            .iter()
            .map(|j| j.content_hash())
            .collect();
        // Mutate one page in the second chunk.
        a.pages[(CHUNK_PAGES + 1) as usize].1 = page(0xEE);
        let after: Vec<ContentHash> = chunk_region(0, &a)
            .iter()
            .map(|j| j.content_hash())
            .collect();
        assert_eq!(before.len(), after.len());
        assert_ne!(before[1], after[1], "touched chunk must re-hash");
        assert_eq!(before[0], after[0]);
        assert_eq!(before[2], after[2]);
        assert_eq!(before[3], after[3]);
    }
}
