//! The restore-side reader: manifest → chunks → verified `CheckpointImage`.
//!
//! Every byte read is integrity-checked: the manifest is CRC-framed, each
//! chunk file carries its own CRC over the encoded bytes, and after decoding
//! the chunk's content hash is recomputed and compared against the name the
//! manifest references — so a flipped bit anywhere in the store surfaces as
//! a [`StoreError::Corrupt`] instead of silently restoring wrong memory.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crac_addrspace::{Addr, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};

use crate::codec::decode;
use crate::error::StoreError;
use crate::format::{ChunkFile, Manifest};
use crate::hash::ContentHash;
use crate::store::{ImageId, ImageStore};

/// What one image read cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadStats {
    /// Chunk files read (after intra-image caching).
    pub chunks_read: usize,
    /// Chunk references served from the intra-image cache (an image that
    /// contains the same content many times reads it once).
    pub chunks_cached: usize,
    /// Encoded chunk bytes read from disk.
    pub chunk_bytes_read: u64,
    /// Manifest file size.
    pub manifest_bytes: u64,
    /// Wall-clock time of the whole read.
    pub elapsed: Duration,
}

/// Reads and fully verifies image `id`, reconstructing the checkpoint.
///
/// Called by [`ImageStore::read_image`]; not public API.
pub(crate) fn read_image(
    store: &ImageStore,
    id: ImageId,
) -> Result<(CheckpointImage, ReadStats), StoreError> {
    let start = Instant::now();
    let manifest = store.load_manifest(id)?;
    let mut stats = ReadStats {
        manifest_bytes: store.manifest_size(id)?,
        ..Default::default()
    };

    // An image can reference the same content many times (deduped repeats);
    // fetch each distinct chunk once, but only *keep* it while later
    // references remain — a mostly-unique multi-GB image must not hold a
    // second copy of itself in the cache.
    let mut refs_left: HashMap<ContentHash, usize> = HashMap::new();
    for chunk in manifest.chunk_refs() {
        *refs_left.entry(chunk.hash).or_insert(0) += 1;
    }
    let mut cache: HashMap<ContentHash, Vec<u8>> = HashMap::new();
    let mut image = CheckpointImage {
        taken_at_ns: manifest.taken_at_ns,
        ..Default::default()
    };

    for region in &manifest.regions {
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
        for chunk in &region.chunks {
            let raw = match cache.remove(&chunk.hash) {
                Some(raw) => {
                    stats.chunks_cached += 1;
                    raw
                }
                None => fetch_chunk(store, chunk.hash, chunk.raw_len, &mut stats)?,
            };
            // Identical hash across chunk refs must mean identical length;
            // a manifest violating that is corrupt.
            if raw.len() as u64 != chunk.raw_len {
                return Err(StoreError::corrupt(
                    store.image_path(id),
                    format!("chunk {} referenced with conflicting lengths", chunk.hash),
                ));
            }
            // Distribute the chunk's pages to their region-relative indices.
            let expected_pages: u64 = chunk.runs.iter().map(|r| r.count).sum();
            if expected_pages * PAGE_SIZE != chunk.raw_len {
                return Err(StoreError::corrupt(
                    store.image_path(id),
                    format!(
                        "chunk {} covers {expected_pages} pages but holds {} bytes",
                        chunk.hash, chunk.raw_len
                    ),
                ));
            }
            let mut offset = 0usize;
            for run in &chunk.runs {
                for page in run.pages() {
                    pages.push((page, raw[offset..offset + PAGE_SIZE as usize].to_vec()));
                    offset += PAGE_SIZE as usize;
                }
            }
            // Keep the raw bytes only while later references remain.
            let left = refs_left.get_mut(&chunk.hash).expect("counted above");
            *left -= 1;
            if *left > 0 {
                cache.insert(chunk.hash, raw);
            }
        }
        pages.sort_by_key(|(idx, _)| *idx);
        image.regions.push(SavedRegion {
            start: Addr(region.start),
            len: region.len,
            prot: region.prot,
            label: region.label.clone(),
            pages,
        });
    }

    for (name, data) in &manifest.payloads {
        image.payloads.insert(name.clone(), data.clone());
    }
    stats.elapsed = start.elapsed();
    Ok((image, stats))
}

/// Loads, CRC-checks, decodes and hash-verifies one chunk.
fn fetch_chunk(
    store: &ImageStore,
    hash: ContentHash,
    raw_len: u64,
    stats: &mut ReadStats,
) -> Result<Vec<u8>, StoreError> {
    let path = store.chunk_path(hash);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingChunk {
                hash: hash.to_hex(),
            })
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    stats.chunks_read += 1;
    stats.chunk_bytes_read += bytes.len() as u64;
    let file = ChunkFile::from_bytes(&bytes).map_err(|what| StoreError::corrupt(&path, what))?;
    if file.raw_len != raw_len {
        return Err(StoreError::corrupt(
            &path,
            format!(
                "chunk raw length {} does not match manifest ({raw_len})",
                file.raw_len
            ),
        ));
    }
    let raw = decode(file.encoding, &file.encoded, file.raw_len as usize)
        .ok_or_else(|| StoreError::corrupt(&path, "chunk payload failed to decode"))?;
    let actual = ContentHash::of(&raw);
    if actual != hash {
        return Err(StoreError::corrupt(
            &path,
            format!("chunk content hashes to {actual}, expected {hash}"),
        ));
    }
    Ok(raw)
}

/// Re-exported manifest loader used by [`ImageStore::image_info`].
pub(crate) fn load_manifest_file(path: &std::path::Path) -> Result<Manifest, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Err(StoreError::io(path, e)),
    };
    Manifest::from_bytes(&bytes).map_err(|what| StoreError::corrupt(path, what))
}
