//! The restore-side reader: manifest → parallel chunk fetch/verify →
//! streaming splice, the mirror image of the writer pipeline.
//!
//! ```text
//! fetch workers (threads)                         splice (caller thread)
//! ───────────────────────                         ──────────────────────
//! read ─► CRC ─► decode ─► hash-verify ─► [verified q] ─► RegionSink
//!                                         bounded
//! ```
//!
//! Every byte read is integrity-checked: the manifest is CRC-framed, each
//! chunk file carries its own CRC over the encoded bytes, and after decoding
//! the chunk's content hash is recomputed and compared against the name the
//! manifest references — so a flipped bit anywhere in the store surfaces as
//! a [`StoreError::Corrupt`] instead of silently restoring wrong memory.
//!
//! Fetching is the expensive part (file read + CRC + decode + re-hash per
//! chunk), and chunks are independent, so [`StreamReader`] fans the
//! manifest's *distinct* chunk list out over worker threads; verified
//! chunks flow through a **bounded** queue to the caller's thread, which
//! splices each chunk's page runs into the [`RegionSink`] **as the chunk
//! arrives** — no barrier, no full in-memory image.  A chunk the manifest
//! references many times (deduped repeats) is fetched once and applied to
//! every reference while it is in hand, then dropped.
//!
//! The pipeline itself is source-agnostic: the plan building
//! ([`build_fetch_plan`]) and the worker/splice machinery
//! ([`run_fetch_pipeline`]) are parameterised over a [`ChunkFetch`], so the
//! local store reader and the remote-transport reader
//! ([`crate::remote::RemoteChunkSource`]) are the *same* pipeline with a
//! different fetch callable — one verification path, one bounded-memory
//! proof, two byte sources.
//!
//! Because the queue is bounded and each worker holds at most one chunk,
//! the peak payload the restore ever buffers is a small multiple of the
//! chunk size — *independent of the image size*
//! ([`ReadStats::peak_buffered_bytes`] ≤ [`restore_buffer_bound`]), the
//! restore-side mirror of the writer's guarantee.
//!
//! **Failure semantics**: a worker whose fetch fails *transiently* (a
//! remote timeout, an injected fault — [`StoreError::is_transient`])
//! retries the same chunk a bounded number of times
//! ([`crate::transport::MAX_TRANSIENT_RETRIES`]) before giving up; a
//! permanent failure — corruption above all — is never retried.  The first
//! unrecovered error (a worker's fetch failing for good, the sink
//! rejecting a record) is latched; workers switch to draining so no
//! thread blocks forever, and the latched error is returned once the
//! pipeline has shut down.  A failed streaming restore leaves the sink
//! half-fed — its owner must discard whatever it was building.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crac_addrspace::{Addr, PageRun, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, RegionDescriptor};
use crac_obs::{Buckets, Counter, EventKind, Histogram, ObsRegistry, Span};

use crate::chunk::CHUNK_PAGES;
use crate::codec::decode;
use crate::error::StoreError;
use crate::format::{ChunkFile, Manifest};
use crate::hash::ContentHash;
use crate::pipeline::{latch, ErrorSlot, Gauge};
use crate::store::{ImageId, ImageStore};
use crate::stream::{ChunkSource, MaterialiseSink, RegionSink};
use crate::transport::{with_transient_retry_observed, RetryObs};

/// Verified chunks the queue holds while the splice consumer is busy
/// (backpressure depth between the fetch workers and the splice).
pub const VERIFY_QUEUE_CHUNKS: usize = 4;

/// Analytic upper bound on [`ReadStats::peak_buffered_bytes`] for a
/// restore that used `threads` fetch workers.
///
/// Each worker holds at most one chunk — its file buffer (header plus
/// encoded payload, never larger than raw + a fixed header since the
/// encoder only keeps encodings that shrink) and its decoded bytes
/// coexist transiently, which the factor 2 covers with slack — each
/// verified-queue entry holds one decoded chunk, and the splice consumer
/// holds one chunk while applying its runs.
pub fn restore_buffer_bound(threads: usize) -> u64 {
    let slots = threads + VERIFY_QUEUE_CHUNKS + 1;
    2 * slots as u64 * CHUNK_PAGES * PAGE_SIZE
}

/// What one image read cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadStats {
    /// Chunk files read (each distinct chunk is read exactly once).
    pub chunks_read: usize,
    /// Chunk references served from an already-fetched chunk (an image
    /// that contains the same content many times reads it once).
    pub chunks_cached: usize,
    /// Encoded chunk bytes read from disk (or received over the
    /// transport, for a remote restore).
    pub chunk_bytes_read: u64,
    /// Manifest file size.
    pub manifest_bytes: u64,
    /// Worker threads used for fetching/verifying chunks.
    pub threads_used: usize,
    /// Transient fetch failures that were absorbed by the bounded retry
    /// (zero on a healthy local restore; the fault-injection tests prove
    /// the recovery path with it).
    pub transient_retries: usize,
    /// Peak bytes the restore pipeline held at any instant: each worker's
    /// in-flight chunk file plus its decoded bytes, the verified queue,
    /// and the chunk being spliced.  Bounded by [`restore_buffer_bound`],
    /// *not* by the image size — the proof that the streaming restore
    /// never materialises the image.
    pub peak_buffered_bytes: u64,
    /// Wall-clock time until the restored process could resume, in
    /// microseconds.  For the eager paths this equals the full restore
    /// (`elapsed`) — the process only runs once every page landed; a lazy
    /// restore resumes after the metadata-only declaration, so the two
    /// paths' resume latency is comparable from one snapshot.
    pub resume_us: u64,
    /// Wall-clock time of the whole read.
    pub elapsed: Duration,
}

/// Per-restore observability bundle shared by both restore paths (local
/// [`StreamReader`] and [`crate::remote::RemoteChunkSource`]): a fresh
/// per-run registry whose counters/histograms *are* the authoritative
/// accounting — [`ReadStats`] is built as a view over its final snapshot,
/// so there is no double bookkeeping — plus the long-lived registry that
/// receives events and retry metrics immediately (mid-run visibility).
pub(crate) struct ReaderObs {
    /// Per-run metric namespace; folded into `events` when the run ends.
    pub(crate) run: ObsRegistry,
    /// The long-lived registry (the store's, or one attached via
    /// `open_with_obs`): structured events and retry accounting land here
    /// directly, visible while the restore is still in flight.
    pub(crate) events: ObsRegistry,
    pub(crate) stage_fetch: Histogram,
    pub(crate) stage_verify: Histogram,
    pub(crate) stage_splice: Histogram,
    pub(crate) chunks_read: Counter,
    pub(crate) chunk_bytes_read: Counter,
}

impl ReaderObs {
    pub(crate) fn new(events: ObsRegistry) -> Self {
        let run = ObsRegistry::new();
        Self {
            stage_fetch: run.histogram("crac_reader_stage_fetch_us", Buckets::LATENCY_US),
            stage_verify: run.histogram("crac_reader_stage_verify_us", Buckets::LATENCY_US),
            stage_splice: run.histogram("crac_reader_stage_splice_us", Buckets::LATENCY_US),
            chunks_read: run.counter("crac_reader_chunks_read"),
            chunk_bytes_read: run.counter("crac_reader_chunk_bytes_read"),
            run,
            events,
        }
    }

    /// Retry observation for one transport/store operation: cause and
    /// backoff land on the long-lived registry as they happen.
    pub(crate) fn retry(&self, op: &'static str) -> RetryObs {
        RetryObs {
            reg: self.events.clone(),
            op,
        }
    }

    /// Ends the run: folds the run registry into the long-lived one and
    /// returns [`ReadStats`] as a view over the run's final snapshot.
    pub(crate) fn finish_stats(&self, elapsed: Duration) -> ReadStats {
        let snap = self.run.snapshot();
        self.events.absorb(&snap);
        ReadStats {
            chunks_read: snap.counter("crac_reader_chunks_read") as usize,
            chunks_cached: snap.counter("crac_reader_chunks_cached") as usize,
            chunk_bytes_read: snap.counter("crac_reader_chunk_bytes_read"),
            manifest_bytes: snap.counter("crac_reader_manifest_bytes"),
            threads_used: snap
                .gauge("crac_reader_threads")
                .map(|g| g.value as usize)
                .unwrap_or(0),
            transient_retries: snap.counter("crac_reader_transient_retries") as usize,
            peak_buffered_bytes: snap
                .gauge("crac_reader_buffered_bytes")
                .map(|g| g.peak)
                .unwrap_or(0),
            // Eager restores resume only when everything landed; the lazy
            // session overwrites this with its declare→resume latency.
            resume_us: elapsed.as_micros() as u64,
            elapsed,
        }
    }
}

/// A streaming image reader: the store's canonical [`ChunkSource`].
///
/// Obtain one through [`ImageStore::stream_restore`]; the constructor
/// loads and CRC-verifies the manifest (metadata only — no chunk is
/// touched), so region descriptors, payloads and the checkpoint timestamp
/// are available before any content streams.  Drive the content with
/// [`ChunkSource::stream_out`], then collect [`StreamReader::stats`].
pub struct StreamReader<'s> {
    store: &'s ImageStore,
    id: ImageId,
    manifest: Manifest,
    obs: ReaderObs,
    stats: ReadStats,
}

impl<'s> StreamReader<'s> {
    pub(crate) fn new(store: &'s ImageStore, id: ImageId) -> Result<Self, StoreError> {
        let manifest = store.load_manifest(id)?;
        let obs = ReaderObs::new(store.obs());
        let manifest_bytes = store.manifest_size(id)?;
        obs.run
            .counter("crac_reader_manifest_bytes")
            .add(manifest_bytes);
        let stats = ReadStats {
            manifest_bytes,
            ..Default::default()
        };
        Ok(Self {
            store,
            id,
            manifest,
            obs,
            stats,
        })
    }

    /// Virtual time the stored checkpoint was taken.
    pub fn taken_at_ns(&self) -> u64 {
        self.manifest.taken_at_ns
    }

    /// A named plugin payload (inline manifest data, available without
    /// streaming any chunk).
    pub fn payload(&self, name: &str) -> Option<&[u8]> {
        self.manifest
            .payloads
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Number of saved regions the image describes.
    pub fn region_count(&self) -> usize {
        self.manifest.regions.len()
    }

    /// What the read has cost so far (complete once
    /// [`ChunkSource::stream_out`] returned).
    pub fn stats(&self) -> ReadStats {
        self.stats
    }
}

/// One distinct chunk's fetch order: where its verified bytes go.
pub(crate) struct FetchPlan {
    pub(crate) hash: ContentHash,
    pub(crate) raw_len: u64,
    /// Every reference in the manifest that still wins pages after
    /// last-write-wins resolution: `(region index, winning sub-runs each
    /// paired with its byte offset into the chunk's raw bytes)`.
    pub(crate) targets: Vec<(usize, Vec<(PageRun, usize)>)>,
}

/// How the fetch pipeline obtains one chunk's raw (decoded, verified)
/// bytes.  The local store reads a file; the remote reader asks a
/// [`crate::transport::Transport`].  Implementations must fully verify
/// the chunk (CRC + decode + content hash) before returning.
pub(crate) trait ChunkFetch: Sync {
    /// Fetches chunk `hash`, returning its raw bytes plus the encoded
    /// (file/wire) byte count moved.  Must `gauge.add` the raw bytes
    /// before returning them (the pipeline `sub`s when they are dropped),
    /// and should record its acquisition under `obs.stage_fetch` and the
    /// verification ladder under `obs.stage_verify`.
    fn fetch(
        &self,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError>;

    /// Priority flavour used by the lazy restore's fault path: a page the
    /// restarted process is blocked on must not queue behind the
    /// background prefetch sweep.  Local fetches have nothing to jump
    /// (the default delegates); the remote fetcher routes these through
    /// [`crate::transport::Transport::get_chunk_priority`].
    fn fetch_priority(
        &self,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        self.fetch(hash, raw_len, gauge, obs)
    }
}

/// [`ChunkFetch`] over the local chunk directory.
pub(crate) struct LocalFetch<'s> {
    pub(crate) store: &'s ImageStore,
}

impl ChunkFetch for LocalFetch<'_> {
    fn fetch(
        &self,
        hash: ContentHash,
        raw_len: u64,
        gauge: &Gauge,
        obs: &ReaderObs,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        fetch_chunk(self.store, hash, raw_len, gauge, obs)
    }
}

/// Declares every region and payload of `manifest` into `sink` — the
/// metadata prologue both the local and remote streams send before any
/// content, so the sink knows the full image shape up front.
pub(crate) fn declare_manifest(
    manifest: &Manifest,
    sink: &mut dyn RegionSink,
) -> Result<(), StoreError> {
    for region in &manifest.regions {
        sink.declare_region(&RegionDescriptor {
            start: Addr(region.start),
            len: region.len,
            prot: region.prot,
            label: region.label.clone(),
        })?;
    }
    for (name, data) in &manifest.payloads {
        sink.push_payload(name, data)?;
    }
    Ok(())
}

/// Validates every chunk reference of `manifest` and builds the fetch
/// plan: one entry per *distinct* chunk, carrying every place its pages
/// land (repeats cost a plan target, never a second fetch).  `label`
/// names the manifest's origin in corruption errors — a file path for a
/// local image, a synthetic `remote:` path for a transported one.
///
/// Returns the plan plus the total reference count (for the
/// [`ReadStats::chunks_cached`] accounting).
pub(crate) fn build_fetch_plan(
    manifest: &Manifest,
    label: &Path,
) -> Result<(Vec<FetchPlan>, usize), StoreError> {
    let mut by_hash: HashMap<ContentHash, usize> = HashMap::new();
    let mut plan: Vec<FetchPlan> = Vec::new();
    let mut refs_total = 0usize;
    for (region_idx, region) in manifest.regions.iter().enumerate() {
        let region_pages = region.len / PAGE_SIZE;
        // Validation pass, plus the last-write-wins winner map: a page a
        // pre-copy round re-emitted appears again in a *later* chunk entry
        // of the same region, and that later entry's content is the page's
        // content.  Entry order in the manifest is emission order, so the
        // highest-indexed entry covering a page wins it.
        let mut winner: HashMap<u64, usize> = HashMap::new();
        for (seq, chunk) in region.chunks.iter().enumerate() {
            refs_total += 1;
            // All arithmetic on manifest-supplied values is checked:
            // an overflow is corruption, not a wrap-around bypass.
            let chunk_pages = chunk
                .runs
                .iter()
                .try_fold(0u64, |acc, r| acc.checked_add(r.count));
            let chunk_bytes = chunk_pages.and_then(|p| p.checked_mul(PAGE_SIZE));
            let Some((chunk_pages, chunk_bytes)) = chunk_pages.zip(chunk_bytes) else {
                return Err(StoreError::corrupt(
                    label,
                    format!("chunk {} page counts overflow", chunk.hash),
                ));
            };
            if chunk_bytes != chunk.raw_len {
                return Err(StoreError::corrupt(
                    label,
                    format!(
                        "chunk {} covers {chunk_pages} pages but holds {} bytes",
                        chunk.hash, chunk.raw_len
                    ),
                ));
            }
            for run in &chunk.runs {
                if run.count > region_pages || run.first > region_pages - run.count {
                    return Err(StoreError::corrupt(
                        label,
                        format!(
                            "chunk {} run [{}+{}) exceeds its {region_pages}-page region",
                            chunk.hash, run.first, run.count
                        ),
                    ));
                }
                for page in run.pages() {
                    winner.insert(page, seq);
                }
            }
        }
        for (seq, chunk) in region.chunks.iter().enumerate() {
            let slot = *by_hash.entry(chunk.hash).or_insert_with(|| {
                plan.push(FetchPlan {
                    hash: chunk.hash,
                    raw_len: chunk.raw_len,
                    targets: Vec::new(),
                });
                plan.len() - 1
            });
            // Identical hash across chunk refs must mean identical
            // length; a manifest violating that is corrupt.
            if plan[slot].raw_len != chunk.raw_len {
                return Err(StoreError::corrupt(
                    label,
                    format!("chunk {} referenced with conflicting lengths", chunk.hash),
                ));
            }
            // Walk the chunk's original run layout (which defines byte
            // offsets into its raw bytes) and keep only the maximal
            // sub-runs this entry still wins.  Writers trim entries that
            // win nothing, but a partially superseded entry stays in the
            // manifest, so the splice must never push its stale pages.
            let mut pieces: Vec<(PageRun, usize)> = Vec::new();
            let mut offset = 0usize;
            for run in &chunk.runs {
                let mut sub_first: Option<u64> = None;
                let flush = |from: u64, to: u64, pieces: &mut Vec<(PageRun, usize)>| {
                    pieces.push((
                        PageRun {
                            first: from,
                            count: to - from,
                        },
                        offset + ((from - run.first) * PAGE_SIZE) as usize,
                    ));
                };
                for page in run.pages() {
                    if winner.get(&page) == Some(&seq) {
                        sub_first.get_or_insert(page);
                    } else if let Some(from) = sub_first.take() {
                        flush(from, page, &mut pieces);
                    }
                }
                if let Some(from) = sub_first {
                    flush(from, run.first + run.count, &mut pieces);
                }
                offset += (run.count * PAGE_SIZE) as usize;
            }
            if !pieces.is_empty() {
                plan[slot].targets.push((region_idx, pieces));
            }
        }
    }
    Ok((plan, refs_total))
}

/// The fetch/verify/splice pipeline both restore paths share: workers
/// pull tickets off `plan`, fetch + verify through `fetcher` (with
/// bounded retry on transient failures), and push decoded chunks through
/// the bounded queue; the calling thread splices each chunk into `sink`
/// the moment it arrives.  Accounts everything into `obs`'s run registry
/// — the caller builds its [`ReadStats`] view from the final snapshot.
pub(crate) fn run_fetch_pipeline(
    plan: &[FetchPlan],
    sink: &mut dyn RegionSink,
    fetcher: &dyn ChunkFetch,
    obs: &ReaderObs,
) -> Result<(), StoreError> {
    let threads = effective_read_threads(plan.len());
    obs.run.gauge("crac_reader_threads").set(threads as u64);
    let gauge = Gauge::default();
    let error: ErrorSlot = Arc::new(crac_sync::Mutex::new("imagestore.reader.error", None));
    let next = AtomicUsize::new(0);
    let retries = AtomicUsize::new(0);
    let retry_obs = obs.retry("fetch_chunk");
    let (tx, rx) = sync_channel::<(usize, Vec<u8>, u64)>(VERIFY_QUEUE_CHUNKS);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, gauge, error, retries) = (&next, &gauge, &error, &retries);
            let retry_obs = &retry_obs;
            scope.spawn(move || loop {
                let ticket = next.fetch_add(1, Ordering::Relaxed);
                let Some(entry) = plan.get(ticket) else {
                    return;
                };
                if error.lock().is_some() {
                    continue; // drain mode: burn the remaining tickets
                }
                // Transient fetch failures (a remote hiccup, an injected
                // fault) are retried here, bounded; one flaky chunk no
                // longer fails the whole restore.  Corruption and other
                // permanent failures still fail fast, and once any worker
                // has latched an error the cancellation probe stops the
                // others' retry loops mid-budget.
                let fetched = with_transient_retry_observed(
                    retries,
                    || error.lock().is_some(),
                    Some(retry_obs),
                    || fetcher.fetch(entry.hash, entry.raw_len, gauge, obs),
                );
                match fetched {
                    Ok((raw, wire_bytes)) => {
                        let len = raw.len() as u64;
                        if tx.send((ticket, raw, wire_bytes)).is_err() {
                            // Splice consumer gone: only after a latch.
                            gauge.sub(len);
                            return;
                        }
                    }
                    Err(e) => latch(error, e),
                }
            });
        }
        // The workers hold the only remaining senders: once they all
        // exit, the iterator below ends — clean shutdown, no explicit
        // signalling (the mirror of the writer's teardown).
        drop(tx);

        for (ticket, raw, wire_bytes) in rx.iter() {
            let len = raw.len() as u64;
            if error.lock().is_none() {
                let entry = &plan[ticket];
                let stage = Span::enter(&obs.stage_splice);
                let spliced = splice_chunk(sink, entry, &raw);
                stage.finish();
                if let Err(e) = spliced {
                    latch(&error, e);
                } else {
                    obs.chunks_read.inc();
                    obs.chunk_bytes_read.add(wire_bytes);
                }
            }
            gauge.sub(len);
        }
    });

    obs.run
        .gauge("crac_reader_buffered_bytes")
        .raise_peak(gauge.peak());
    obs.run
        .counter("crac_reader_transient_retries")
        .add(retries.load(Ordering::Relaxed) as u64);
    let first_error = error.lock().take();
    match first_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

impl ChunkSource for StreamReader<'_> {
    fn stream_out(&mut self, sink: &mut dyn RegionSink) -> Result<(), StoreError> {
        // crac-lint: allow(raw-instant) — whole-restore wall time lands in ReadStats via finish_stats
        let start = Instant::now();
        self.obs.events.event(
            EventKind::RestoreBegun,
            format!("image={} regions={}", self.id, self.manifest.regions.len()),
        );

        // Metadata first: declarations and payloads are manifest-inline,
        // so the sink has the full image shape before content arrives.
        declare_manifest(&self.manifest, sink)?;

        let label = self.store.image_path(self.id);
        let (plan, refs_total) = build_fetch_plan(&self.manifest, &label)?;
        self.obs
            .run
            .counter("crac_reader_chunks_cached")
            .add((refs_total - plan.len()) as u64);

        let fetcher = LocalFetch { store: self.store };
        let result = run_fetch_pipeline(&plan, sink, &fetcher, &self.obs);
        self.stats = self.obs.finish_stats(start.elapsed());
        self.obs.events.event(
            EventKind::RestoreFinished,
            format!(
                "image={} ok={} chunks_read={} bytes_read={}",
                self.id,
                result.is_ok(),
                self.stats.chunks_read,
                self.stats.chunk_bytes_read
            ),
        );
        result
    }
}

/// Applies one verified chunk's winning page runs to every target region.
/// The plan pre-resolved last-write-wins, so each sub-run carries its own
/// byte offset into the chunk's raw bytes and a sink never sees a page
/// twice.
fn splice_chunk(
    sink: &mut dyn RegionSink,
    entry: &FetchPlan,
    raw: &[u8],
) -> Result<(), StoreError> {
    for (region, pieces) in &entry.targets {
        for (run, offset) in pieces {
            let len = (run.count * PAGE_SIZE) as usize;
            sink.push_run(*region, *run, &raw[*offset..*offset + len])?;
        }
    }
    Ok(())
}

/// Reads and fully verifies image `id`, reconstructing the checkpoint.
///
/// This is the legacy materialising path ([`ImageStore::read_image`]): the
/// streaming reader driven into a [`MaterialiseSink`], so the two paths
/// cannot diverge.
pub(crate) fn read_image(
    store: &ImageStore,
    id: ImageId,
) -> Result<(CheckpointImage, ReadStats), StoreError> {
    let mut reader = StreamReader::new(store, id)?;
    let mut sink = MaterialiseSink::default();
    reader.stream_out(&mut sink)?;
    let image = sink.into_image(reader.taken_at_ns());
    Ok((image, reader.stats()))
}

pub(crate) fn effective_read_threads(chunks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(8).clamp(1, chunks.max(1))
}

/// CRC-checks, decodes and hash-verifies one chunk's *file bytes* (from
/// disk or the wire), returning its raw bytes.  Decoding borrows straight
/// from `bytes`, so the caller's transient footprint is file + raw, not
/// file + encoded copy + raw.  `label` names the source in errors.
pub(crate) fn verify_chunk_file_bytes(
    label: &Path,
    bytes: &[u8],
    hash: ContentHash,
    raw_len: u64,
    gauge: &Gauge,
) -> Result<Vec<u8>, StoreError> {
    let view = ChunkFile::parse(bytes).map_err(|what| StoreError::corrupt(label, what))?;
    if view.raw_len != raw_len {
        return Err(StoreError::corrupt(
            label,
            format!(
                "chunk raw length {} does not match manifest ({raw_len})",
                view.raw_len
            ),
        ));
    }
    let raw = decode(view.encoding, view.encoded, view.raw_len as usize)
        .ok_or_else(|| StoreError::corrupt(label, "chunk payload failed to decode"))?;
    gauge.add(raw.len() as u64);
    let actual = ContentHash::of(&raw);
    if actual != hash {
        gauge.sub(raw.len() as u64);
        return Err(StoreError::corrupt(
            label,
            format!("chunk content hashes to {actual}, expected {hash}"),
        ));
    }
    Ok(raw)
}

/// Loads, CRC-checks, decodes and hash-verifies one chunk from the local
/// store, returning its raw bytes and the on-disk file size.
fn fetch_chunk(
    store: &ImageStore,
    hash: ContentHash,
    raw_len: u64,
    gauge: &Gauge,
    obs: &ReaderObs,
) -> Result<(Vec<u8>, u64), StoreError> {
    let path = store.chunk_path(hash);
    let stage = Span::enter(&obs.stage_fetch);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingChunk {
                hash: hash.to_hex(),
            })
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    stage.finish();
    let file_bytes = bytes.len() as u64;
    gauge.add(file_bytes);
    let stage = Span::enter(&obs.stage_verify);
    let result = verify_chunk_file_bytes(&path, &bytes, hash, raw_len, gauge);
    stage.finish();
    drop(bytes);
    gauge.sub(file_bytes);
    result.map(|raw| (raw, file_bytes))
}

/// Re-exported manifest loader used by [`ImageStore::image_info`].
pub(crate) fn load_manifest_file(path: &std::path::Path) -> Result<Manifest, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Err(StoreError::io(path, e)),
    };
    Manifest::from_bytes(&bytes).map_err(|what| StoreError::corrupt(path, what))
}
