//! The restore-side reader: manifest → parallel chunk fetch → verified
//! `CheckpointImage`.
//!
//! Every byte read is integrity-checked: the manifest is CRC-framed, each
//! chunk file carries its own CRC over the encoded bytes, and after decoding
//! the chunk's content hash is recomputed and compared against the name the
//! manifest references — so a flipped bit anywhere in the store surfaces as
//! a [`StoreError::Corrupt`] instead of silently restoring wrong memory.
//!
//! Fetching is the expensive part (file read + CRC + decode + re-hash per
//! chunk), and chunks are independent, so the reader fans the manifest's
//! *distinct* chunk list out over scoped worker threads first; the
//! single-threaded splice that follows only moves verified bytes into
//! place.  Any worker's failure aborts the read — the first error in
//! manifest order wins, keeping error messages deterministic.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crac_addrspace::{Addr, PAGE_SIZE};
use crac_dmtcp::{CheckpointImage, SavedRegion};

use crate::codec::decode;
use crate::error::StoreError;
use crate::format::{ChunkFile, Manifest};
use crate::hash::ContentHash;
use crate::store::{ImageId, ImageStore};

/// What one image read cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadStats {
    /// Chunk files read (each distinct chunk is read exactly once).
    pub chunks_read: usize,
    /// Chunk references served from the already-fetched set (an image that
    /// contains the same content many times reads it once).
    pub chunks_cached: usize,
    /// Encoded chunk bytes read from disk.
    pub chunk_bytes_read: u64,
    /// Manifest file size.
    pub manifest_bytes: u64,
    /// Worker threads used for fetching/verifying chunks.
    pub threads_used: usize,
    /// Wall-clock time of the whole read.
    pub elapsed: Duration,
}

/// Reads and fully verifies image `id`, reconstructing the checkpoint.
///
/// Called by [`ImageStore::read_image`]; not public API.
pub(crate) fn read_image(
    store: &ImageStore,
    id: ImageId,
) -> Result<(CheckpointImage, ReadStats), StoreError> {
    let start = Instant::now();
    let manifest = store.load_manifest(id)?;
    let mut stats = ReadStats {
        manifest_bytes: store.manifest_size(id)?,
        ..Default::default()
    };

    // The manifest may reference the same content many times (deduped
    // repeats); fetch each distinct chunk once, in parallel.
    let mut refs_total: HashMap<ContentHash, usize> = HashMap::new();
    let mut distinct: Vec<(ContentHash, u64)> = Vec::new();
    for chunk in manifest.chunk_refs() {
        let refs = refs_total.entry(chunk.hash).or_insert(0);
        if *refs == 0 {
            distinct.push((chunk.hash, chunk.raw_len));
        }
        *refs += 1;
    }
    let (mut fetched, fetch_stats) = fetch_chunks_parallel(store, &distinct)?;
    stats.chunks_read = fetch_stats.chunks_read;
    stats.chunk_bytes_read = fetch_stats.chunk_bytes_read;
    stats.threads_used = fetch_stats.threads_used;
    stats.chunks_cached = manifest.chunk_refs().count() - distinct.len();

    // Single-threaded splice: distribute each chunk's pages to their
    // region-relative indices.  Verified bytes are *moved* out of the
    // fetched set on a chunk's last reference, so the transient double
    // copy lives only as long as later references remain.
    let mut refs_left = refs_total;
    let mut image = CheckpointImage {
        taken_at_ns: manifest.taken_at_ns,
        ..Default::default()
    };
    for region in &manifest.regions {
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
        for chunk in &region.chunks {
            let left = refs_left.get_mut(&chunk.hash).expect("counted above");
            *left -= 1;
            let raw = if *left > 0 {
                fetched
                    .get(&chunk.hash)
                    .expect("every distinct chunk was fetched")
                    .clone()
            } else {
                fetched
                    .remove(&chunk.hash)
                    .expect("every distinct chunk was fetched")
            };
            // Identical hash across chunk refs must mean identical length;
            // a manifest violating that is corrupt.
            if raw.len() as u64 != chunk.raw_len {
                return Err(StoreError::corrupt(
                    store.image_path(id),
                    format!("chunk {} referenced with conflicting lengths", chunk.hash),
                ));
            }
            let expected_pages: u64 = chunk.runs.iter().map(|r| r.count).sum();
            if expected_pages * PAGE_SIZE != chunk.raw_len {
                return Err(StoreError::corrupt(
                    store.image_path(id),
                    format!(
                        "chunk {} covers {expected_pages} pages but holds {} bytes",
                        chunk.hash, chunk.raw_len
                    ),
                ));
            }
            let mut offset = 0usize;
            for run in &chunk.runs {
                for page in run.pages() {
                    pages.push((page, raw[offset..offset + PAGE_SIZE as usize].to_vec()));
                    offset += PAGE_SIZE as usize;
                }
            }
        }
        pages.sort_by_key(|(idx, _)| *idx);
        image.regions.push(SavedRegion {
            start: Addr(region.start),
            len: region.len,
            prot: region.prot,
            label: region.label.clone(),
            pages,
        });
    }

    for (name, data) in &manifest.payloads {
        image.payloads.insert(name.clone(), data.clone());
    }
    stats.elapsed = start.elapsed();
    Ok((image, stats))
}

/// Per-fetch accounting each worker accumulates locally.
#[derive(Default)]
struct FetchStats {
    chunks_read: usize,
    chunk_bytes_read: u64,
    threads_used: usize,
}

/// One worker's verdict on one chunk: `(raw bytes, file size)` or the
/// error that aborts the read.
type FetchSlot = Option<Result<(Vec<u8>, u64), StoreError>>;

/// Fetches, CRC-checks, decodes and hash-verifies every distinct chunk on
/// parallel worker threads.  Workers own disjoint slices of the chunk
/// list, so no locking guards the result slots; the first failure (in
/// manifest order) aborts the read.
fn fetch_chunks_parallel(
    store: &ImageStore,
    distinct: &[(ContentHash, u64)],
) -> Result<(HashMap<ContentHash, Vec<u8>>, FetchStats), StoreError> {
    let threads = effective_read_threads(distinct.len());
    let mut slots: Vec<FetchSlot> = Vec::new();
    slots.resize_with(distinct.len(), || None);

    std::thread::scope(|scope| {
        let mut chunk_tail: &[(ContentHash, u64)] = distinct;
        let mut slot_tail: &mut [FetchSlot] = &mut slots;
        let per_thread = distinct.len().div_ceil(threads.max(1));
        for _ in 0..threads {
            let n = per_thread.min(chunk_tail.len());
            if n == 0 {
                break;
            }
            let (chunk_slice, rest_chunks) = chunk_tail.split_at(n);
            let (slot_slice, rest_slots) = slot_tail.split_at_mut(n);
            chunk_tail = rest_chunks;
            slot_tail = rest_slots;
            scope.spawn(move || {
                for (&(hash, raw_len), slot) in chunk_slice.iter().zip(slot_slice.iter_mut()) {
                    *slot = Some(fetch_chunk(store, hash, raw_len));
                }
            });
        }
    });

    let mut fetched = HashMap::with_capacity(distinct.len());
    let mut stats = FetchStats {
        threads_used: threads,
        ..Default::default()
    };
    for (&(hash, _), slot) in distinct.iter().zip(slots) {
        let (raw, file_bytes) = slot.expect("every slot slice was processed")?;
        stats.chunks_read += 1;
        stats.chunk_bytes_read += file_bytes;
        fetched.insert(hash, raw);
    }
    Ok((fetched, stats))
}

fn effective_read_threads(chunks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(8).clamp(1, chunks.max(1))
}

/// Loads, CRC-checks, decodes and hash-verifies one chunk, returning its
/// raw bytes and the on-disk file size.
fn fetch_chunk(
    store: &ImageStore,
    hash: ContentHash,
    raw_len: u64,
) -> Result<(Vec<u8>, u64), StoreError> {
    let path = store.chunk_path(hash);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingChunk {
                hash: hash.to_hex(),
            })
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    let file_bytes = bytes.len() as u64;
    let file = ChunkFile::from_bytes(&bytes).map_err(|what| StoreError::corrupt(&path, what))?;
    if file.raw_len != raw_len {
        return Err(StoreError::corrupt(
            &path,
            format!(
                "chunk raw length {} does not match manifest ({raw_len})",
                file.raw_len
            ),
        ));
    }
    let raw = decode(file.encoding, &file.encoded, file.raw_len as usize)
        .ok_or_else(|| StoreError::corrupt(&path, "chunk payload failed to decode"))?;
    let actual = ContentHash::of(&raw);
    if actual != hash {
        return Err(StoreError::corrupt(
            &path,
            format!("chunk content hashes to {actual}, expected {hash}"),
        ));
    }
    Ok((raw, file_bytes))
}

/// Re-exported manifest loader used by [`ImageStore::image_info`].
pub(crate) fn load_manifest_file(path: &std::path::Path) -> Result<Manifest, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Err(StoreError::io(path, e)),
    };
    Manifest::from_bytes(&bytes).map_err(|what| StoreError::corrupt(path, what))
}
