//! A persistent, incremental, parallel checkpoint-image store.
//!
//! The CRAC paper's headline numbers are checkpoint/restart *time* and image
//! *size*; both are dominated by image I/O.  This crate gives the
//! reproduction a real I/O pipeline for `crac_dmtcp::CheckpointImage`:
//!
//! * **Chunked binary on-disk format** ([`format`]): a CRC-framed manifest
//!   per image (header, region table, chunk references, inline plugin
//!   payloads) plus content-addressed chunk files holding the page data.
//!   Any single flipped byte anywhere in the store is detected on read.
//! * **Streaming writer pipeline** ([`writer`], [`stream`]): producers
//!   push `(region descriptor, page-run payload)` records into a
//!   [`ChunkSink`]; the [`StreamWriter`] chunks them along their runs,
//!   hashes/encodes on worker threads and writes chunk files on a
//!   dedicated I/O thread through bounded queues — encode overlaps I/O,
//!   and peak buffered payload is a fixed multiple of the chunk size
//!   ([`stream_buffer_bound`]), never the image size.  Optional
//!   run-length compression ([`codec`]) is kept per chunk only when it
//!   shrinks the data.
//! * **Content-hash dedup / incremental checkpoints**: chunks are named by
//!   a 128-bit content hash, so a checkpoint taken after a small mutation
//!   writes only the chunks covering changed pages; `WriteOptions::parent`
//!   records the checkpoint lineage.  Manifests always describe the full
//!   image, so restore never chains through parents.
//! * **Verifying parallel reader** ([`reader`]): rebuilds a byte-identical
//!   `CheckpointImage`, fetching and verifying distinct chunks (CRC +
//!   content hash) on parallel worker threads before a single-threaded
//!   splice.
//! * **Administration** ([`store`], [`lock`]): a PID-keyed cross-process
//!   writer lock (`store.lock`, stale locks stolen; `open_read_only`
//!   bypasses it), image deletion with reachability-based chunk
//!   reclamation, and a `retain_last(n)` retention helper.
//!
//! The [`CoordinatorStoreExt`] trait stitches the store into the DMTCP
//! coordinator: `checkpoint_to_store` drives the coordinator's streaming
//! walk straight into the pipeline (via [`SinkBridge`]) without ever
//! materialising a `CheckpointImage`; `crac-core` builds its
//! `CracProcess` disk paths on top of that.

pub mod chunk;
pub mod codec;
pub mod coordext;
pub mod error;
pub mod format;
pub mod hash;
pub mod lock;
pub mod reader;
pub mod store;
pub mod stream;
#[doc(hidden)]
pub mod testutil;
pub mod writer;

pub use codec::Compression;
pub use coordext::{drive_checkpoint_streaming, CoordinatorStoreExt};
pub use error::StoreError;
pub use hash::ContentHash;
pub use reader::ReadStats;
pub use store::{DeleteStats, ImageId, ImageInfo, ImageStore, StoreStats};
pub use stream::{ChunkSink, RegionSource, SinkBridge};
pub use writer::{stream_buffer_bound, StreamWriter, WriteOptions, WriteStats};
