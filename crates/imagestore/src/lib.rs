//! A persistent, incremental, parallel checkpoint-image store.
//!
//! The CRAC paper's headline numbers are checkpoint/restart *time* and image
//! *size*; both are dominated by image I/O.  This crate gives the
//! reproduction a real I/O pipeline for `crac_dmtcp::CheckpointImage`:
//!
//! * **Chunked binary on-disk format** ([`format`]): a CRC-framed manifest
//!   per image (header, region table, chunk references, inline plugin
//!   payloads) plus content-addressed chunk files holding the page data.
//!   Any single flipped byte anywhere in the store is detected on read.
//! * **Streaming writer pipeline** ([`writer`], [`stream`]): producers
//!   push `(region descriptor, page-run payload)` records into a
//!   [`ChunkSink`]; the [`StreamWriter`] chunks them along their runs,
//!   hashes/encodes on worker threads and writes chunk files on a
//!   dedicated I/O thread through bounded queues — encode overlaps I/O,
//!   and peak buffered payload is a fixed multiple of the chunk size
//!   ([`stream_buffer_bound`]), never the image size.  Optional
//!   run-length compression ([`codec`]) is kept per chunk only when it
//!   shrinks the data.
//! * **Content-hash dedup / incremental checkpoints**: chunks are named by
//!   a 128-bit content hash, so a checkpoint taken after a small mutation
//!   writes only the chunks covering changed pages; `WriteOptions::parent`
//!   records the checkpoint lineage.  Manifests always describe the full
//!   image, so restore never chains through parents.
//! * **Streaming reader pipeline** ([`reader`], [`stream`]) — the writer's
//!   mirror: [`StreamReader`] fetches and verifies the manifest's distinct
//!   chunks (CRC + content hash) on parallel worker threads and splices
//!   each chunk's page runs into a [`RegionSink`] **as it arrives** — no
//!   barrier, no materialised image, peak buffered payload a fixed
//!   multiple of the chunk size ([`restore_buffer_bound`]).  The legacy
//!   materialising `read_image` is the same pipeline driven into a
//!   [`MaterialiseSink`].
//! * **Remote replication** ([`transport`], [`remote`]): a [`Transport`]
//!   trait (batched `has_chunks`, `put_chunk`/`get_chunk`,
//!   `list/get/put_manifest`) is the wire seam transport backends plug
//!   into; [`LoopbackTransport`] (backed by a second store) and the
//!   fault-injecting [`FaultyTransport`] serve in-process testing.
//!   `ImageStore::replicate_to`/`replicate_from` ship only missing chunks
//!   (restic/borg-style negotiation, resumable after interruption),
//!   [`RemoteChunkSink`] streams a live checkpoint straight to a peer,
//!   and [`RemoteChunkSource`] restores from one through the same bounded
//!   parallel fetch pipeline as a local read — with bounded,
//!   backoff-spaced retry on transient transport faults.
//! * **Lazy first-touch restore** ([`lazy`]): the reader pipeline turned
//!   inside out — [`LazyRestoreSession`] maps the image's skeleton,
//!   declares its pages absent and resumes the process in O(metadata);
//!   a two-priority fetch crew then services first-touch faults ahead of
//!   a background prefetch sweep, over the same [`ChunkFetch`] seam
//!   (local store or remote transport), with chunk-level dedup so a
//!   chunk is fetched exactly once no matter how faults and the sweep
//!   race.
//! * **TCP network transport** ([`net`]): the trait over a real wire —
//!   length-prefixed, CRC-trailed frames on `std::net::TcpStream`
//!   ([`net::frame`]), a thread-per-connection server dispatching into
//!   the store ([`net::server`]), a pooled-connection client
//!   ([`TcpTransport`]) so parallel restores ride N sockets, and a
//!   mutual shared-secret auth handshake gating every connection
//!   ([`net::auth`]).  Everything above the trait runs over it
//!   unchanged.
//! * **Administration** ([`store`], [`lock`]): a PID-keyed cross-process
//!   writer lock (`store.lock`; stale locks stolen via an atomic
//!   rename-and-reverify, dead claimants' litter swept on open;
//!   `open_read_only` bypasses it), image deletion with
//!   reachability-based chunk reclamation that survives partial failures,
//!   and a `retain_last(n)` retention helper.
//!
//! The [`CoordinatorStoreExt`] trait stitches the store into the DMTCP
//! coordinator: `checkpoint_to_store` drives the coordinator's streaming
//! walk straight into the pipeline (via [`SinkBridge`]) and
//! `restart_from_store` drives the reader pipeline straight into the
//! coordinator's restore cursor (via [`RestoreBridge`]) — neither ever
//! materialises a `CheckpointImage`; `crac-core` builds its
//! `CracProcess` disk paths on top of both.
//!
//! **Observability** (`crac-obs`, re-exported here): every layer above
//! records into an [`ObsRegistry`] — counters, peak-tracking gauges,
//! fixed-bucket latency/size histograms and a bounded structured event
//! ring.  The coordinator owns the root registry and the
//! [`CoordinatorStoreExt`] entry points hand it down, so a single
//! [`ObsRegistry::render_text`] scrape (or the TCP server's `Stats` wire
//! op) exposes the whole checkpoint → replicate → restore flow in
//! Prometheus text format.  The `*Stats` structs are views computed from
//! registry snapshots — there is no double bookkeeping.

pub mod chunk;
pub mod codec;
pub mod coordext;
pub mod error;
pub mod format;
pub mod hash;
pub mod lazy;
pub mod lock;
pub mod net;
pub(crate) mod pipeline;
pub mod reader;
pub mod remote;
pub mod store;
pub mod stream;
#[doc(hidden)]
pub mod testutil;
pub mod transport;
pub mod writer;

pub use crac_obs::{
    Buckets, Counter, Event, EventKind, Gauge, Histogram, ObsRegistry, Snapshot, Span,
};

pub use codec::Compression;
pub use coordext::{
    drive_checkpoint_precopy, drive_checkpoint_streaming, drive_restore_streaming,
    CoordinatorStoreExt,
};
pub use error::StoreError;
pub use hash::ContentHash;
pub use lazy::{LazyRestoreSession, LazyRestoreStats};
pub use net::{NetServerStats, ServerHandle, TcpTransport, TcpTransportStats};
pub use reader::{restore_buffer_bound, ReadStats, StreamReader};
pub use remote::{RemoteChunkSink, RemoteChunkSource, ReplicateStats};
pub use store::{DeleteStats, ImageId, ImageInfo, ImageStore, StoreStats};
pub use stream::{
    ChunkSink, ChunkSource, MaterialiseSink, RegionSink, RegionSource, RestoreBridge, SinkBridge,
};
pub use transport::{
    FaultConfig, FaultyTransport, LoopbackTransport, Transport, TransportStats,
    MAX_TRANSIENT_RETRIES,
};
pub use writer::{stream_buffer_bound, StreamWriter, WriteOptions, WriteStats};
