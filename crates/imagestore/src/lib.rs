//! A persistent, incremental, parallel checkpoint-image store.
//!
//! The CRAC paper's headline numbers are checkpoint/restart *time* and image
//! *size*; both are dominated by image I/O.  This crate gives the
//! reproduction a real I/O pipeline for `crac_dmtcp::CheckpointImage`:
//!
//! * **Chunked binary on-disk format** ([`format`]): a CRC-framed manifest
//!   per image (header, region table, chunk references, inline plugin
//!   payloads) plus content-addressed chunk files holding the page data.
//!   Any single flipped byte anywhere in the store is detected on read.
//! * **Parallel writer pipeline** ([`writer`]): dirty pages are chunked
//!   along their runs (`crac_addrspace::page_runs`), then hashed and
//!   encoded on scoped worker threads; optional run-length compression
//!   ([`codec`]) is kept per chunk only when it shrinks the data.
//! * **Content-hash dedup / incremental checkpoints**: chunks are named by
//!   a 128-bit content hash, so a checkpoint taken after a small mutation
//!   writes only the chunks covering changed pages; `WriteOptions::parent`
//!   records the checkpoint lineage.  Manifests always describe the full
//!   image, so restore never chains through parents.
//! * **Verifying reader** ([`reader`]): rebuilds a byte-identical
//!   `CheckpointImage`, recomputing every CRC and content hash on the way.
//!
//! The [`CoordinatorStoreExt`] trait stitches the store into the DMTCP
//! coordinator (`checkpoint_to_store` / `restart_from_store`); `crac-core`
//! builds its `CracProcess` disk paths on top of that.

pub mod chunk;
pub mod codec;
pub mod coordext;
pub mod error;
pub mod format;
pub mod hash;
pub mod reader;
pub mod store;
#[doc(hidden)]
pub mod testutil;
pub mod writer;

pub use codec::Compression;
pub use coordext::CoordinatorStoreExt;
pub use error::StoreError;
pub use hash::ContentHash;
pub use reader::ReadStats;
pub use store::{ImageId, ImageInfo, ImageStore, StoreStats};
pub use writer::{WriteOptions, WriteStats};
