//! The store: a directory of content-addressed chunks plus image manifests.
//!
//! ```text
//! <root>/
//!   chunks/<32-hex-content-hash>.chk    shared, content-addressed
//!   images/<16-hex-image-id>.crimg      one manifest per checkpoint
//! ```
//!
//! The store is cheap to reopen: `open` scans the two directories to rebuild
//! the chunk index and the next image id, so a store outlives the process
//! that wrote it — the "persistent" in persistent image store.
//!
//! **Concurrency**: one `ImageStore` value is safe to share across threads
//! (`&self` methods; the index is mutex-protected, chunk files are
//! content-addressed and written via unique temp names).  Concurrent
//! *processes* writing one store directory are not coordinated: image-id
//! allocation is per-process, so a second writer process can reuse ids and
//! replace the first's manifests (chunk data is never corrupted).  Run one
//! writer process per store; cross-process locking is a ROADMAP item.

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crac_dmtcp::CheckpointImage;
use parking_lot::Mutex;

use crate::error::StoreError;
use crate::format::Manifest;
use crate::hash::ContentHash;
use crate::reader::{self, ReadStats};
use crate::writer::{self, WriteOptions, WriteStats};

/// Identifier of a stored image.  Ids start at 1 and are monotonically
/// increasing per store; 0 is reserved as the "no parent" sentinel on disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ImageId(pub u64);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img-{:016x}", self.0)
    }
}

/// Summary of one stored image, as listed by [`ImageStore::list_images`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageInfo {
    /// The image's id.
    pub id: ImageId,
    /// Parent image if the checkpoint was incremental.
    pub parent: Option<ImageId>,
    /// Virtual time the checkpoint was taken.
    pub taken_at_ns: u64,
    /// Number of saved regions.
    pub regions: usize,
    /// Logical (uncompressed) image size in bytes.
    pub logical_bytes: u64,
    /// Distinct chunks the manifest references.
    pub chunk_refs: usize,
}

/// Aggregate store occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Stored images (manifests).
    pub images: usize,
    /// Distinct chunks in the store.
    pub chunks: usize,
    /// Total on-disk bytes of all chunk files.
    pub chunk_bytes: u64,
}

struct StoreIndex {
    known_chunks: HashSet<ContentHash>,
    next_image: u64,
}

/// A persistent, deduplicating checkpoint-image store rooted at a directory.
pub struct ImageStore {
    root: PathBuf,
    chunks_dir: PathBuf,
    images_dir: PathBuf,
    index: Mutex<StoreIndex>,
}

impl ImageStore {
    /// Opens (creating if necessary) a store rooted at `root`, rebuilding
    /// the in-memory index from the directory contents.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let chunks_dir = root.join("chunks");
        let images_dir = root.join("images");
        fs::create_dir_all(&chunks_dir).map_err(|e| StoreError::io(&chunks_dir, e))?;
        fs::create_dir_all(&images_dir).map_err(|e| StoreError::io(&images_dir, e))?;

        let mut known_chunks = HashSet::new();
        for entry in fs::read_dir(&chunks_dir).map_err(|e| StoreError::io(&chunks_dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&chunks_dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".chk") {
                if let Some(hash) = ContentHash::from_hex(stem) {
                    known_chunks.insert(hash);
                }
            }
        }
        let mut next_image = 1u64;
        for entry in fs::read_dir(&images_dir).map_err(|e| StoreError::io(&images_dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&images_dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".crimg") {
                if let Ok(id) = u64::from_str_radix(stem, 16) {
                    next_image = next_image.max(id + 1);
                }
            }
        }

        Ok(Self {
            root,
            chunks_dir,
            images_dir,
            index: Mutex::new(StoreIndex {
                known_chunks,
                next_image,
            }),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Writes a checkpoint image, returning its new id and write stats.
    ///
    /// Chunks whose content already exists in the store (from any previous
    /// image) are not rewritten; with `opts.parent` set this is what makes a
    /// checkpoint *incremental* — only the chunks covering changed pages
    /// cost I/O.
    pub fn write_image(
        &self,
        image: &CheckpointImage,
        opts: &WriteOptions,
    ) -> Result<(ImageId, WriteStats), StoreError> {
        let (manifest, stats) = writer::write_image(self, image, opts)?;
        Ok((manifest.image_id, stats))
    }

    /// Reads and fully verifies image `id`, reconstructing the checkpoint
    /// byte for byte.
    pub fn read_image(&self, id: ImageId) -> Result<(CheckpointImage, ReadStats), StoreError> {
        reader::read_image(self, id)
    }

    /// Summarises one stored image from its manifest.
    pub fn image_info(&self, id: ImageId) -> Result<ImageInfo, StoreError> {
        let manifest = self.load_manifest(id)?;
        Ok(Self::info_of(&manifest))
    }

    /// Lists all stored images, ordered by id.
    pub fn list_images(&self) -> Result<Vec<ImageInfo>, StoreError> {
        let mut ids: Vec<ImageId> = Vec::new();
        for entry in
            fs::read_dir(&self.images_dir).map_err(|e| StoreError::io(&self.images_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.images_dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".crimg") {
                if let Ok(id) = u64::from_str_radix(stem, 16) {
                    ids.push(ImageId(id));
                }
            }
        }
        ids.sort();
        ids.into_iter().map(|id| self.image_info(id)).collect()
    }

    /// Aggregate occupancy of the store.  Counts directory entries only —
    /// it never parses manifests, so it stays cheap on large stores.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut images = 0usize;
        for entry in
            fs::read_dir(&self.images_dir).map_err(|e| StoreError::io(&self.images_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.images_dir, e))?;
            if entry.file_name().to_string_lossy().ends_with(".crimg") {
                images += 1;
            }
        }
        let mut chunks = 0usize;
        let mut chunk_bytes = 0u64;
        for entry in
            fs::read_dir(&self.chunks_dir).map_err(|e| StoreError::io(&self.chunks_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.chunks_dir, e))?;
            if entry.file_name().to_string_lossy().ends_with(".chk") {
                chunks += 1;
                chunk_bytes += entry
                    .metadata()
                    .map_err(|e| StoreError::io(&self.chunks_dir, e))?
                    .len();
            }
        }
        Ok(StoreStats {
            images,
            chunks,
            chunk_bytes,
        })
    }

    /// Returns `true` if image `id` exists in the store.
    pub fn contains_image(&self, id: ImageId) -> bool {
        self.image_path(id).exists()
    }

    /// Returns `true` if a chunk with this content is stored.
    pub fn contains_chunk(&self, hash: ContentHash) -> bool {
        self.index.lock().known_chunks.contains(&hash)
    }

    // -- crate-internal plumbing used by the writer/reader --------------

    pub(crate) fn image_path(&self, id: ImageId) -> PathBuf {
        self.images_dir.join(format!("{:016x}.crimg", id.0))
    }

    pub(crate) fn chunk_path(&self, hash: ContentHash) -> PathBuf {
        self.chunks_dir.join(format!("{}.chk", hash.to_hex()))
    }

    pub(crate) fn commit_chunks(&self, hashes: &[ContentHash]) {
        let mut index = self.index.lock();
        index.known_chunks.extend(hashes.iter().copied());
    }

    pub(crate) fn allocate_image_id(&self) -> ImageId {
        let mut index = self.index.lock();
        let id = ImageId(index.next_image);
        index.next_image += 1;
        id
    }

    pub(crate) fn load_manifest(&self, id: ImageId) -> Result<Manifest, StoreError> {
        let path = self.image_path(id);
        if !path.exists() {
            return Err(StoreError::UnknownImage(id));
        }
        reader::load_manifest_file(&path)
    }

    pub(crate) fn manifest_size(&self, id: ImageId) -> Result<u64, StoreError> {
        let path = self.image_path(id);
        fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| StoreError::io(&path, e))
    }

    fn info_of(manifest: &Manifest) -> ImageInfo {
        ImageInfo {
            id: manifest.image_id,
            parent: manifest.parent,
            taken_at_ns: manifest.taken_at_ns,
            regions: manifest.regions.len(),
            logical_bytes: manifest.logical_size(),
            chunk_refs: manifest.chunk_refs().count(),
        }
    }
}
