//! The store: a directory of content-addressed chunks plus image manifests.
//!
//! ```text
//! <root>/
//!   store.lock                          writer-process lock (PID-keyed)
//!   chunks/<32-hex-content-hash>.chk    shared, content-addressed
//!   images/<16-hex-image-id>.crimg      one manifest per checkpoint
//! ```
//!
//! The store is cheap to reopen: `open` scans the two directories to rebuild
//! the chunk index and the next image id, so a store outlives the process
//! that wrote it — the "persistent" in persistent image store.
//!
//! **Concurrency**: one `ImageStore` value is safe to share across threads
//! (`&self` methods; the index is mutex-protected, chunk files are
//! content-addressed and written via unique temp names).  Across
//! *processes*, [`ImageStore::open`] claims the `store.lock` file (see
//! [`crate::lock`]): a second live writer process is refused, a crashed
//! writer's stale lock is stolen, and [`ImageStore::open_read_only`]
//! bypasses the lock for restore-side consumers.
//!
//! **Writing** goes through the streaming pipeline
//! ([`ImageStore::stream_image`] / [`crate::writer::StreamWriter`]); the
//! materialised [`ImageStore::write_image`] is a convenience wrapper that
//! drives a [`CheckpointImage`] through the same pipeline.
//!
//! **Deleting** ([`ImageStore::delete_image`], [`ImageStore::retain_last`])
//! reclaims chunks by reachability: after the doomed manifests are gone,
//! every chunk no surviving manifest references is removed — including
//! orphans left by aborted writes.  Deletion is refused while a streaming
//! write is in flight, so a half-written image's chunks can never be swept
//! out from under it.

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crac_dmtcp::CheckpointImage;
use crac_obs::{EventKind, ObsRegistry};
use crac_sync::{Mutex, RwLock};

use crate::error::StoreError;
use crate::format::{ChunkFile, Manifest};
use crate::hash::ContentHash;
use crate::lock;
use crate::reader::{self, ReadStats};
use crate::stream::RegionSource;
use crate::writer::{StreamWriter, WriteOptions, WriteStats};

/// Identifier of a stored image.  Ids start at 1 and are monotonically
/// increasing per store; 0 is reserved as the "no parent" sentinel on disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ImageId(pub u64);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img-{:016x}", self.0)
    }
}

/// Summary of one stored image, as listed by [`ImageStore::list_images`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageInfo {
    /// The image's id.
    pub id: ImageId,
    /// Parent image if the checkpoint was incremental.
    pub parent: Option<ImageId>,
    /// Virtual time the checkpoint was taken.
    pub taken_at_ns: u64,
    /// Number of saved regions.
    pub regions: usize,
    /// Logical (uncompressed) image size in bytes.
    pub logical_bytes: u64,
    /// Distinct chunks the manifest references.
    pub chunk_refs: usize,
}

/// Aggregate store occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Stored images (manifests).
    pub images: usize,
    /// Distinct chunks in the store.
    pub chunks: usize,
    /// Total on-disk bytes of all chunk files.
    pub chunk_bytes: u64,
}

/// What one [`ImageStore::delete_image`] / [`ImageStore::retain_last`]
/// reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Manifests deleted.
    pub images_deleted: usize,
    /// Chunk files removed (unreferenced after the manifests went away,
    /// including orphans of aborted writes).
    pub chunks_deleted: usize,
    /// On-disk bytes those chunk files occupied.
    pub chunk_bytes_reclaimed: u64,
}

pub(crate) struct StoreIndex {
    known_chunks: HashSet<ContentHash>,
    next_image: u64,
}

impl StoreIndex {
    pub(crate) fn contains(&self, hash: ContentHash) -> bool {
        self.known_chunks.contains(&hash)
    }
}

/// The chunk index handle shared with pipeline worker threads.
pub(crate) type SharedIndex = Arc<Mutex<StoreIndex>>;

/// A persistent, deduplicating checkpoint-image store rooted at a directory.
pub struct ImageStore {
    root: PathBuf,
    chunks_dir: PathBuf,
    images_dir: PathBuf,
    index: SharedIndex,
    read_only: bool,
    /// Serialises streaming writes against deletion *without* a TOCTOU
    /// window: every in-flight [`StreamWriter`] holds a read guard for its
    /// whole lifetime, and deletion takes (tries) the write side — so a
    /// write beginning concurrently with a delete either starts before the
    /// sweep (delete returns `Busy`) or after it (and sees the post-sweep
    /// index), never in between.
    writer_gate: RwLock<()>,
    /// The store's observability registry: every write/read pipeline run
    /// folds its metrics in here, GC sweeps and lock steals record events,
    /// and the TCP server's `Stats` op renders it.  Swappable
    /// ([`ImageStore::adopt_obs`]) so a coordinator-owned registry can
    /// observe the whole checkpoint→replicate→restore flow through one
    /// handle.
    obs: Mutex<ObsRegistry>,
}

impl ImageStore {
    /// Opens (creating if necessary) a store rooted at `root` for writing:
    /// claims the cross-process writer lock and rebuilds the in-memory
    /// index from the directory contents.
    ///
    /// Fails with [`StoreError::Locked`] if another live process holds the
    /// store open for writing.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let store = Self::open_unlocked(root.as_ref(), false)?;
        // A writer that crashed between staging its lock-claim file and
        // removing it leaves that file behind forever (the chunk-dir
        // `.tmp` sweep does not cover the store root); clear dead
        // claimants' litter before claiming ourselves.
        lock::sweep_stale_claims(&store.root);
        let steals = lock::acquire(&store.root)?;
        if steals > 0 {
            let obs = store.obs();
            obs.counter("crac_store_lock_steals").add(steals as u64);
            obs.event(
                EventKind::LockSteal,
                format!("root={} stolen={steals}", store.root.display()),
            );
        }
        Ok(store)
    }

    /// Opens a store without claiming the writer lock; every write path
    /// ([`ImageStore::stream_image`], [`ImageStore::write_image`],
    /// [`ImageStore::delete_image`], …) fails with [`StoreError::Busy`].
    ///
    /// Use this for restore-side consumers that must coexist with a live
    /// writer process.
    pub fn open_read_only(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_unlocked(root.as_ref(), true)
    }

    fn open_unlocked(root: &Path, read_only: bool) -> Result<Self, StoreError> {
        let root = root.to_path_buf();
        let chunks_dir = root.join("chunks");
        let images_dir = root.join("images");
        fs::create_dir_all(&chunks_dir).map_err(|e| StoreError::io(&chunks_dir, e))?;
        fs::create_dir_all(&images_dir).map_err(|e| StoreError::io(&images_dir, e))?;

        let mut known_chunks = HashSet::new();
        for entry in fs::read_dir(&chunks_dir).map_err(|e| StoreError::io(&chunks_dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&chunks_dir, e))?;
            if let Some(hash) = chunk_hash_of(&entry.file_name().to_string_lossy()) {
                known_chunks.insert(hash);
            }
        }
        let mut next_image = 1u64;
        for entry in fs::read_dir(&images_dir).map_err(|e| StoreError::io(&images_dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&images_dir, e))?;
            if let Some(id) = image_id_of(&entry.file_name().to_string_lossy()) {
                next_image = next_image.max(id.0 + 1);
            }
        }

        Ok(Self {
            root,
            chunks_dir,
            images_dir,
            index: Arc::new(Mutex::new(
                "imagestore.store.index",
                StoreIndex {
                    known_chunks,
                    next_image,
                },
            )),
            read_only,
            writer_gate: RwLock::new("imagestore.store.writer_gate", ()),
            obs: Mutex::new("imagestore.store.obs", ObsRegistry::new()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's observability registry (a cheap shared handle): write
    /// and read pipeline totals, GC/lock events, everything
    /// [`ObsRegistry::render_text`] exposes.
    pub fn obs(&self) -> ObsRegistry {
        self.obs.lock().clone()
    }

    /// Replaces the store's registry with `reg`, so an externally owned
    /// registry — typically the coordinator's — observes every operation
    /// this store performs from here on.  Metrics already recorded stay
    /// with the old registry.
    pub fn adopt_obs(&self, reg: ObsRegistry) {
        *self.obs.lock() = reg;
    }

    /// Streams one checkpoint image into the store through the writer
    /// pipeline.
    ///
    /// `produce` receives the [`StreamWriter`] (the store's canonical
    /// [`ChunkSink`](crate::stream::ChunkSink)) and pushes regions, runs
    /// and payloads into it; encoding and chunk-file I/O proceed on
    /// background threads *while the producer is still walking memory*.
    /// When the closure returns `Ok`, the pipeline is drained and the
    /// manifest published; on `Err` nothing is published and the same
    /// error is returned.
    ///
    /// Returns the new image id, the closure's result, and the write
    /// stats — whose [`WriteStats::peak_buffered_bytes`] demonstrates the
    /// bounded-memory property ([`crate::writer::stream_buffer_bound`]).
    pub fn stream_image<T>(
        &self,
        opts: &WriteOptions,
        produce: impl FnOnce(&mut StreamWriter<'_>) -> Result<T, StoreError>,
    ) -> Result<(ImageId, T, WriteStats), StoreError> {
        let mut writer = StreamWriter::new(self, *opts)?;
        let value = produce(&mut writer)?;
        let (manifest, stats) = writer.finish()?;
        Ok((manifest.image_id, value, stats))
    }

    /// Writes a materialised checkpoint image, returning its new id and
    /// write stats.  This is [`ImageStore::stream_image`] driven by the
    /// image itself (see [`RegionSource`]); in-memory users keep this
    /// API, disk-bound producers should stream and skip the
    /// materialisation entirely.
    ///
    /// Chunks whose content already exists in the store (from any previous
    /// image) are not rewritten; with `opts.parent` set this is what makes a
    /// checkpoint *incremental* — only the chunks covering changed pages
    /// cost I/O.
    pub fn write_image(
        &self,
        image: &CheckpointImage,
        opts: &WriteOptions,
    ) -> Result<(ImageId, WriteStats), StoreError> {
        let (id, (), stats) = self.stream_image(opts, |writer| {
            image.stream_into(writer)?;
            writer.set_taken_at(image.taken_at_ns);
            Ok(())
        })?;
        Ok((id, stats))
    }

    /// Reads and fully verifies image `id`, reconstructing the checkpoint
    /// byte for byte.  This is the streaming reader
    /// ([`ImageStore::stream_restore`]) driven into a materialising sink;
    /// disk-bound consumers should stream and skip the materialisation
    /// entirely.
    pub fn read_image(&self, id: ImageId) -> Result<(CheckpointImage, ReadStats), StoreError> {
        reader::read_image(self, id)
    }

    /// Opens image `id` for a streaming restore: loads and CRC-verifies
    /// the manifest (metadata only), returning a
    /// [`StreamReader`](crate::reader::StreamReader) whose
    /// [`ChunkSource::stream_out`](crate::stream::ChunkSource::stream_out)
    /// fetches and verifies chunks on parallel workers and splices their
    /// page runs into a [`RegionSink`](crate::stream::RegionSink) as they
    /// arrive — peak buffered payload is bounded by
    /// [`crate::reader::restore_buffer_bound`], never the image size.
    pub fn stream_restore(&self, id: ImageId) -> Result<reader::StreamReader<'_>, StoreError> {
        reader::StreamReader::new(self, id)
    }

    /// Deletes image `id` and reclaims every chunk no surviving manifest
    /// references.
    ///
    /// Manifests are self-contained (restore never walks parent chains),
    /// so deleting a parent never breaks its children — the children's
    /// recorded lineage simply dangles, which only bookkeeping sees.
    /// Fails with [`StoreError::Busy`] while a streaming write is in
    /// flight in this process.
    pub fn delete_image(&self, id: ImageId) -> Result<DeleteStats, StoreError> {
        self.delete_images(&[id])
    }

    /// Retention policy: keeps the newest `keep` images (by id) and
    /// deletes the rest, returning the deleted ids and what the sweep
    /// reclaimed.
    ///
    /// A half-failed batch does not lose its progress: the
    /// [`StoreError::Partial`] it returns carries the ids that *were*
    /// deleted and the [`DeleteStats`] of everything the sweep reclaimed.
    pub fn retain_last(&self, keep: usize) -> Result<(Vec<ImageId>, DeleteStats), StoreError> {
        let mut ids = self.image_ids()?;
        let cut = ids.len().saturating_sub(keep);
        ids.truncate(cut);
        let stats = self.delete_images(&ids)?;
        Ok((ids, stats))
    }

    fn delete_images(&self, ids: &[ImageId]) -> Result<DeleteStats, StoreError> {
        self.delete_images_with(ids, |path| fs::remove_file(path))
    }

    /// [`ImageStore::delete_images`] with an injectable manifest remover,
    /// so tests can simulate a removal failing halfway through a batch.
    ///
    /// Failures do **not** abandon the batch: every removable manifest is
    /// removed, the reachability sweep runs whenever anything was deleted
    /// (otherwise the deleted manifests' now-unreferenced chunks would
    /// leak until the *next* successful delete), and all failures are
    /// aggregated into a [`StoreError::Partial`] that carries the deleted
    /// ids and the [`DeleteStats`] — the progress is reported, not
    /// discarded.
    fn delete_images_with(
        &self,
        ids: &[ImageId],
        mut remove: impl FnMut(&Path) -> std::io::Result<()>,
    ) -> Result<DeleteStats, StoreError> {
        self.check_writable()?;
        // Exclude every in-flight streaming write for the whole deletion,
        // sweep included: a concurrent write could otherwise dedup against
        // a chunk this sweep is about to remove.
        let _writers_excluded = self.writer_gate.try_write().ok_or_else(|| {
            StoreError::busy("cannot delete images while a streaming write is in flight")
        })?;
        for &id in ids {
            if !self.contains_image(id) {
                return Err(StoreError::UnknownImage(id));
            }
        }
        let mut stats = DeleteStats::default();
        let mut deleted: Vec<ImageId> = Vec::new();
        let mut errors: Vec<StoreError> = Vec::new();
        for &id in ids {
            let path = self.image_path(id);
            match remove(&path) {
                Ok(()) => {
                    stats.images_deleted += 1;
                    deleted.push(id);
                }
                // Unknown ids were rejected above, so NotFound here means
                // the manifest vanished mid-batch (an external actor): the
                // goal state — count it so the sweep still runs.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    stats.images_deleted += 1;
                    deleted.push(id);
                }
                Err(e) => errors.push(StoreError::io(&path, e)),
            }
        }
        if stats.images_deleted > 0 {
            if let Err(e) = self.sweep_unreferenced(&mut stats) {
                errors.push(e);
            }
        }
        if errors.is_empty() {
            Ok(stats)
        } else {
            Err(StoreError::partial(errors, stats, deleted))
        }
    }

    /// Removes every chunk file no surviving manifest references and
    /// rebuilds the chunk index from what was kept.
    ///
    /// This is reachability-based reference counting evaluated lazily: the
    /// per-manifest counts are implicit in the manifests themselves, so
    /// there is no side-car refcount file to corrupt or drift.  If any
    /// surviving manifest is unreadable the sweep aborts without deleting
    /// anything — never trade a corrupt manifest for missing chunks.
    fn sweep_unreferenced(&self, stats: &mut DeleteStats) -> Result<(), StoreError> {
        let (chunks_before, bytes_before) = (stats.chunks_deleted, stats.chunk_bytes_reclaimed);
        let mut live: HashSet<ContentHash> = HashSet::new();
        for id in self.image_ids()? {
            let manifest = self.load_manifest(id)?;
            live.extend(manifest.chunk_refs().map(|c| c.hash));
        }
        let mut kept: HashSet<ContentHash> = HashSet::new();
        for entry in
            fs::read_dir(&self.chunks_dir).map_err(|e| StoreError::io(&self.chunks_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.chunks_dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(hash) = chunk_hash_of(&name) else {
                // `.tmp` litter from crashed writers is fair game too.
                if name.contains(".tmp.") {
                    let _ = fs::remove_file(entry.path());
                }
                continue;
            };
            if live.contains(&hash) {
                kept.insert(hash);
            } else {
                let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
                stats.chunks_deleted += 1;
                stats.chunk_bytes_reclaimed += bytes;
            }
        }
        self.index.lock().known_chunks = kept;
        let (chunks, bytes) = (
            stats.chunks_deleted - chunks_before,
            stats.chunk_bytes_reclaimed - bytes_before,
        );
        let obs = self.obs();
        obs.counter("crac_store_gc_sweeps").inc();
        obs.counter("crac_store_gc_chunks_deleted")
            .add(chunks as u64);
        obs.counter("crac_store_gc_bytes_reclaimed").add(bytes);
        obs.event(
            EventKind::GcSweep,
            format!("chunks_deleted={chunks} bytes_reclaimed={bytes}"),
        );
        Ok(())
    }

    /// Summarises one stored image from its manifest.
    pub fn image_info(&self, id: ImageId) -> Result<ImageInfo, StoreError> {
        let manifest = self.load_manifest(id)?;
        Ok(Self::info_of(&manifest))
    }

    /// Lists all stored images, ordered by id.
    pub fn list_images(&self) -> Result<Vec<ImageInfo>, StoreError> {
        self.image_ids()?
            .into_iter()
            .map(|id| self.image_info(id))
            .collect()
    }

    /// Aggregate occupancy of the store.  Counts directory entries only —
    /// it never parses manifests, so it stays cheap on large stores.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut images = 0usize;
        for entry in
            fs::read_dir(&self.images_dir).map_err(|e| StoreError::io(&self.images_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.images_dir, e))?;
            if entry.file_name().to_string_lossy().ends_with(".crimg") {
                images += 1;
            }
        }
        let mut chunks = 0usize;
        let mut chunk_bytes = 0u64;
        for entry in
            fs::read_dir(&self.chunks_dir).map_err(|e| StoreError::io(&self.chunks_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.chunks_dir, e))?;
            if entry.file_name().to_string_lossy().ends_with(".chk") {
                chunks += 1;
                chunk_bytes += entry
                    .metadata()
                    .map_err(|e| StoreError::io(&self.chunks_dir, e))?
                    .len();
            }
        }
        Ok(StoreStats {
            images,
            chunks,
            chunk_bytes,
        })
    }

    /// Returns `true` if image `id` exists in the store.
    pub fn contains_image(&self, id: ImageId) -> bool {
        self.image_path(id).exists()
    }

    /// Returns `true` if a chunk with this content is stored.
    pub fn contains_chunk(&self, hash: ContentHash) -> bool {
        self.index.lock().contains(hash)
    }

    /// Ingests one chunk delivered as verbatim chunk-*file* bytes (header,
    /// CRC, encoded payload), verifying it end to end — CRC, decode, and
    /// content hash against `hash` — before anything lands on disk.
    /// Returns `false` (and writes nothing) if the chunk is already
    /// present.
    ///
    /// This is how replicated chunks enter a store: the bytes appear under
    /// their content-hash name only after full verification and an atomic
    /// rename, so a crashed or lying sender can never leave a torn chunk
    /// visible.
    pub(crate) fn ingest_chunk_file(
        &self,
        hash: ContentHash,
        file_bytes: &[u8],
    ) -> Result<bool, StoreError> {
        self.check_writable()?;
        // Hold the writer gate like any other write: a concurrent deletion
        // sweep must not race the index commit below.  (The gate is not
        // re-entrant — callers already holding it use the `_locked`
        // variant directly.)
        let _writing = self.writer_guard();
        self.ingest_chunk_file_locked(hash, file_bytes)
    }

    /// [`ImageStore::ingest_chunk_file`] for callers that already hold the
    /// writer gate for a larger operation (a whole `replicate_from` pull).
    pub(crate) fn ingest_chunk_file_locked(
        &self,
        hash: ContentHash,
        file_bytes: &[u8],
    ) -> Result<bool, StoreError> {
        self.check_writable()?;
        if self.contains_chunk(hash) {
            return Ok(false);
        }
        let path = self.chunk_path(hash);
        let view = ChunkFile::parse(file_bytes).map_err(|what| StoreError::corrupt(&path, what))?;
        let raw = crate::codec::decode(view.encoding, view.encoded, view.raw_len as usize)
            .ok_or_else(|| StoreError::corrupt(&path, "replicated chunk failed to decode"))?;
        let actual = ContentHash::of(&raw);
        if actual != hash {
            return Err(StoreError::corrupt(
                &path,
                format!("replicated chunk hashes to {actual}, expected {hash}"),
            ));
        }
        crate::writer::write_atomically(&path, file_bytes)?;
        self.commit_chunks(&[hash]);
        Ok(true)
    }

    /// Adopts a manifest replicated from another store: allocates a fresh
    /// local id, rewrites the manifest's identity (`image_id` becomes the
    /// local id, `parent` becomes `parent` — source-store lineage means
    /// nothing here), and publishes it atomically.
    ///
    /// Refuses (without writing) unless every chunk the manifest
    /// references is already present locally — the ship-chunks-first
    /// ordering that keeps a half-replicated image invisible: a manifest
    /// can never appear before the content it names.  The manifest's run
    /// geometry is fully validated first (the same checks a restore
    /// performs), so a lying peer cannot plant a visible-but-unrestorable
    /// image.
    pub(crate) fn adopt_manifest(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError> {
        self.check_writable()?;
        let _writing = self.writer_guard();
        self.adopt_manifest_locked(manifest_bytes, parent)
    }

    /// [`ImageStore::adopt_manifest`] for callers that already hold the
    /// writer gate.
    pub(crate) fn adopt_manifest_locked(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError> {
        self.check_writable()?;
        let incoming = self.images_dir.join("incoming");
        let mut manifest = Manifest::from_bytes(manifest_bytes)
            .map_err(|what| StoreError::corrupt(&incoming, what))?;
        // Validate run geometry exactly as a restore would (page-count
        // overflows, runs exceeding their region, conflicting lengths):
        // reject the image *before* publication instead of letting every
        // later restore fail on it.
        reader::build_fetch_plan(&manifest, &incoming)?;
        let mut checked: HashSet<ContentHash> = HashSet::new();
        for chunk in manifest.chunk_refs() {
            if !self.contains_chunk(chunk.hash) {
                return Err(StoreError::MissingChunk {
                    hash: chunk.hash.to_hex(),
                });
            }
            // The manifest's declared length must match what the stored
            // chunk actually decodes to (header peek — cheap), or the
            // image would be visible yet unrestorable.  build_fetch_plan
            // pinned per-hash consistency, so once per distinct hash.
            if checked.insert(chunk.hash) {
                let actual = self.stored_chunk_raw_len(chunk.hash)?;
                if actual != chunk.raw_len {
                    return Err(StoreError::corrupt(
                        &incoming,
                        format!(
                            "manifest declares chunk {} as {} bytes but the stored chunk holds {actual}",
                            chunk.hash, chunk.raw_len
                        ),
                    ));
                }
            }
        }
        if let Some(p) = parent {
            if !self.contains_image(p) {
                return Err(StoreError::UnknownImage(p));
            }
        }
        let id = self.allocate_image_id();
        manifest.image_id = id;
        manifest.parent = parent;
        crate::writer::write_atomically(&self.image_path(id), &manifest.to_bytes())?;
        Ok(id)
    }

    /// Reads chunk `hash`'s verbatim file bytes, classifying a vanished
    /// file as [`StoreError::MissingChunk`] — the shared serving path of
    /// [`crate::transport::LoopbackTransport`] and the TCP server
    /// ([`crate::net::server`]), so a `get_chunk` racing chunk GC yields
    /// the *same* error class no matter which transport served it.
    pub(crate) fn read_chunk_file_bytes(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        let path = self.chunk_path(hash);
        match fs::read(&path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::MissingChunk {
                hash: hash.to_hex(),
            }),
            Err(e) => Err(StoreError::io(&path, e)),
        }
    }

    /// Reads image `id`'s verbatim manifest bytes, classifying a missing
    /// manifest as [`StoreError::UnknownImage`] (see
    /// [`ImageStore::read_chunk_file_bytes`] for why the classification is
    /// centralised).
    pub(crate) fn read_manifest_bytes(&self, id: ImageId) -> Result<Vec<u8>, StoreError> {
        let path = self.image_path(id);
        match fs::read(&path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::UnknownImage(id)),
            Err(e) => Err(StoreError::io(&path, e)),
        }
    }

    /// Lists the store's image ids, ascending — the `list_manifests`
    /// serving path.
    pub(crate) fn manifest_ids(&self) -> Result<Vec<ImageId>, StoreError> {
        self.image_ids()
    }

    /// Raw (decoded) length the stored chunk `hash` declares, read from
    /// its fixed file header without touching the payload.
    fn stored_chunk_raw_len(&self, hash: ContentHash) -> Result<u64, StoreError> {
        use std::io::Read;
        let path = self.chunk_path(hash);
        let mut prefix = [0u8; ChunkFile::HEADER_PREFIX_LEN];
        let mut file = fs::File::open(&path).map_err(|e| StoreError::io(&path, e))?;
        file.read_exact(&mut prefix)
            .map_err(|e| StoreError::io(&path, e))?;
        let (_, raw_len) =
            ChunkFile::parse_header(&prefix).map_err(|what| StoreError::corrupt(&path, what))?;
        Ok(raw_len)
    }

    // -- crate-internal plumbing used by the writer/reader --------------

    fn image_ids(&self) -> Result<Vec<ImageId>, StoreError> {
        let mut ids: Vec<ImageId> = Vec::new();
        for entry in
            fs::read_dir(&self.images_dir).map_err(|e| StoreError::io(&self.images_dir, e))?
        {
            let entry = entry.map_err(|e| StoreError::io(&self.images_dir, e))?;
            if let Some(id) = image_id_of(&entry.file_name().to_string_lossy()) {
                ids.push(id);
            }
        }
        ids.sort();
        Ok(ids)
    }

    pub(crate) fn check_writable(&self) -> Result<(), StoreError> {
        if self.read_only {
            return Err(StoreError::busy("store was opened read-only"));
        }
        Ok(())
    }

    pub(crate) fn index_handle(&self) -> SharedIndex {
        Arc::clone(&self.index)
    }

    pub(crate) fn chunks_dir(&self) -> &Path {
        &self.chunks_dir
    }

    /// Registers a streaming write for its whole lifetime: while any
    /// returned guard is alive, deletion is refused.
    pub(crate) fn writer_guard(&self) -> crac_sync::RwLockReadGuard<'_, ()> {
        self.writer_gate.read()
    }

    pub(crate) fn image_path(&self, id: ImageId) -> PathBuf {
        self.images_dir.join(format!("{:016x}.crimg", id.0))
    }

    pub(crate) fn chunk_path(&self, hash: ContentHash) -> PathBuf {
        self.chunks_dir.join(format!("{}.chk", hash.to_hex()))
    }

    pub(crate) fn commit_chunks(&self, hashes: &[ContentHash]) {
        let mut index = self.index.lock();
        index.known_chunks.extend(hashes.iter().copied());
    }

    pub(crate) fn allocate_image_id(&self) -> ImageId {
        let mut index = self.index.lock();
        let id = ImageId(index.next_image);
        index.next_image += 1;
        id
    }

    pub(crate) fn load_manifest(&self, id: ImageId) -> Result<Manifest, StoreError> {
        let path = self.image_path(id);
        if !path.exists() {
            return Err(StoreError::UnknownImage(id));
        }
        reader::load_manifest_file(&path)
    }

    pub(crate) fn manifest_size(&self, id: ImageId) -> Result<u64, StoreError> {
        let path = self.image_path(id);
        fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| StoreError::io(&path, e))
    }

    fn info_of(manifest: &Manifest) -> ImageInfo {
        ImageInfo {
            id: manifest.image_id,
            parent: manifest.parent,
            taken_at_ns: manifest.taken_at_ns,
            regions: manifest.regions.len(),
            logical_bytes: manifest.logical_size(),
            chunk_refs: manifest.chunk_refs().count(),
        }
    }
}

/// Parses `"<32-hex>.chk"` into a content hash.
fn chunk_hash_of(name: &str) -> Option<ContentHash> {
    ContentHash::from_hex(name.strip_suffix(".chk")?)
}

/// Parses `"<16-hex>.crimg"` into an image id.
fn image_id_of(name: &str) -> Option<ImageId> {
    u64::from_str_radix(name.strip_suffix(".crimg")?, 16)
        .ok()
        .map(ImageId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crac_addrspace::{Addr, Prot, PAGE_SIZE};
    use crac_dmtcp::SavedRegion;

    /// An image whose chunks are unique to `seed`.
    fn image(seed: u8) -> CheckpointImage {
        let mut img = CheckpointImage {
            taken_at_ns: seed as u64,
            ..Default::default()
        };
        img.regions.push(SavedRegion {
            start: Addr(0x4000_0000_0000),
            len: 8 * PAGE_SIZE,
            prot: Prot::RW,
            label: format!("del-{seed}"),
            pages: (0..8)
                .map(|i| {
                    let mut page = vec![seed; PAGE_SIZE as usize];
                    page[..8].copy_from_slice(&(((seed as u64) << 32) | i).to_le_bytes());
                    (i, page)
                })
                .collect(),
        });
        img
    }

    /// Regression (PR 2 bug): a `remove_file` failure mid-batch used to
    /// abort the deletion, skipping the sweep — the already-deleted
    /// manifests' chunks leaked until the next successful delete.  The
    /// batch must now finish, run the sweep, and aggregate the errors.
    #[test]
    fn partial_delete_failure_still_sweeps_what_was_deleted() {
        let dir = TempDir::new("gc-partial");
        let store = ImageStore::open(dir.path()).unwrap();
        let (a, _) = store.write_image(&image(1), &WriteOptions::full()).unwrap();
        let (b, _) = store.write_image(&image(2), &WriteOptions::full()).unwrap();
        let (c, _) = store.write_image(&image(3), &WriteOptions::full()).unwrap();
        let before = store.stats().unwrap();
        assert_eq!(before.images, 3);

        // Removal of `b` fails; `a` and `c` must still go, and the sweep
        // must reclaim their chunks immediately.
        let blocked = store.image_path(b);
        let err = store
            .delete_images_with(&[a, b, c], |path| {
                if path == blocked {
                    Err(std::io::Error::other("injected removal failure"))
                } else {
                    fs::remove_file(path)
                }
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("injected removal failure"),
            "got: {err}"
        );
        // Regression (PR 4 bug): the error used to discard the batch's
        // progress — callers could not tell what *was* reclaimed.  The
        // `Partial` variant now carries the delete stats and the ids.
        match &err {
            StoreError::Partial {
                errors,
                stats,
                deleted,
            } => {
                assert_eq!(errors.len(), 1);
                assert_eq!(stats.images_deleted, 2, "a and c were still deleted");
                assert_eq!(deleted, &vec![a, c]);
                assert!(
                    stats.chunks_deleted > 0 && stats.chunk_bytes_reclaimed > 0,
                    "the sweep's progress is reported too: {stats:?}"
                );
            }
            other => panic!("expected Partial carrying progress, got {other:?}"),
        }

        let after = store.stats().unwrap();
        assert_eq!(after.images, 1, "the two removable manifests are gone");
        assert!(
            after.chunks < before.chunks,
            "sweep must reclaim the deleted images' chunks despite the failure"
        );
        // The survivor is intact and fully readable.
        let (back, _) = store.read_image(b).unwrap();
        assert_eq!(back.regions[0].label, "del-2");
        assert!(!store.contains_image(a));
        assert!(!store.contains_image(c));
    }

    /// Several failures in one batch aggregate into `Partial`, which still
    /// reports the one deletion that went through.
    #[test]
    fn multiple_delete_failures_aggregate() {
        let dir = TempDir::new("gc-partial-many");
        let store = ImageStore::open(dir.path()).unwrap();
        let (a, _) = store.write_image(&image(4), &WriteOptions::full()).unwrap();
        let (b, _) = store.write_image(&image(5), &WriteOptions::full()).unwrap();
        let (c, _) = store.write_image(&image(6), &WriteOptions::full()).unwrap();

        let err = store
            .delete_images_with(&[a, b, c], |path| {
                if path == store.image_path(c) {
                    fs::remove_file(path)
                } else {
                    Err(std::io::Error::other("injected"))
                }
            })
            .unwrap_err();
        match err {
            StoreError::Partial {
                errors,
                stats,
                deleted,
            } => {
                assert_eq!(errors.len(), 2);
                assert_eq!(stats.images_deleted, 1);
                assert_eq!(deleted, vec![c]);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        // `c` was deleted and swept regardless.
        assert!(!store.contains_image(c));
        assert_eq!(store.stats().unwrap().images, 2);
    }
}
