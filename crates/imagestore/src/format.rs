//! The on-disk binary formats: image manifests and chunk files.
//!
//! A stored checkpoint is one *manifest* (`images/<id>.crimg`) plus the
//! content-addressed *chunk files* (`chunks/<hash>.chk`) it references.
//! Every file is little-endian and CRC-32 framed so that any single
//! corrupted byte is detected at read time:
//!
//! ```text
//! manifest := magic "CRACSTR1" | version u32 | image_id u64 | parent u64
//!           | taken_at_ns u64 | compression u8
//!           | nregions u64 | region*
//!           | npayloads u64 | payload*
//!           | crc32 u32                       (over all preceding bytes)
//! region   := start u64 | len u64 | prot u8 | label_len u32 | label
//!           | nchunks u32 | chunk*
//! chunk    := nruns u32 | (first_page u64, count u32)* | hash u128
//!           | raw_len u64
//! payload  := name_len u32 | name | data_len u64 | data
//!
//! chunkfile := magic "CRACCHK1" | encoding u8 | raw_len u64
//!            | encoded_len u64 | crc32 u32    (over the encoded bytes)
//!            | encoded bytes
//! ```
//!
//! `parent` is 0 for a full checkpoint, or the parent's image id for an
//! incremental one (ids start at 1).  A manifest always describes the
//! *complete* image — incremental is purely a storage property (shared
//! chunks are not rewritten) — so restore never walks a parent chain.

use crac_addrspace::{PageRun, Prot};
use crac_dmtcp::ByteCursor;

use crate::codec::{Compression, Encoding};
use crate::hash::{crc32, ContentHash};
use crate::store::ImageId;

/// Magic bytes opening a manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"CRACSTR1";
/// Magic bytes opening a chunk file.
pub const CHUNK_MAGIC: &[u8; 8] = b"CRACCHK1";
/// Current manifest format version.
pub const FORMAT_VERSION: u32 = 1;

/// One chunk reference within a region: which pages it covers and the
/// content hash naming its bytes in the chunk store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Page runs (region-relative indices) in increasing order.
    pub runs: Vec<PageRun>,
    /// Content hash of the chunk's raw (decoded) bytes.
    pub hash: ContentHash,
    /// Raw byte length (`page count × PAGE_SIZE`).
    pub raw_len: u64,
}

/// One saved region in a manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionEntry {
    /// Restore address of the region.
    pub start: u64,
    /// Logical length in bytes.
    pub len: u64,
    /// Protection to restore.
    pub prot: Prot,
    /// Diagnostic label.
    pub label: String,
    /// The region's dirty pages, chunked.
    pub chunks: Vec<ChunkEntry>,
}

/// A decoded manifest: everything needed to rebuild a `CheckpointImage`
/// given the chunk store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// This image's id.
    pub image_id: ImageId,
    /// Parent image for incremental checkpoints (storage lineage only).
    pub parent: Option<ImageId>,
    /// Virtual time the checkpoint was taken.
    pub taken_at_ns: u64,
    /// Compression policy the writer ran with (individual chunks record
    /// their own encoding; this is diagnostic).
    pub compression: Compression,
    /// Saved regions in image order.
    pub regions: Vec<RegionEntry>,
    /// Plugin payloads in name order.
    pub payloads: Vec<(String, Vec<u8>)>,
}

impl Manifest {
    /// Logical image size (regions + payloads), as the paper reports it.
    pub fn logical_size(&self) -> u64 {
        let regions: u64 = self.regions.iter().map(|r| r.len).sum();
        let payloads: u64 = self.payloads.iter().map(|(_, d)| d.len() as u64).sum();
        regions + payloads
    }

    /// Every chunk reference in the manifest.
    pub fn chunk_refs(&self) -> impl Iterator<Item = &ChunkEntry> {
        self.regions.iter().flat_map(|r| r.chunks.iter())
    }

    /// Serialises the manifest, appending the CRC-32 trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.image_id.0.to_le_bytes());
        out.extend_from_slice(&self.parent.map_or(0, |p| p.0).to_le_bytes());
        out.extend_from_slice(&self.taken_at_ns.to_le_bytes());
        out.push(match self.compression {
            Compression::None => 0,
            Compression::Rle => 1,
        });
        out.extend_from_slice(&(self.regions.len() as u64).to_le_bytes());
        for region in &self.regions {
            out.extend_from_slice(&region.start.to_le_bytes());
            out.extend_from_slice(&region.len.to_le_bytes());
            out.push(region.prot.bits());
            out.extend_from_slice(&(region.label.len() as u32).to_le_bytes());
            out.extend_from_slice(region.label.as_bytes());
            out.extend_from_slice(&(region.chunks.len() as u32).to_le_bytes());
            for chunk in &region.chunks {
                out.extend_from_slice(&(chunk.runs.len() as u32).to_le_bytes());
                for run in &chunk.runs {
                    out.extend_from_slice(&run.first.to_le_bytes());
                    // The writer caps chunks at CHUNK_PAGES, but the type is
                    // u64: refuse to wrap rather than serialise a silently
                    // truncated page count the CRC could never catch.
                    let count = u32::try_from(run.count)
                        // crac-lint: allow(no-unwrap) — refusing to serialize a wrapping page count is the documented contract
                        .expect("page run exceeds the manifest format's u32 count");
                    out.extend_from_slice(&count.to_le_bytes());
                }
                out.extend_from_slice(&chunk.hash.0.to_le_bytes());
                out.extend_from_slice(&chunk.raw_len.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.payloads.len() as u64).to_le_bytes());
        for (name, data) in &self.payloads {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and integrity-checks a manifest.  Returns a description of the
    /// first problem found on any corruption.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        if data.len() < MANIFEST_MAGIC.len() + 4 + 4 {
            return Err("manifest truncated".into());
        }
        let (body, trailer) = data.split_at(data.len() - 4);
        // crac-lint: allow(no-unwrap) — split_at(len - 4) guarantees a 4-byte trailer
        let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(format!(
                "manifest CRC mismatch: stored {stored_crc:#010x}, computed {:#010x}",
                crc32(body)
            ));
        }
        let mut c = ByteCursor::new(body);
        if c.take(8).ok_or("missing magic")? != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        let version = c.u32().ok_or("missing version")?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let image_id = ImageId(c.u64().ok_or("missing image id")?);
        let parent = match c.u64().ok_or("missing parent id")? {
            0 => None,
            p => Some(ImageId(p)),
        };
        let taken_at_ns = c.u64().ok_or("missing timestamp")?;
        let compression = match c.u8().ok_or("missing compression tag")? {
            0 => Compression::None,
            1 => Compression::Rle,
            t => return Err(format!("unknown compression tag {t}")),
        };
        let nregions = c.u64().ok_or("missing region count")? as usize;
        let mut regions = Vec::with_capacity(nregions.min(1 << 16));
        for _ in 0..nregions {
            let start = c.u64().ok_or("truncated region")?;
            let len = c.u64().ok_or("truncated region")?;
            let prot = Prot::from_bits(c.u8().ok_or("truncated region")?)
                .ok_or("invalid protection bits")?;
            let label_len = c.u32().ok_or("truncated region")? as usize;
            let label = String::from_utf8(c.take(label_len).ok_or("truncated label")?.to_vec())
                .map_err(|_| "label is not UTF-8")?;
            let nchunks = c.u32().ok_or("truncated region")? as usize;
            let mut chunks = Vec::with_capacity(nchunks.min(1 << 16));
            for _ in 0..nchunks {
                let nruns = c.u32().ok_or("truncated chunk")? as usize;
                let mut runs = Vec::with_capacity(nruns.min(1 << 16));
                for _ in 0..nruns {
                    let first = c.u64().ok_or("truncated run")?;
                    let count = c.u32().ok_or("truncated run")? as u64;
                    if count == 0 {
                        return Err("empty page run".into());
                    }
                    runs.push(PageRun { first, count });
                }
                let hash = ContentHash(c.u128().ok_or("truncated chunk hash")?);
                let raw_len = c.u64().ok_or("truncated chunk")?;
                chunks.push(ChunkEntry {
                    runs,
                    hash,
                    raw_len,
                });
            }
            regions.push(RegionEntry {
                start,
                len,
                prot,
                label,
                chunks,
            });
        }
        let npayloads = c.u64().ok_or("missing payload count")? as usize;
        let mut payloads = Vec::with_capacity(npayloads.min(1 << 16));
        for _ in 0..npayloads {
            let name_len = c.u32().ok_or("truncated payload")? as usize;
            let name =
                String::from_utf8(c.take(name_len).ok_or("truncated payload name")?.to_vec())
                    .map_err(|_| "payload name is not UTF-8")?;
            let data_len = c.u64().ok_or("truncated payload")? as usize;
            let data = c.take(data_len).ok_or("truncated payload data")?.to_vec();
            payloads.push((name, data));
        }
        if !c.at_end() {
            return Err("trailing bytes after manifest body".into());
        }
        Ok(Self {
            image_id,
            parent,
            taken_at_ns,
            compression,
            regions,
            payloads,
        })
    }
}

/// A chunk file's header plus its encoded payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkFile {
    /// How the payload is encoded.
    pub encoding: Encoding,
    /// Length the payload decodes to.
    pub raw_len: u64,
    /// The encoded bytes.
    pub encoded: Vec<u8>,
}

/// A chunk file's header plus a *borrowed* view of its encoded payload —
/// what [`ChunkFile::parse`] yields.
///
/// The restore pipeline decodes straight out of the file buffer through
/// this view, so a fetched chunk never holds file bytes and an encoded
/// copy at once; that halves the per-worker share of
/// [`crate::reader::restore_buffer_bound`].
#[derive(Clone, Copy, Debug)]
pub struct ChunkView<'a> {
    /// How the payload is encoded.
    pub encoding: Encoding,
    /// Length the payload decodes to.
    pub raw_len: u64,
    /// The encoded bytes, borrowed from the file buffer.
    pub encoded: &'a [u8],
}

impl ChunkFile {
    /// Serialises the chunk file (header + encoded bytes).  The CRC covers
    /// the header fields *and* the payload, so any flipped byte in the file
    /// fails verification.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.encoded.len());
        out.extend_from_slice(CHUNK_MAGIC);
        out.push(self.encoding.tag());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
        out.extend_from_slice(&(self.encoded.len() as u64).to_le_bytes());
        let mut crc = crate::hash::Crc32::new();
        crc.update(&out);
        crc.update(&self.encoded);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(&self.encoded);
        out
    }

    /// Byte length of the fixed header prefix [`ChunkFile::parse_header`]
    /// needs: magic (8) + encoding tag (1) + raw_len (8).
    pub const HEADER_PREFIX_LEN: usize = 17;

    /// Parses just the fixed header prefix of a chunk file — magic,
    /// encoding and `raw_len` — without requiring (or verifying) the
    /// payload.  This is the cheap "what does this chunk decode to"
    /// probe manifest adoption uses to cross-check a peer's declared
    /// lengths against the chunks actually stored; full integrity is
    /// still [`ChunkFile::parse`]'s job at read time.
    pub fn parse_header(prefix: &[u8]) -> Result<(Encoding, u64), String> {
        let mut c = ByteCursor::new(prefix);
        if c.take(8).ok_or("chunk file truncated")? != CHUNK_MAGIC {
            return Err("bad chunk magic".into());
        }
        let encoding =
            Encoding::from_tag(c.u8().ok_or("missing encoding")?).ok_or("unknown encoding tag")?;
        let raw_len = c.u64().ok_or("missing raw length")?;
        Ok((encoding, raw_len))
    }

    /// Parses and integrity-checks a chunk file without copying the
    /// payload: the returned view borrows the encoded bytes from `data`.
    pub fn parse(data: &[u8]) -> Result<ChunkView<'_>, String> {
        let mut c = ByteCursor::new(data);
        if c.take(8).ok_or("chunk file truncated")? != CHUNK_MAGIC {
            return Err("bad chunk magic".into());
        }
        let encoding =
            Encoding::from_tag(c.u8().ok_or("missing encoding")?).ok_or("unknown encoding tag")?;
        let raw_len = c.u64().ok_or("missing raw length")?;
        let encoded_len = c.u64().ok_or("missing encoded length")? as usize;
        let header_len = c.pos();
        let stored_crc = c.u32().ok_or("missing chunk CRC")?;
        let encoded = c.take(encoded_len).ok_or("chunk payload truncated")?;
        if !c.at_end() {
            return Err("trailing bytes after chunk payload".into());
        }
        let mut crc = crate::hash::Crc32::new();
        crc.update(&data[..header_len]);
        crc.update(encoded);
        let computed = crc.finish();
        if computed != stored_crc {
            return Err(format!(
                "chunk CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            ));
        }
        Ok(ChunkView {
            encoding,
            raw_len,
            encoded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            image_id: ImageId(3),
            parent: Some(ImageId(2)),
            taken_at_ns: 987_654,
            compression: Compression::Rle,
            regions: vec![RegionEntry {
                start: 0x4000_0000_0000,
                len: 1 << 20,
                prot: Prot::RW,
                label: "[heap]".into(),
                chunks: vec![ChunkEntry {
                    runs: vec![
                        PageRun { first: 3, count: 2 },
                        PageRun { first: 9, count: 1 },
                    ],
                    hash: ContentHash::of(b"chunk bytes"),
                    raw_len: 3 * 4096,
                }],
            }],
            payloads: vec![("crac".into(), vec![1, 2, 3])],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = sample_manifest().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Manifest::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncation at any point is also rejected.
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Manifest::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn chunk_file_round_trips_and_detects_corruption() {
        let cf = ChunkFile {
            encoding: Encoding::Rle,
            raw_len: 4096,
            encoded: vec![255, 0, 255, 0, 255, 0],
        };
        let bytes = cf.to_bytes();
        let view = ChunkFile::parse(&bytes).unwrap();
        assert_eq!(view.encoding, cf.encoding);
        assert_eq!(view.raw_len, cf.raw_len);
        assert_eq!(view.encoded, &cf.encoded[..]);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x80;
            assert!(
                ChunkFile::parse(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut bytes = sample_manifest().to_bytes();
        // Corrupt the version field *and* refresh the CRC: must still fail.
        bytes[8] = 99;
        let body_len = bytes.len() - 4;
        let crc = crate::hash::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = Manifest::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("version"), "got: {err}");
    }
}
