//! Cross-process writer lock: one writer process per store directory.
//!
//! Image-id allocation and manifest naming are only coordinated *within* a
//! process (the index mutex), so a second writer process sharing the
//! directory could reuse ids and replace manifests.  `ImageStore::open`
//! therefore claims `<root>/store.lock` — a file holding the owner's PID —
//! and refuses to open for writing while another *live* process holds it.
//!
//! The lock is PID-keyed, not lifetime-keyed:
//!
//! * a file naming **our own** PID is re-entrant (many `ImageStore` values
//!   in one process were always safe — the in-process mutexes coordinate
//!   them);
//! * a file naming a **dead** PID is stale and stolen in place, so a
//!   crashed writer never wedges the store (no unlock step exists to
//!   forget);
//! * a file naming a **live foreign** PID fails the open with
//!   [`StoreError::Locked`].
//!
//! Liveness is judged via `/proc/<pid>` (the store targets Linux, as the
//! rest of the reproduction does); on other platforms an existing lock is
//! conservatively treated as live.  Read-only opens
//! (`ImageStore::open_read_only`) skip the lock entirely — restore-side
//! consumers on other machines or in other processes are always welcome.

use std::fs;
use std::io::ErrorKind;
use std::path::Path;

use crate::error::StoreError;

/// Name of the lock file under the store root.
pub const LOCK_FILE: &str = "store.lock";

/// Claims the writer lock for the calling process, per the policy above.
///
/// The claim is race-free: the lock file is prepared off to the side with
/// its PID already written and *linked* into place (`hard_link` fails if
/// the name exists), so the lock can never be observed empty or torn.
/// Stealing a stale lock is remove + re-claim in a loop — if two
/// processes race for a dead holder's lock, exactly one link wins and the
/// loser re-reads the winner's (live) PID and backs off with
/// [`StoreError::Locked`].
pub(crate) fn acquire(root: &Path) -> Result<(), StoreError> {
    let path = root.join(LOCK_FILE);
    let me = std::process::id();
    // A complete lock file of our own, staged under a per-process name.
    let staged = path.with_extension(format!("lock.claim.{me}"));
    fs::write(&staged, me.to_string()).map_err(|e| StoreError::io(&staged, e))?;
    let result = claim_loop(&path, &staged, me);
    let _ = fs::remove_file(&staged);
    result
}

fn claim_loop(path: &Path, staged: &Path, me: u32) -> Result<(), StoreError> {
    // Two iterations suffice in the absence of an adversarial loop of
    // processes dying mid-claim; a few more cost nothing and keep this
    // total.
    for _ in 0..8 {
        match fs::hard_link(staged, path) {
            Ok(()) => return Ok(()), // atomically claimed, content complete
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {}
            Err(e) => return Err(StoreError::io(path, e)),
        }
        // Somebody holds (or held) it: decide by the recorded PID.  The
        // file is never empty/torn (every claimant links a complete file),
        // so unparseable content means an unknown writer — treat as stale.
        let holder = fs::read_to_string(path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok());
        match holder {
            // Unreadable or unparseable: every real claimant links a
            // complete PID file atomically, so this is foreign garbage (or
            // the file vanished mid-read) — clear it and retry the claim.
            None => {
                let _ = fs::remove_file(path);
            }
            Some(pid) if pid == me => return Ok(()), // re-entrant in-process
            Some(pid) if pid_alive(pid) => {
                return Err(StoreError::Locked {
                    path: path.to_path_buf(),
                    holder: pid,
                })
            }
            Some(_) => {
                // Dead holder: remove the stale lock and loop to re-claim.
                // Losing the re-claim race is handled by the next read.
                let _ = fs::remove_file(path);
            }
        }
    }
    Err(StoreError::busy(format!(
        "could not claim {} after repeated stale-lock races",
        path.display()
    )))
}

/// Is the process with this PID alive?
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        // Without /proc (and without libc's kill(pid, 0)) we cannot probe;
        // err on the safe side and treat the holder as alive.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn fresh_lock_is_claimed_and_reentrant() {
        let dir = TempDir::new("lock-fresh");
        acquire(dir.path()).unwrap();
        let recorded = fs::read_to_string(dir.path().join(LOCK_FILE)).unwrap();
        assert_eq!(recorded.trim(), std::process::id().to_string());
        // Same process claims again without error.
        acquire(dir.path()).unwrap();
    }

    #[test]
    fn live_foreign_holder_blocks_the_open() {
        if !Path::new("/proc/1").exists() {
            return; // no /proc: liveness probing unavailable on this host
        }
        let dir = TempDir::new("lock-live");
        fs::write(dir.path().join(LOCK_FILE), "1").unwrap(); // PID 1 is always alive
        match acquire(dir.path()) {
            Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, 1),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn dead_holder_and_garbage_are_stolen() {
        if !Path::new("/proc/1").exists() {
            return;
        }
        let dir = TempDir::new("lock-stale");
        // A PID far above any real pid_max.
        fs::write(dir.path().join(LOCK_FILE), "4194304999").unwrap();
        acquire(dir.path()).unwrap();
        let recorded = fs::read_to_string(dir.path().join(LOCK_FILE)).unwrap();
        assert_eq!(recorded.trim(), std::process::id().to_string());

        fs::write(dir.path().join(LOCK_FILE), "not a pid").unwrap();
        acquire(dir.path()).unwrap();
    }
}
