//! Cross-process writer lock: one writer process per store directory.
//!
//! Image-id allocation and manifest naming are only coordinated *within* a
//! process (the index mutex), so a second writer process sharing the
//! directory could reuse ids and replace manifests.  `ImageStore::open`
//! therefore claims `<root>/store.lock` — a file holding the owner's PID —
//! and refuses to open for writing while another *live* process holds it.
//!
//! The lock is PID-keyed, not lifetime-keyed:
//!
//! * a file naming **our own** PID is re-entrant (many `ImageStore` values
//!   in one process were always safe — the in-process mutexes coordinate
//!   them);
//! * a file naming a **dead** PID is stale and stolen in place, so a
//!   crashed writer never wedges the store (no unlock step exists to
//!   forget);
//! * a file naming a **live foreign** PID fails the open with
//!   [`StoreError::Locked`].
//!
//! Liveness is judged via `/proc/<pid>` (the store targets Linux, as the
//! rest of the reproduction does); on other platforms an existing lock is
//! conservatively treated as live.  Read-only opens
//! (`ImageStore::open_read_only`) skip the lock entirely — restore-side
//! consumers on other machines or in other processes are always welcome.

use std::fs;
use std::io::ErrorKind;
use std::path::Path;

use crate::error::StoreError;

/// Name of the lock file under the store root.
pub const LOCK_FILE: &str = "store.lock";

/// Name of the claim-serialisation guard file under the store root.
pub const GUARD_FILE: &str = "store.lock.guard";

/// Claims the writer lock for the calling process, per the policy above.
///
/// The claim is race-free on two levels:
///
/// * The whole claim sequence runs under an exclusive OS lock
///   ([`std::fs::File::lock`]) on a sidecar guard file, serialising
///   concurrent claimants — including stealers — across processes.  The
///   guard can never go stale: the kernel releases it when its holder
///   dies.  (It cannot *replace* the PID file: the OS lock evaporates
///   with the claiming `open` call, while ownership of the store must
///   outlive it.)
/// * Within the guarded section the lock file is prepared off to the
///   side with its PID already written and *linked* into place
///   (`hard_link` fails if the name exists), so the lock can never be
///   observed empty or torn.  Stealing a stale lock is **rename +
///   re-verify + discard**, never a bare remove: should a claimant ever
///   race the steal (a mixed-version writer not taking the guard), a
///   live claimant's lock found after the rename is linked straight back
///   and the open backs off with [`StoreError::Locked`] instead of
///   deleting it.
///
/// On success, returns how many stale locks were stolen along the way —
/// zero on the common uncontended path — so the caller can surface each
/// steal in its observability stream.
pub(crate) fn acquire(root: &Path) -> Result<u32, StoreError> {
    let path = root.join(LOCK_FILE);
    let me = std::process::id();
    // Serialise claimants: held only for the microseconds the claim
    // takes, auto-released on process death, so it cannot wedge.
    let guard_path = root.join(GUARD_FILE);
    let guard = fs::File::create(&guard_path).map_err(|e| StoreError::io(&guard_path, e))?;
    guard.lock().map_err(|e| StoreError::io(&guard_path, e))?;
    // A complete lock file of our own, staged under a per-process name.
    let staged = path.with_extension(format!("lock.claim.{me}"));
    fs::write(&staged, me.to_string()).map_err(|e| StoreError::io(&staged, e))?;
    let result = claim_loop(&path, &staged, me, &mut || {});
    let _ = fs::remove_file(&staged);
    result // dropping `guard` releases the OS lock
}

/// The claim loop.  `before_steal` is a test seam: it runs between the
/// stale-holder read and the steal, where the TOCTOU window used to be.
fn claim_loop(
    path: &Path,
    staged: &Path,
    me: u32,
    before_steal: &mut dyn FnMut(),
) -> Result<u32, StoreError> {
    let mut steals = 0u32;
    // Two iterations suffice in the absence of an adversarial loop of
    // processes dying mid-claim; a few more cost nothing and keep this
    // total.
    for _ in 0..8 {
        match fs::hard_link(staged, path) {
            Ok(()) => return Ok(steals), // atomically claimed, content complete
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {}
            Err(e) => return Err(StoreError::io(path, e)),
        }
        // Somebody holds (or held) it: decide by the recorded PID.  The
        // file is never empty/torn (every claimant links a complete file),
        // so unparseable content means an unknown writer — treat as stale.
        let holder = fs::read_to_string(path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok());
        match holder {
            Some(pid) if pid == me => return Ok(steals), // re-entrant in-process
            Some(pid) if pid_alive(pid) => {
                return Err(StoreError::Locked {
                    path: path.to_path_buf(),
                    holder: pid,
                })
            }
            // Dead holder, or unreadable/unparseable foreign garbage:
            // steal it — atomically, re-verifying what we actually took —
            // and loop to re-claim.
            _ => {
                before_steal();
                steal_stale(path, me)?;
                steals += 1;
            }
        }
    }
    Err(StoreError::busy(format!(
        "could not claim {} after repeated stale-lock races",
        path.display()
    )))
}

/// Steals the (believed-stale) lock at `path` without ever discarding a
/// live claimant's lock.
///
/// The lock is *renamed* to a per-process name first — atomic, so we own
/// exactly the file that was at the lock name, whatever it had become —
/// and only discarded after its content is re-read and confirmed to name
/// a dead holder (or garbage).  If the moved file turns out to name a
/// live process, a concurrent claimant won the race between our read and
/// the rename: its lock is hard-linked straight back into place and the
/// claim fails with [`StoreError::Locked`].  (If the name was meanwhile
/// re-claimed by yet another process, the link-back fails and the caller's
/// loop re-reads the new holder.)
fn steal_stale(path: &Path, me: u32) -> Result<(), StoreError> {
    let moved = path.with_extension(format!("lock.steal.{me}"));
    match fs::rename(path, &moved) {
        Ok(()) => {}
        // Someone else already removed or stole it: re-claim via the loop.
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(StoreError::io(path, e)),
    }
    let holder = fs::read_to_string(&moved)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok());
    match holder {
        Some(pid) if pid != me && pid_alive(pid) => {
            // We moved a *live* claimant's lock aside — the interleaving
            // the bare-remove steal used to lose.  Put it back (atomic;
            // fails only if a third process claimed the name meanwhile,
            // in which case the caller's loop re-reads the new holder).
            let restored = fs::hard_link(&moved, path).is_ok();
            let _ = fs::remove_file(&moved);
            if restored {
                return Err(StoreError::Locked {
                    path: path.to_path_buf(),
                    holder: pid,
                });
            }
            Ok(())
        }
        // Confirmed: dead holder, our own earlier claim, or garbage no
        // real claimant could have linked.  Discard it.
        _ => {
            let _ = fs::remove_file(&moved);
            Ok(())
        }
    }
}

/// Removes dead processes' lock-claim litter from the store root.
///
/// A writer that crashes between staging `store.lock.claim.<pid>` (or a
/// steal's `store.lock.steal.<pid>`) and removing it leaves that file
/// behind forever — the chunk-directory `.tmp` sweep never looks at the
/// store root.  Called on every writing open; only files whose embedded
/// PID is provably dead are touched, so live claimants are never raced.
pub(crate) fn sweep_stale_claims(root: &Path) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name.strip_prefix("store.lock.") else {
            continue;
        };
        let pid = rest
            .strip_prefix("claim.")
            .or_else(|| rest.strip_prefix("steal."))
            .and_then(|p| p.parse::<u32>().ok());
        if let Some(pid) = pid {
            if !pid_alive(pid) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Is the process with this PID alive?
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        // Without /proc (and without libc's kill(pid, 0)) we cannot probe;
        // err on the safe side and treat the holder as alive.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn fresh_lock_is_claimed_and_reentrant() {
        let dir = TempDir::new("lock-fresh");
        acquire(dir.path()).unwrap();
        let recorded = fs::read_to_string(dir.path().join(LOCK_FILE)).unwrap();
        assert_eq!(recorded.trim(), std::process::id().to_string());
        // Same process claims again without error.
        acquire(dir.path()).unwrap();
    }

    #[test]
    fn live_foreign_holder_blocks_the_open() {
        if !Path::new("/proc/1").exists() {
            return; // no /proc: liveness probing unavailable on this host
        }
        let dir = TempDir::new("lock-live");
        fs::write(dir.path().join(LOCK_FILE), "1").unwrap(); // PID 1 is always alive
        match acquire(dir.path()) {
            Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, 1),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn dead_holder_and_garbage_are_stolen() {
        if !Path::new("/proc/1").exists() {
            return;
        }
        let dir = TempDir::new("lock-stale");
        // A PID far above any real pid_max.
        fs::write(dir.path().join(LOCK_FILE), "4194304999").unwrap();
        acquire(dir.path()).unwrap();
        let recorded = fs::read_to_string(dir.path().join(LOCK_FILE)).unwrap();
        assert_eq!(recorded.trim(), std::process::id().to_string());

        fs::write(dir.path().join(LOCK_FILE), "not a pid").unwrap();
        acquire(dir.path()).unwrap();
    }

    /// Regression (PR 2 bug): stealing a stale lock was a bare
    /// `remove_file` after reading a dead PID.  In the window between the
    /// read and the remove, another process could steal the stale lock and
    /// link its own *live* lock — which we then deleted, letting two live
    /// writers claim the store.  The steal must re-verify what it actually
    /// took and hand a live claimant's lock back untouched.
    #[test]
    fn steal_never_discards_a_live_claimants_lock() {
        if !Path::new("/proc/1").exists() {
            return;
        }
        let dir = TempDir::new("lock-toctou");
        let path = dir.path().join(LOCK_FILE);
        let me = std::process::id();
        // A stale lock from a dead writer...
        fs::write(&path, "4194304999").unwrap();
        let staged = path.with_extension(format!("lock.claim.{me}"));
        fs::write(&staged, me.to_string()).unwrap();
        // ...and an interloper that wins the steal race in the TOCTOU
        // window: after we read the dead PID but before we act, the lock
        // file is already a *live* process's claim (PID 1).
        let path_for_hook = path.clone();
        let mut interloper = move || {
            fs::write(&path_for_hook, "1").unwrap();
        };
        let result = claim_loop(&path, &staged, me, &mut interloper);
        let _ = fs::remove_file(&staged);

        // The claim must back off to the live holder — with the old bare
        // remove it deleted PID 1's lock and claimed the store itself.
        match result {
            Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, 1),
            other => panic!("expected Locked by PID 1, got {other:?}"),
        }
        // And the live claimant's lock survives, content intact.
        let recorded = fs::read_to_string(&path).unwrap();
        assert_eq!(recorded.trim(), "1");
        // No steal litter left behind.
        assert!(!path.with_extension(format!("lock.steal.{me}")).exists());
    }

    #[test]
    fn stale_claim_litter_is_swept_but_live_claims_survive() {
        if !Path::new("/proc/1").exists() {
            return;
        }
        let dir = TempDir::new("lock-claim-sweep");
        let dead_claim = dir.path().join("store.lock.claim.4194304999");
        let dead_steal = dir.path().join("store.lock.steal.4194304999");
        let live_claim = dir.path().join("store.lock.claim.1");
        let unrelated = dir.path().join("store.lock.claim.nonsense");
        for f in [&dead_claim, &dead_steal, &live_claim, &unrelated] {
            fs::write(f, "x").unwrap();
        }
        sweep_stale_claims(dir.path());
        assert!(!dead_claim.exists(), "dead claimant's litter is swept");
        assert!(!dead_steal.exists(), "dead stealer's litter is swept");
        assert!(live_claim.exists(), "a live claimant is never raced");
        assert!(unrelated.exists(), "non-PID names are left alone");
    }
}
