//! Optional chunk compression.
//!
//! The store supports a lightweight run-length codec (checkpoint pages are
//! dominated by zero fills and repeated initialisation patterns, which RLE
//! collapses by orders of magnitude).  The writer never stores an encoding
//! that is larger than the raw bytes: per chunk it keeps whichever of
//! raw/RLE is smaller, and records the choice in the chunk file header, so
//! incompressible data costs nothing.  A real deployment would swap in
//! zstd/gzip here; the registry-less build environment rules those out.

/// Store-level compression policy, chosen per checkpoint write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Compression {
    /// Store chunks raw (the paper's measurement configuration: DMTCP's
    /// gzip disabled).
    #[default]
    None,
    /// Run-length encode chunks that shrink from it.
    Rle,
}

/// How one chunk's bytes are actually stored on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Verbatim bytes.
    Raw,
    /// Run-length encoded: a sequence of `(run_length, byte)` pairs.
    Rle,
}

impl Encoding {
    /// Wire tag of the encoding.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::Rle => 1,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Encoding::Raw),
            1 => Some(Encoding::Rle),
            _ => None,
        }
    }
}

/// Encodes `raw` under `policy`, returning the encoding actually chosen and
/// its bytes.  RLE is used only when it is strictly smaller than raw.
pub fn encode(raw: &[u8], policy: Compression) -> (Encoding, Vec<u8>) {
    match policy {
        Compression::None => (Encoding::Raw, raw.to_vec()),
        Compression::Rle => {
            let rle = rle_encode(raw);
            if rle.len() < raw.len() {
                (Encoding::Rle, rle)
            } else {
                (Encoding::Raw, raw.to_vec())
            }
        }
    }
}

/// Decodes `data` back into exactly `raw_len` bytes.
/// Returns `None` if the stream is malformed or yields the wrong length.
pub fn decode(encoding: Encoding, data: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    match encoding {
        Encoding::Raw => (data.len() == raw_len).then(|| data.to_vec()),
        Encoding::Rle => rle_decode(data, raw_len),
    }
}

/// `(run_length, byte)` pairs; run length 1..=255.
fn rle_encode(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let mut i = 0;
    while i < raw.len() {
        let byte = raw[i];
        let mut run = 1usize;
        while run < 255 && i + run < raw.len() && raw[i + run] == byte {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
    }
    out
}

fn rle_decode(data: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(raw_len);
    for pair in data.chunks_exact(2) {
        let (run, byte) = (pair[0] as usize, pair[1]);
        if run == 0 || out.len() + run > raw_len {
            return None;
        }
        out.resize(out.len() + run, byte);
    }
    (out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_round_trips_repetitive_data() {
        let raw: Vec<u8> = std::iter::repeat_n(0u8, 4000)
            .chain([1, 2, 3, 3, 3, 3])
            .chain(std::iter::repeat_n(7u8, 600))
            .collect();
        let (enc, data) = encode(&raw, Compression::Rle);
        assert_eq!(enc, Encoding::Rle);
        assert!(data.len() < raw.len() / 10, "zeros should collapse");
        assert_eq!(decode(enc, &data, raw.len()).unwrap(), raw);
    }

    #[test]
    fn incompressible_data_falls_back_to_raw() {
        let raw: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let (enc, data) = encode(&raw, Compression::Rle);
        assert_eq!(enc, Encoding::Raw);
        assert_eq!(data, raw);
    }

    #[test]
    fn none_policy_never_compresses() {
        let raw = vec![0u8; 4096];
        let (enc, data) = encode(&raw, Compression::None);
        assert_eq!(enc, Encoding::Raw);
        assert_eq!(data, raw);
    }

    #[test]
    fn malformed_rle_streams_are_rejected() {
        assert!(decode(Encoding::Rle, &[3], 3).is_none(), "odd length");
        assert!(decode(Encoding::Rle, &[0, 9], 1).is_none(), "zero run");
        assert!(decode(Encoding::Rle, &[200, 9], 10).is_none(), "overrun");
        assert!(decode(Encoding::Rle, &[2, 9], 5).is_none(), "short");
        assert!(decode(Encoding::Raw, &[1, 2], 3).is_none(), "raw length");
    }
}
