//! Error type of the image store.

use std::fmt;
use std::io;
use std::path::PathBuf;

use crate::store::ImageId;

/// Everything that can go wrong while writing to or reading from a store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path involved.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk data failed an integrity check (bad magic, CRC mismatch,
    /// truncation, invalid field).
    Corrupt {
        /// File that failed verification.
        path: PathBuf,
        /// What exactly was wrong.
        what: String,
    },
    /// A manifest references a chunk that is not present in the store.
    MissingChunk {
        /// Hex content hash of the missing chunk.
        hash: String,
    },
    /// The requested image id has no manifest in the store.
    UnknownImage(ImageId),
    /// Another live process holds the store's writer lock.
    Locked {
        /// The `store.lock` file.
        path: PathBuf,
        /// PID recorded in the lock file.
        holder: u32,
    },
    /// The operation conflicts with the store's current state (for example,
    /// deleting images while a streaming write is in flight, or writing
    /// through a read-only handle).
    Busy {
        /// Human-readable description of the conflict.
        what: String,
    },
    /// A batched operation (for example [`crate::ImageStore::retain_last`]
    /// deleting several images) hit more than one failure.  The operation
    /// was *not* abandoned at the first error — everything that could
    /// proceed did — and every underlying failure is collected here in
    /// occurrence order.
    Partial {
        /// The individual failures.
        errors: Vec<StoreError>,
    },
}

impl StoreError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, what: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            what: what.into(),
        }
    }

    pub(crate) fn busy(what: impl Into<String>) -> Self {
        StoreError::Busy { what: what.into() }
    }

    /// Collapses the failures of a batched operation: one error stays
    /// itself, several aggregate into [`StoreError::Partial`].
    pub(crate) fn partial(mut errors: Vec<StoreError>) -> Self {
        debug_assert!(!errors.is_empty(), "partial() needs at least one error");
        if errors.len() == 1 {
            errors.pop().expect("length checked")
        } else {
            StoreError::Partial { errors }
        }
    }

    /// Returns `true` if the error is an integrity (not availability)
    /// failure — what a flipped bit on disk produces.  A batched
    /// [`StoreError::Partial`] counts if any of its failures does.
    pub fn is_corruption(&self) -> bool {
        match self {
            StoreError::Corrupt { .. } => true,
            StoreError::Partial { errors } => errors.iter().any(StoreError::is_corruption),
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::Corrupt { path, what } => {
                write!(f, "corrupt store file {}: {what}", path.display())
            }
            StoreError::MissingChunk { hash } => write!(f, "chunk {hash} missing from store"),
            StoreError::UnknownImage(id) => write!(f, "image {id} not present in store"),
            StoreError::Locked { path, holder } => write!(
                f,
                "store is locked by live process {holder} (lock file {})",
                path.display()
            ),
            StoreError::Busy { what } => write!(f, "store is busy: {what}"),
            StoreError::Partial { errors } => {
                write!(f, "{} failures in one batched operation: ", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
