//! Error type of the image store.

use std::fmt;
use std::io;
use std::path::PathBuf;

use crate::store::{DeleteStats, ImageId};

/// Everything that can go wrong while writing to or reading from a store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path involved.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk data failed an integrity check (bad magic, CRC mismatch,
    /// truncation, invalid field).
    Corrupt {
        /// File that failed verification.
        path: PathBuf,
        /// What exactly was wrong.
        what: String,
    },
    /// A manifest references a chunk that is not present in the store.
    MissingChunk {
        /// Hex content hash of the missing chunk.
        hash: String,
    },
    /// The requested image id has no manifest in the store.
    UnknownImage(ImageId),
    /// Another live process holds the store's writer lock.
    Locked {
        /// The `store.lock` file.
        path: PathBuf,
        /// PID recorded in the lock file.
        holder: u32,
    },
    /// The operation conflicts with the store's current state (for example,
    /// deleting images while a streaming write is in flight, or writing
    /// through a read-only handle).
    Busy {
        /// Human-readable description of the conflict.
        what: String,
    },
    /// A transient transport/availability failure (injected fault, dropped
    /// connection, timeout) — the operation is safe to retry and remote
    /// pipelines do so a bounded number of times
    /// ([`crate::transport::MAX_TRANSIENT_RETRIES`]).  Never produced by
    /// integrity checks: corruption is always fail-fast.
    Transient {
        /// Human-readable description of the failure.
        what: String,
    },
    /// The other side of a streaming or wire protocol broke its contract —
    /// a producer pushing a run outside any region, a peer answering the
    /// wrong number of `has_chunks` flags, an unauthenticated client
    /// issuing store requests.  Permanent (the same exchange fails the
    /// same way on every retry) but *not* corruption: no stored bytes are
    /// implicated, only the conversation.  A misbehaving peer surfaces as
    /// this error on the wire; it must never abort the process.
    Protocol {
        /// Which contract was broken, and how.
        what: String,
    },
    /// A batched deletion ([`crate::ImageStore::delete_image`] /
    /// [`crate::ImageStore::retain_last`]) hit one or more failures.  The
    /// operation was *not* abandoned at the first error — everything that
    /// could proceed did — so alongside the failures (in occurrence order)
    /// the variant carries what the batch *did* accomplish: without it a
    /// caller could never tell how much was actually reclaimed.
    Partial {
        /// The individual failures.
        errors: Vec<StoreError>,
        /// What the batch reclaimed despite the failures (manifests
        /// removed, chunks swept, bytes freed).
        stats: DeleteStats,
        /// Image ids that *were* deleted before/around the failures.
        deleted: Vec<ImageId>,
    },
}

impl StoreError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, what: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            what: what.into(),
        }
    }

    pub(crate) fn busy(what: impl Into<String>) -> Self {
        StoreError::Busy { what: what.into() }
    }

    pub(crate) fn transient(what: impl Into<String>) -> Self {
        StoreError::Transient { what: what.into() }
    }

    pub(crate) fn protocol(what: impl Into<String>) -> Self {
        StoreError::Protocol { what: what.into() }
    }

    /// Wraps the failures of a batched deletion together with what the
    /// batch nevertheless accomplished.  Always [`StoreError::Partial`] —
    /// even a single failure needs the stats carried alongside it, or the
    /// caller loses sight of what *was* reclaimed.
    pub(crate) fn partial(
        errors: Vec<StoreError>,
        stats: DeleteStats,
        deleted: Vec<ImageId>,
    ) -> Self {
        debug_assert!(!errors.is_empty(), "partial() needs at least one error");
        StoreError::Partial {
            errors,
            stats,
            deleted,
        }
    }

    /// Returns `true` if the error is an integrity (not availability)
    /// failure — what a flipped bit on disk produces.  A batched
    /// [`StoreError::Partial`] counts if any of its failures does.
    pub fn is_corruption(&self) -> bool {
        match self {
            StoreError::Corrupt { .. } => true,
            StoreError::Partial { errors, .. } => errors.iter().any(StoreError::is_corruption),
            _ => false,
        }
    }

    /// Stable machine-readable class of the error, for retry-cause
    /// bookkeeping and event records (`transient_retry` events carry it
    /// as `class=…`).  Classes name the *variant*, not the instance — two
    /// different timeouts share `"transient"`.
    pub fn class_name(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::Corrupt { .. } => "corrupt",
            StoreError::MissingChunk { .. } => "missing_chunk",
            StoreError::UnknownImage(_) => "unknown_image",
            StoreError::Locked { .. } => "locked",
            StoreError::Busy { .. } => "busy",
            StoreError::Transient { .. } => "transient",
            StoreError::Protocol { .. } => "protocol",
            StoreError::Partial { .. } => "partial",
        }
    }

    /// Returns `true` if the failure is transient (a retry may succeed):
    /// an explicit [`StoreError::Transient`], or an OS-level I/O error of a
    /// kind the OS itself declares retryable.  Corruption and every other
    /// variant are permanent — retrying a flipped bit cannot unflip it.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Transient { .. } => true,
            StoreError::Io { source, .. } => matches!(
                source.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::Corrupt { path, what } => {
                write!(f, "corrupt store file {}: {what}", path.display())
            }
            StoreError::MissingChunk { hash } => write!(f, "chunk {hash} missing from store"),
            StoreError::UnknownImage(id) => write!(f, "image {id} not present in store"),
            StoreError::Locked { path, holder } => write!(
                f,
                "store is locked by live process {holder} (lock file {})",
                path.display()
            ),
            StoreError::Busy { what } => write!(f, "store is busy: {what}"),
            StoreError::Transient { what } => write!(f, "transient transport failure: {what}"),
            StoreError::Protocol { what } => write!(f, "protocol violation: {what}"),
            StoreError::Partial {
                errors,
                stats,
                deleted,
            } => {
                write!(
                    f,
                    "{} failures in one batched operation ({} of the images still deleted, \
                     {} chunks / {} bytes reclaimed): ",
                    errors.len(),
                    deleted.len(),
                    stats.chunks_deleted,
                    stats.chunk_bytes_reclaimed
                )?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
