//! The transport seam for remote replication: a request/response surface a
//! chunk store exposes to its peers.
//!
//! CRAC's deployment story is restarting a CUDA job *somewhere else*, which
//! means a checkpoint image has to move between nodes.  [`Transport`] is
//! the wire boundary that makes that a pluggable concern: batched
//! `has_chunks` (the dedup query — restic/borg-style, only missing chunks
//! are ever shipped), `put_chunk`/`get_chunk` moving verbatim chunk-*file*
//! bytes (already CRC-framed and content-addressed, so both sides can
//! verify everything end to end), and `list/get/put_manifest` for the image
//! metadata.  Everything above the trait — [`crate::remote::RemoteChunkSink`],
//! [`crate::remote::RemoteChunkSource`], [`crate::ImageStore::replicate_to`] —
//! is transport-agnostic; a real TCP or object-store backend later plugs in
//! under the same six methods.
//!
//! The build environment has no network dependencies, so two in-process
//! implementations live here:
//!
//! * [`LoopbackTransport`] — backed by a second [`ImageStore`] (the
//!   "destination node"), with op counters ([`TransportStats`]) the
//!   replication tests assert dedup against: a second replication of the
//!   same image must record **zero** chunk puts.
//! * [`FaultyTransport`] — a fault-injecting wrapper over any transport:
//!   deterministic transient errors (first *k* attempts per op key fail),
//!   a hard cut after *n* puts (the replicator killed mid-stream), and
//!   pseudo-random latency jitter that reorders completions across the
//!   parallel fetch workers.  It is the test harness for the retry,
//!   resume, and crash-consistency paths.
//!
//! **Error contract**: transports report retryable conditions as
//! [`StoreError::Transient`]; callers retry those a bounded number of
//! times ([`MAX_TRANSIENT_RETRIES`]) and fail fast on everything else —
//! corruption is never retried.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crac_obs::{EventKind, ObsRegistry};
use crac_sync::Mutex;

use crate::error::StoreError;
use crate::hash::ContentHash;
use crate::store::{ImageId, ImageStore};

/// Attempts-after-the-first a remote operation is retried when it fails
/// with a [`StoreError::Transient`] error.  Bounded so a dead peer turns
/// into a clean failure instead of an infinite stall; permanent errors
/// (corruption above all) are never retried at all.
pub const MAX_TRANSIENT_RETRIES: usize = 3;

/// Hashes per batched [`Transport::has_chunks`] query.  Batching is what
/// keeps the dedup negotiation cheap over a real network: one round trip
/// covers many chunks instead of one RPC per chunk.
pub const HAS_CHUNKS_BATCH: usize = 64;

/// Delay before the *first* transient retry.  Subsequent retries double
/// the delay up to [`RETRY_BACKOFF_CAP`] — capped exponential backoff, so
/// a struggling peer sees a thinning request stream instead of a hot loop
/// that burns the whole retry budget in microseconds.
pub const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling on the per-retry backoff delay.
pub const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(64);

/// Backoff before retry number `attempt` (1-based): `BASE << (attempt-1)`,
/// capped at [`RETRY_BACKOFF_CAP`].
fn backoff_delay(attempt: usize, base: Duration, cap: Duration) -> Duration {
    let factor = 1u32 << (attempt.saturating_sub(1)).min(16) as u32;
    base.saturating_mul(factor).min(cap)
}

/// Sleeps `total`, probing `cancelled` roughly every millisecond; returns
/// `false` (without finishing the sleep) as soon as the probe fires, so a
/// latched pipeline failure stops a backing-off worker promptly instead
/// of letting it doze through the whole delay.
fn sleep_unless_cancelled(total: Duration, cancelled: &impl Fn() -> bool) -> bool {
    const SLICE: Duration = Duration::from_millis(1);
    let mut remaining = total;
    while !remaining.is_zero() {
        if cancelled() {
            return false;
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
    !cancelled()
}

/// A peer that can receive and serve checkpoint chunks and manifests.
///
/// Chunk payloads cross the transport as verbatim chunk-*file* bytes
/// (`chunks/<hash>.chk` content: magic, encoding tag, CRC, encoded
/// payload), so both ends verify integrity independently and the encoded
/// (possibly compressed) form is what travels — never the raw pages.
///
/// Implementations must be usable from multiple threads at once
/// (`&self` methods, `Sync`): the restore pipeline fans `get_chunk` out
/// over parallel workers.
pub trait Transport: Sync {
    /// Batched membership query: for each hash, does the peer already hold
    /// the chunk?  Returns one flag per input hash, in order.
    fn has_chunks(&self, hashes: &[ContentHash]) -> Result<Vec<bool>, StoreError>;

    /// Ships one chunk (verbatim chunk-file bytes).  The peer verifies the
    /// bytes against `hash` before making them visible; a chunk the peer
    /// already holds is a cheap no-op.
    fn put_chunk(&self, hash: ContentHash, file_bytes: &[u8]) -> Result<(), StoreError>;

    /// Fetches one chunk's verbatim chunk-file bytes.
    fn get_chunk(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError>;

    /// Priority flavour of [`Transport::get_chunk`], used by the lazy
    /// restore's fault path: a page the restarted process is *blocked on*
    /// must not queue behind a background prefetch sweep.  Transports
    /// with internal queueing (a pooled TCP client above all) should let
    /// these calls jump it; the default simply delegates, which is
    /// correct wherever fetches don't contend.
    fn get_chunk_priority(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        self.get_chunk(hash)
    }

    /// Lists the image ids the peer holds, ascending.
    fn list_manifests(&self) -> Result<Vec<ImageId>, StoreError>;

    /// Fetches one manifest's verbatim file bytes.
    fn get_manifest(&self, id: ImageId) -> Result<Vec<u8>, StoreError>;

    /// Publishes a manifest on the peer.  The peer allocates its own image
    /// id (ids are store-local), rewrites the manifest's identity, records
    /// `parent` (a *peer-side* id, or `None` to start a fresh lineage) and
    /// returns the id it assigned.  Must refuse a manifest referencing
    /// chunks the peer does not hold — chunks ship first, metadata last.
    fn put_manifest(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError>;
}

/// Runs `op`, retrying bounded times while it fails transiently.  Each
/// retry is counted into `retries` (surfaced through replication/read
/// stats so tests can prove the retry path actually ran).  Production
/// call sites all use [`with_transient_retry_observed`]; these thinner
/// flavours survive as test harnesses for the same loop.
#[cfg(test)]
pub(crate) fn with_transient_retry<T>(
    retries: &AtomicUsize,
    op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    with_transient_retry_until(retries, || false, op)
}

/// [`with_transient_retry`] with a cancellation probe, consulted between
/// attempts *and* during the backoff sleeps: once `cancelled` reports
/// true the current error is returned without further retries.  The
/// parallel restore workers pass the pipeline's error latch here, so a
/// failure in one worker stops every other worker's retry loop promptly
/// instead of each ticket burning its full retry budget against a dead
/// peer.
///
/// Retries are spaced by capped exponential backoff
/// ([`RETRY_BACKOFF_BASE`] doubling up to [`RETRY_BACKOFF_CAP`]): against
/// a real TCP peer an immediate retry would hot-loop, hammering a
/// struggling server and exhausting the budget in microseconds.
#[cfg(test)]
pub(crate) fn with_transient_retry_until<T>(
    retries: &AtomicUsize,
    cancelled: impl Fn() -> bool,
    op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    retry_loop(
        retries,
        cancelled,
        RETRY_BACKOFF_BASE,
        RETRY_BACKOFF_CAP,
        None,
        op,
    )
}

/// Where retry attempts are reported: the registry records one
/// `crac_retry_attempts` increment, the backoff actually slept
/// (`crac_retry_backoff_us`), and a `transient_retry` event carrying the
/// operation name, the error *class* that triggered the retry, the
/// attempt number and the backoff duration — enough to reconstruct why a
/// slow replication was slow.
pub(crate) struct RetryObs {
    /// Registry the attempts are recorded into.
    pub(crate) reg: ObsRegistry,
    /// Which operation is being retried (`"get_chunk"`, `"dial"`, …).
    pub(crate) op: &'static str,
}

/// [`with_transient_retry_until`] with retry-cause observation: every
/// transient retry is recorded into `obs` (see [`RetryObs`]) in addition
/// to the `retries` tally.
pub(crate) fn with_transient_retry_observed<T>(
    retries: &AtomicUsize,
    cancelled: impl Fn() -> bool,
    obs: Option<&RetryObs>,
    op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    retry_loop(
        retries,
        cancelled,
        RETRY_BACKOFF_BASE,
        RETRY_BACKOFF_CAP,
        obs,
        op,
    )
}

/// [`with_transient_retry_until`] with injectable backoff parameters, so
/// tests can pin the timing behaviour without multi-second runtimes.
#[cfg(test)]
pub(crate) fn with_transient_retry_backoff<T>(
    retries: &AtomicUsize,
    cancelled: impl Fn() -> bool,
    base: Duration,
    cap: Duration,
    op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    retry_loop(retries, cancelled, base, cap, None, op)
}

/// The shared retry loop behind every `with_transient_retry*` flavour.
fn retry_loop<T>(
    retries: &AtomicUsize,
    cancelled: impl Fn() -> bool,
    base: Duration,
    cap: Duration,
    obs: Option<&RetryObs>,
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < MAX_TRANSIENT_RETRIES && !cancelled() => {
                attempt += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                // crac-lint: allow(raw-instant) — measures the backoff actually slept, recorded below into retry obs
                let slept_from = Instant::now();
                let finished =
                    sleep_unless_cancelled(backoff_delay(attempt, base, cap), &cancelled);
                if let Some(o) = obs {
                    // Record the backoff actually slept, not the planned
                    // delay — a cancelled sleep cost what it cost.
                    let slept_us = slept_from.elapsed().as_micros() as u64;
                    o.reg.counter("crac_retry_attempts").inc();
                    o.reg.counter("crac_retry_backoff_us").add(slept_us);
                    o.reg.event(
                        EventKind::TransientRetry,
                        format!(
                            "op={} class={} attempt={attempt} backoff_us={slept_us}",
                            o.op,
                            e.class_name()
                        ),
                    );
                }
                if !finished {
                    // Cancelled mid-backoff: a latched failure elsewhere
                    // made this ticket moot — stop waiting immediately.
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Op counters a [`LoopbackTransport`] keeps — the observable the
/// replication tests pin dedup down with (second replication ⇒
/// `chunks_put == 0`) and capacity planning would meter in production.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// `has_chunks` batches answered.
    pub has_batches: usize,
    /// Individual hashes queried across those batches.
    pub chunks_queried: usize,
    /// Chunks received via `put_chunk` (cheap already-present no-ops
    /// included — the sender should have filtered them via `has_chunks`).
    pub chunks_put: usize,
    /// Chunk-file bytes received via `put_chunk`.
    pub bytes_put: u64,
    /// Chunks served via `get_chunk`.
    pub chunks_got: usize,
    /// Chunk-file bytes served via `get_chunk`.
    pub bytes_got: u64,
    /// Manifests published via `put_manifest`.
    pub manifests_put: usize,
    /// Manifests served via `get_manifest`.
    pub manifests_got: usize,
}

#[derive(Default)]
struct Counters {
    has_batches: AtomicUsize,
    chunks_queried: AtomicUsize,
    chunks_put: AtomicUsize,
    bytes_put: AtomicU64,
    chunks_got: AtomicUsize,
    bytes_got: AtomicU64,
    manifests_put: AtomicUsize,
    manifests_got: AtomicUsize,
}

impl Counters {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            has_batches: self.has_batches.load(Ordering::Relaxed),
            chunks_queried: self.chunks_queried.load(Ordering::Relaxed),
            chunks_put: self.chunks_put.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            chunks_got: self.chunks_got.load(Ordering::Relaxed),
            bytes_got: self.bytes_got.load(Ordering::Relaxed),
            manifests_put: self.manifests_put.load(Ordering::Relaxed),
            manifests_got: self.manifests_got.load(Ordering::Relaxed),
        }
    }
}

/// An in-process [`Transport`] backed by a second [`ImageStore`] — the
/// "remote node" without a network.  Every verification a real remote
/// peer would perform happens here too: received chunks are CRC-checked,
/// decoded and content-hash-verified before an atomic rename makes them
/// visible, and a manifest is refused until every chunk it references has
/// landed.  The trait, not this type, is what a TCP/object-store backend
/// replaces.
pub struct LoopbackTransport<'s> {
    store: &'s ImageStore,
    counters: Counters,
}

impl<'s> LoopbackTransport<'s> {
    /// Wraps `store` as the remote peer.
    pub fn new(store: &'s ImageStore) -> Self {
        Self {
            store,
            counters: Counters::default(),
        }
    }

    /// Snapshot of the op counters.
    pub fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// The store playing the remote role.
    pub fn store(&self) -> &'s ImageStore {
        self.store
    }
}

impl Transport for LoopbackTransport<'_> {
    fn has_chunks(&self, hashes: &[ContentHash]) -> Result<Vec<bool>, StoreError> {
        self.counters.has_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .chunks_queried
            .fetch_add(hashes.len(), Ordering::Relaxed);
        Ok(hashes
            .iter()
            .map(|&h| self.store.contains_chunk(h))
            .collect())
    }

    fn put_chunk(&self, hash: ContentHash, file_bytes: &[u8]) -> Result<(), StoreError> {
        self.store.ingest_chunk_file(hash, file_bytes)?;
        // Count successes only, matching the get-side convention: a put
        // the receiver rejected never landed, so it is not "received".
        self.counters.chunks_put.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_put
            .fetch_add(file_bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn get_chunk(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        let bytes = self.store.read_chunk_file_bytes(hash)?;
        self.counters.chunks_got.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_got
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes)
    }

    fn list_manifests(&self) -> Result<Vec<ImageId>, StoreError> {
        self.store.manifest_ids()
    }

    fn get_manifest(&self, id: ImageId) -> Result<Vec<u8>, StoreError> {
        let bytes = self.store.read_manifest_bytes(id)?;
        self.counters.manifests_got.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    fn put_manifest(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError> {
        let id = self.store.adopt_manifest(manifest_bytes, parent)?;
        self.counters.manifests_put.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }
}

/// Deterministic fault plan for a [`FaultyTransport`].
///
/// All injection is keyed and reproducible, so tests can assert exact
/// retry behaviour: "the first `transient_get_attempts` fetches of every
/// chunk fail" composes with [`MAX_TRANSIENT_RETRIES`] into a precise
/// pass/fail boundary instead of a flaky probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed for the latency-jitter PRNG.
    pub seed: u64,
    /// The first N `get_chunk` attempts *per chunk* fail transiently.
    /// Retries beyond N succeed — set `N ≤` [`MAX_TRANSIENT_RETRIES`] to
    /// exercise recovery, `N >` to exercise retry exhaustion.
    pub transient_get_attempts: usize,
    /// The first N `put_chunk` attempts *per chunk* fail transiently.
    pub transient_put_attempts: usize,
    /// After this many successful `put_chunk` calls the link goes down:
    /// every subsequent operation fails transiently, forever — the
    /// replicator was killed mid-stream (retry exhaustion turns it into a
    /// clean error; a fresh transport later resumes the replication).
    pub cut_after_puts: Option<usize>,
    /// Base latency added to every operation.
    pub latency: Duration,
    /// Extra pseudo-random latency in `0..=jitter`, drawn per op — with
    /// parallel fetch workers this *reorders completions* relative to
    /// request order, which the splice-in-arbitrary-order restore contract
    /// must (and does) absorb.
    pub jitter: Duration,
}

/// Fault-injecting wrapper around any [`Transport`] (see [`FaultConfig`]).
pub struct FaultyTransport<'t> {
    inner: &'t dyn Transport,
    cfg: FaultConfig,
    rng: Mutex<u64>,
    puts_succeeded: AtomicUsize,
    faults_injected: AtomicUsize,
    attempts: Mutex<std::collections::HashMap<(u8, ContentHash), usize>>,
}

impl<'t> FaultyTransport<'t> {
    /// Wraps `inner` under fault plan `cfg`.
    pub fn new(inner: &'t dyn Transport, cfg: FaultConfig) -> Self {
        Self {
            inner,
            cfg,
            rng: Mutex::new("imagestore.transport.rng", cfg.seed | 1),
            puts_succeeded: AtomicUsize::new(0),
            faults_injected: AtomicUsize::new(0),
            attempts: Mutex::new(
                "imagestore.transport.attempts",
                std::collections::HashMap::new(),
            ),
        }
    }

    /// Transient failures injected so far (proves the retry path ran).
    pub fn faults_injected(&self) -> usize {
        self.faults_injected.load(Ordering::Relaxed)
    }

    fn inject(&self, what: &str) -> StoreError {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        StoreError::transient(format!("injected fault: {what}"))
    }

    /// Sleeps the configured base latency plus jitter (xorshift PRNG, so
    /// the schedule is reproducible per seed).
    fn delay(&self) {
        let jitter_ns = self.cfg.jitter.as_nanos() as u64;
        let extra = if jitter_ns == 0 {
            Duration::ZERO
        } else {
            let mut s = self.rng.lock();
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            Duration::from_nanos(*s % (jitter_ns + 1))
        };
        let total = self.cfg.latency + extra;
        if !total.is_zero() {
            std::thread::sleep(total);
        }
    }

    /// The link-down check shared by every op.
    fn check_cut(&self, what: &str) -> Result<(), StoreError> {
        if let Some(cut) = self.cfg.cut_after_puts {
            if self.puts_succeeded.load(Ordering::Relaxed) >= cut {
                return Err(self.inject(&format!("link down during {what}")));
            }
        }
        Ok(())
    }

    /// Counts one attempt for `key`, returning `true` while the attempt
    /// index is below `budget` (meaning: fail this one).
    fn should_fail_attempt(&self, op: u8, hash: ContentHash, budget: usize) -> bool {
        if budget == 0 {
            return false;
        }
        let mut attempts = self.attempts.lock();
        let n = attempts.entry((op, hash)).or_insert(0);
        *n += 1;
        *n <= budget
    }
}

impl Transport for FaultyTransport<'_> {
    fn has_chunks(&self, hashes: &[ContentHash]) -> Result<Vec<bool>, StoreError> {
        self.delay();
        self.check_cut("has_chunks")?;
        self.inner.has_chunks(hashes)
    }

    fn put_chunk(&self, hash: ContentHash, file_bytes: &[u8]) -> Result<(), StoreError> {
        self.delay();
        self.check_cut("put_chunk")?;
        if self.should_fail_attempt(b'p', hash, self.cfg.transient_put_attempts) {
            return Err(self.inject("put_chunk dropped"));
        }
        self.inner.put_chunk(hash, file_bytes)?;
        self.puts_succeeded.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn get_chunk(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        self.delay();
        self.check_cut("get_chunk")?;
        if self.should_fail_attempt(b'g', hash, self.cfg.transient_get_attempts) {
            return Err(self.inject("get_chunk timed out"));
        }
        self.inner.get_chunk(hash)
    }

    // Priority fetches share the `get_chunk` fault budget (same op key):
    // a fault-path fetch during a lazy restore sees exactly the same
    // injected weather a background fetch would, so the tests can prove
    // a faulting page retries with backoff instead of failing the process.
    fn get_chunk_priority(&self, hash: ContentHash) -> Result<Vec<u8>, StoreError> {
        self.delay();
        self.check_cut("get_chunk")?;
        if self.should_fail_attempt(b'g', hash, self.cfg.transient_get_attempts) {
            return Err(self.inject("get_chunk timed out"));
        }
        self.inner.get_chunk_priority(hash)
    }

    fn list_manifests(&self) -> Result<Vec<ImageId>, StoreError> {
        self.delay();
        self.check_cut("list_manifests")?;
        self.inner.list_manifests()
    }

    fn get_manifest(&self, id: ImageId) -> Result<Vec<u8>, StoreError> {
        self.delay();
        self.check_cut("get_manifest")?;
        self.inner.get_manifest(id)
    }

    fn put_manifest(
        &self,
        manifest_bytes: &[u8],
        parent: Option<ImageId>,
    ) -> Result<ImageId, StoreError> {
        self.delay();
        self.check_cut("put_manifest")?;
        self.inner.put_manifest(manifest_bytes, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_helper_recovers_from_bounded_transient_failures() {
        let retries = AtomicUsize::new(0);
        let mut left = MAX_TRANSIENT_RETRIES;
        let out = with_transient_retry(&retries, || {
            if left > 0 {
                left -= 1;
                Err(StoreError::transient("flaky"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries.load(Ordering::Relaxed), MAX_TRANSIENT_RETRIES);
    }

    #[test]
    fn retry_helper_gives_up_after_the_bound() {
        let retries = AtomicUsize::new(0);
        let out: Result<(), _> =
            with_transient_retry(&retries, || Err(StoreError::transient("always down")));
        assert!(matches!(out, Err(StoreError::Transient { .. })));
        assert_eq!(retries.load(Ordering::Relaxed), MAX_TRANSIENT_RETRIES);
    }

    /// Satellite of the observability PR: an observed retry records the
    /// *cause* (error class), the attempt number and the backoff actually
    /// slept — both as counters and as `transient_retry` events.
    #[test]
    fn observed_retries_record_cause_and_backoff() {
        let retries = AtomicUsize::new(0);
        let reg = ObsRegistry::new();
        let obs = RetryObs {
            reg: reg.clone(),
            op: "get_chunk",
        };
        let mut left = 2;
        let out = with_transient_retry_observed(
            &retries,
            || false,
            Some(&obs),
            || {
                if left > 0 {
                    left -= 1;
                    Err(StoreError::transient("flaky"))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out.unwrap(), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("crac_retry_attempts"), 2);
        assert!(
            snap.counter("crac_retry_backoff_us") > 0,
            "backoff sleep time must be totalled"
        );
        let events = reg.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::TransientRetry);
        assert!(events[0].detail.contains("op=get_chunk"));
        assert!(events[0].detail.contains("class=transient"));
        assert!(events[0].detail.contains("attempt=1"));
        assert!(events[1].detail.contains("attempt=2"));
    }

    /// Regression (PR 5 bug): retries used to fire back-to-back with zero
    /// delay — against a real TCP peer that hot-loops, burning the whole
    /// budget in microseconds.  The attempts must now be spaced by the
    /// exponential backoff.
    #[test]
    fn retries_are_spaced_by_exponential_backoff() {
        let retries = AtomicUsize::new(0);
        let base = Duration::from_millis(5);
        let started = std::time::Instant::now();
        let out: Result<(), _> = with_transient_retry_backoff(
            &retries,
            || false,
            base,
            Duration::from_secs(1),
            || Err(StoreError::transient("always down")),
        );
        assert!(out.is_err());
        assert_eq!(retries.load(Ordering::Relaxed), MAX_TRANSIENT_RETRIES);
        // Sleeps of 5 + 10 + 20 ms precede the three retries; `sleep` never
        // returns early, so the lower bound is exact (minus nothing).
        let floor: Duration = (0..MAX_TRANSIENT_RETRIES).map(|i| base * (1u32 << i)).sum();
        assert!(
            started.elapsed() >= floor,
            "retries fired hot: {:?} < {floor:?}",
            started.elapsed()
        );
    }

    #[test]
    fn backoff_delay_is_capped() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(4);
        assert_eq!(backoff_delay(1, base, cap), Duration::from_millis(1));
        assert_eq!(backoff_delay(2, base, cap), Duration::from_millis(2));
        assert_eq!(backoff_delay(3, base, cap), cap);
        assert_eq!(backoff_delay(60, base, cap), cap, "shift is clamped too");
    }

    /// The cancellation probe interrupts a backoff sleep mid-delay: a
    /// latched pipeline failure stops waiting workers promptly instead of
    /// letting each doze through its full (long) backoff.
    #[test]
    fn cancellation_interrupts_the_backoff_sleep() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let retries = AtomicUsize::new(0);
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancel);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flag.store(true, Ordering::Relaxed);
        });
        let started = std::time::Instant::now();
        let out: Result<(), _> = with_transient_retry_backoff(
            &retries,
            || cancel.load(Ordering::Relaxed),
            Duration::from_millis(400),
            Duration::from_secs(2),
            || Err(StoreError::transient("always down")),
        );
        killer.join().unwrap();
        assert!(matches!(out, Err(StoreError::Transient { .. })));
        assert!(
            started.elapsed() < Duration::from_millis(380),
            "cancellation must cut the 400 ms backoff short, took {:?}",
            started.elapsed()
        );
        assert_eq!(
            retries.load(Ordering::Relaxed),
            1,
            "one retry was charged before the cancelled sleep"
        );
    }

    #[test]
    fn retry_helper_fails_fast_on_permanent_errors() {
        let retries = AtomicUsize::new(0);
        let out: Result<(), _> =
            with_transient_retry(&retries, || Err(StoreError::corrupt("/x", "flipped bit")));
        assert!(out.unwrap_err().is_corruption());
        assert_eq!(
            retries.load(Ordering::Relaxed),
            0,
            "corruption is never retried"
        );
    }
}
