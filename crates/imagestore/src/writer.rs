//! The streaming checkpoint writer: a chunk-at-a-time pipeline that
//! overlaps hashing/encoding with file I/O.
//!
//! ```text
//! producer (caller thread)          encoder threads            I/O thread
//! ────────────────────────          ───────────────            ──────────
//! push_run ─► chunker ─► [job q] ─► hash ─► dedup ─► encode ─► [write q] ─► chunk file
//!                        bounded                               bounded
//! ```
//!
//! The producer (a [`RegionSource`](crate::stream::RegionSource) or the
//! DMTCP coordinator's streaming walk) feeds page runs into the
//! [`StreamWriter`]; the chunker packs them into ≤[`CHUNK_PAGES`]-page
//! chunks and submits each one to a **bounded** job queue.  Encoder worker
//! threads hash, consult the store's chunk index (plus a write-local claim
//! set) for deduplication, and encode new content; encoded chunks pass
//! through a second bounded queue to a **dedicated I/O thread** that writes
//! the content-addressed files — so encoding chunk *n+1* overlaps writing
//! chunk *n* (the double-buffering the synchronous writer lacked).
//! Durability is batched: the I/O thread lands chunks under temp names
//! without fsync (the kernel writes back behind it), and `finish` syncs
//! and renames the whole batch before publishing the manifest — the
//! crash-safety invariant (a file only ever appears under its
//! content-hash name with durable bytes) holds with the per-chunk fsync
//! stall gone from the overlap window.
//!
//! Because both queues are bounded, the peak payload the pipeline ever
//! buffers is a small multiple of the chunk size — *independent of the
//! image size*.  [`WriteStats::peak_buffered_bytes`] reports the observed
//! peak and [`stream_buffer_bound`] the analytic bound, which integration
//! tests assert against.
//!
//! **Failure semantics**: the first error (an encoder send failing, the
//! I/O thread hitting a disk error) is latched; later records are drained
//! and discarded so no thread ever blocks forever, the producer's next
//! push returns the latched error, and nothing is published — the
//! manifest is only written and the chunk index only updated when the
//! write finishes cleanly, so a failed write leaves at most orphaned
//! (unreferenced, content-named) chunk files, which are harmless and
//! reclaimed by the next [`ImageStore::delete_image`] sweep.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crac_addrspace::{PageRun, PAGE_SIZE};
use crac_dmtcp::RegionDescriptor;
use crac_obs::{Buckets, Counter, EventKind, Histogram, ObsRegistry, Span};
use crac_sync::Mutex;

use crate::chunk::{trim_superseded, RunChunker, CHUNK_PAGES};
use crate::codec::{encode, Compression, Encoding};
use crate::error::StoreError;
use crate::format::{ChunkEntry, ChunkFile, Manifest, RegionEntry};
use crate::hash::ContentHash;
use crate::pipeline::{latch, ErrorSlot, Gauge};
use crate::store::{ImageId, ImageStore, SharedIndex};
use crate::stream::ChunkSink;

/// Chunks the job queue holds while every encoder is busy (backpressure
/// depth between the producer and the encoders).
pub const ENCODE_QUEUE_CHUNKS: usize = 8;

/// Encoded chunks the write queue holds while the I/O thread is busy
/// (double-buffering depth between the encoders and the disk).
pub const WRITE_QUEUE_CHUNKS: usize = 4;

/// Per-write options.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOptions {
    /// Chunk compression policy.
    pub compression: Compression,
    /// Parent image for an incremental checkpoint.  Chunks shared with
    /// *any* stored image are deduplicated either way (the chunk store is
    /// content-addressed); the parent records lineage for bookkeeping and
    /// garbage collection.
    pub parent: Option<ImageId>,
    /// Worker threads for hashing/encoding; 0 picks the machine default.
    pub threads: usize,
}

impl WriteOptions {
    /// Full checkpoint, no compression (the paper's measurement config).
    pub fn full() -> Self {
        Self::default()
    }

    /// Incremental checkpoint on top of `parent`.
    pub fn incremental(parent: ImageId) -> Self {
        Self {
            parent: Some(parent),
            ..Self::default()
        }
    }

    /// Returns the options with RLE compression enabled.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }
}

/// What one image write cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteStats {
    /// Chunks the image decomposed into.
    pub chunks_total: usize,
    /// Chunks actually written (new content).
    pub chunks_written: usize,
    /// Chunks already present in the store (dedup hits).
    pub chunks_deduped: usize,
    /// Raw (decoded) bytes across all chunks of the image.
    pub raw_chunk_bytes: u64,
    /// Encoded bytes newly written into the chunk store.
    pub chunk_bytes_written: u64,
    /// Size of the manifest file.
    pub manifest_bytes: u64,
    /// Plugin payload bytes (stored inline in the manifest).
    pub payload_bytes: u64,
    /// Worker threads used for hashing/encoding.
    pub threads_used: usize,
    /// Peak *page-content* bytes the pipeline held at any instant
    /// (chunker + queues + in-flight encoder/I/O buffers).  Bounded by
    /// [`stream_buffer_bound`], *not* by the image size — the proof that
    /// the streaming path never materialises the image's page data.
    /// Plugin payloads are excluded: they are inline manifest data, held
    /// whole until the manifest is written (their size is
    /// [`WriteStats::payload_bytes`] — kilobytes of CUDA log, not the
    /// gigabytes of page content the bound is about).
    pub peak_buffered_bytes: u64,
    /// Wall-clock time of the whole write.
    pub elapsed: Duration,
}

impl WriteStats {
    /// Total bytes this write added to the store.
    pub fn bytes_written(&self) -> u64 {
        self.chunk_bytes_written + self.manifest_bytes
    }

    /// Fraction of chunk bytes avoided via dedup + compression, relative to
    /// storing every raw chunk byte (1.0 = stored nothing new).
    pub fn savings_ratio(&self) -> f64 {
        if self.raw_chunk_bytes == 0 {
            return 0.0;
        }
        1.0 - self.chunk_bytes_written as f64 / self.raw_chunk_bytes as f64
    }
}

/// Analytic upper bound on [`WriteStats::peak_buffered_bytes`] for a write
/// that used `threads` encoder threads.
///
/// Every pipeline slot (the chunker's staging chunk, each job-queue entry,
/// one job in each encoder's hands, each write-queue entry, one encoded
/// chunk in the I/O thread's hands) holds at most one chunk; the factor 2
/// covers the transient instants where raw and encoded copies of the same
/// chunk coexist (inside `encode`, and while the I/O thread frames the
/// chunk file).  The bound covers page content only — inline plugin
/// payloads (manifest data, [`WriteStats::payload_bytes`]) are buffered
/// in full on top of it.
pub fn stream_buffer_bound(threads: usize) -> u64 {
    let slots = 1 + ENCODE_QUEUE_CHUNKS + threads + WRITE_QUEUE_CHUNKS + 1;
    2 * slots as u64 * CHUNK_PAGES * PAGE_SIZE
}

/// A chunk handed from the producer to the encoders.
struct EncodeJob {
    region_seq: usize,
    chunk_seq: usize,
    raw: Vec<u8>,
}

/// An encoded chunk handed from an encoder to the I/O thread.
struct WriteJob {
    region_seq: usize,
    chunk_seq: usize,
    hash: ContentHash,
    encoding: Encoding,
    raw_len: u64,
    encoded: Vec<u8>,
}

/// Run-registry handles the encoder stages record into (one bundle shared
/// by every encoder thread; all handles are cheap atomics).
struct EncoderObs {
    stage_hash: Histogram,
    stage_dedup: Histogram,
    stage_encode: Histogram,
    chunks_deduped: Counter,
}

/// Run-registry handles the I/O thread records into.
struct IoObs {
    stage_io: Histogram,
    chunks_written: Counter,
    chunk_bytes_written: Counter,
}

/// The hash/dedup verdict for one chunk, reported back to the producer.
struct ChunkOutcome {
    region_seq: usize,
    chunk_seq: usize,
    hash: ContentHash,
    /// Chunk-file bytes written, or `None` for a dedup hit.
    written_bytes: Option<u64>,
}

/// A chunk's manifest metadata, known at submit time; the hash arrives
/// later via its [`ChunkOutcome`].
struct PendingChunk {
    runs: Vec<PageRun>,
    raw_len: u64,
    hash: Option<ContentHash>,
}

/// The streaming writer: the store's canonical [`ChunkSink`].
///
/// Obtain one through [`ImageStore::stream_image`], feed it records (or let
/// a [`RegionSource`](crate::stream::RegionSource) / the coordinator do
/// so), and the pipeline encodes and writes chunks behind your back; the
/// manifest is assembled and published when the `stream_image` closure
/// returns.
pub struct StreamWriter<'s> {
    store: &'s ImageStore,
    /// Read side of the store's writer gate, held for the writer's whole
    /// lifetime: deletion (the write side) is excluded while any stream
    /// is in flight, with no check-then-act window.
    _writer_guard: crac_sync::RwLockReadGuard<'s, ()>,
    opts: WriteOptions,
    started: Instant,
    gauge: Arc<Gauge>,
    error: ErrorSlot,
    /// Chunk files written to temp names, awaiting the batched
    /// fsync + rename at finish: `(tmp path, final path)`.
    pending_publish: Arc<Mutex<Vec<(PathBuf, PathBuf)>>>,

    // Pipeline plumbing (Options so shutdown can drop senders first).
    job_tx: Option<SyncSender<EncodeJob>>,
    outcome_rx: Option<Receiver<ChunkOutcome>>,
    encoders: Vec<JoinHandle<()>>,
    io_thread: Option<JoinHandle<()>>,

    // Chunker state for the currently open region.
    cur_region: Option<usize>,
    chunker: RunChunker,

    // Manifest accumulation.
    regions: Vec<RegionDescriptor>,
    chunks: Vec<Vec<PendingChunk>>,
    payloads: Vec<(String, Vec<u8>)>,
    taken_at_ns: u64,
    threads: usize,

    /// Per-run registry: the pipeline's single source of truth for write
    /// bookkeeping.  [`WriteStats`] is built *from* its snapshot at finish
    /// (a view, not parallel tallies) and the snapshot is folded into the
    /// store's long-lived registry.
    run: ObsRegistry,
    chunks_total_c: Counter,
    raw_bytes_c: Counter,
}

impl<'s> StreamWriter<'s> {
    pub(crate) fn new(store: &'s ImageStore, opts: WriteOptions) -> Result<Self, StoreError> {
        store.check_writable()?;
        let writer_guard = store.writer_guard();
        if let Some(parent) = opts.parent {
            if !store.contains_image(parent) {
                return Err(StoreError::UnknownImage(parent));
            }
        }
        let threads = effective_threads(opts.threads);
        let gauge = Arc::new(Gauge::default());
        let error: ErrorSlot = Arc::new(Mutex::new("imagestore.writer.error", None));
        let run = ObsRegistry::new();
        run.gauge("crac_writer_threads").set(threads as u64);
        let encoder_obs = Arc::new(EncoderObs {
            stage_hash: run.histogram("crac_writer_stage_hash_us", Buckets::LATENCY_US),
            stage_dedup: run.histogram("crac_writer_stage_dedup_us", Buckets::LATENCY_US),
            stage_encode: run.histogram("crac_writer_stage_encode_us", Buckets::LATENCY_US),
            chunks_deduped: run.counter("crac_writer_chunks_deduped"),
        });
        let io_obs = IoObs {
            stage_io: run.histogram("crac_writer_stage_io_us", Buckets::LATENCY_US),
            chunks_written: run.counter("crac_writer_chunks_written"),
            chunk_bytes_written: run.counter("crac_writer_chunk_bytes_written"),
        };
        store.obs().event(
            EventKind::CheckpointBegun,
            format!("threads={threads} compression={:?}", opts.compression),
        );

        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<EncodeJob>(ENCODE_QUEUE_CHUNKS);
        let (write_tx, write_rx) = std::sync::mpsc::sync_channel::<WriteJob>(WRITE_QUEUE_CHUNKS);
        let (outcome_tx, outcome_rx) = std::sync::mpsc::channel::<ChunkOutcome>();
        let job_rx = Arc::new(Mutex::new("imagestore.writer.job_rx", job_rx));
        // Batch-local claim set: the first encoder to hash unseen content
        // wins the right to write it; the store index only learns about the
        // new chunks at commit time.
        let claimed = Arc::new(Mutex::new(
            "imagestore.writer.claimed",
            std::collections::HashSet::new(),
        ));

        let mut encoders = Vec::with_capacity(threads);
        for _ in 0..threads {
            encoders.push(spawn_encoder(
                Arc::clone(&job_rx),
                write_tx.clone(),
                outcome_tx.clone(),
                store.index_handle(),
                Arc::clone(&claimed),
                opts.compression,
                Arc::clone(&gauge),
                Arc::clone(&error),
                Arc::clone(&encoder_obs),
            ));
        }
        // The producer holds no write/outcome sender: once `job_tx` drops,
        // the encoders drain and exit, their sender clones drop, and the
        // I/O thread drains and exits — clean pipeline shutdown with no
        // explicit signalling.
        drop(write_tx);
        let pending_publish: Arc<Mutex<Vec<(PathBuf, PathBuf)>>> =
            Arc::new(Mutex::new("imagestore.writer.pending_publish", Vec::new()));
        let io_thread = spawn_io(
            write_rx,
            outcome_tx,
            store.chunks_dir().to_path_buf(),
            Arc::clone(&pending_publish),
            Arc::clone(&gauge),
            Arc::clone(&error),
            io_obs,
        );

        let chunks_total_c = run.counter("crac_writer_chunks_total");
        let raw_bytes_c = run.counter("crac_writer_raw_chunk_bytes");
        Ok(Self {
            store,
            _writer_guard: writer_guard,
            opts,
            // crac-lint: allow(raw-instant) — wall-clock anchor for WriteStats, not a stage timing
            started: Instant::now(),
            gauge,
            error,
            pending_publish,
            job_tx: Some(job_tx),
            outcome_rx: Some(outcome_rx),
            encoders,
            io_thread: Some(io_thread),
            cur_region: None,
            chunker: RunChunker::default(),
            regions: Vec::new(),
            chunks: Vec::new(),
            payloads: Vec::new(),
            taken_at_ns: 0,
            threads,
            run,
            chunks_total_c,
            raw_bytes_c,
        })
    }

    /// Stamps the manifest's `taken_at_ns` (virtual checkpoint-completion
    /// time).  May be called at any point before the write finishes.
    pub fn set_taken_at(&mut self, ns: u64) {
        self.taken_at_ns = ns;
    }

    /// Fails fast if the pipeline has already latched an error.
    fn check_failed(&self) -> Result<(), StoreError> {
        if let Some(err) = self.error.lock().take() {
            return Err(err);
        }
        Ok(())
    }

    /// Submits one packed chunk to the encoders (blocking while the job
    /// queue is full — that backpressure is what bounds the producer).
    fn submit_chunk(&mut self, runs: Vec<PageRun>, raw: Vec<u8>) -> Result<(), StoreError> {
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        let region_seq = self.cur_region.expect("chunk outside a region");
        self.chunks_total_c.inc();
        self.raw_bytes_c.add(raw.len() as u64);
        self.gauge.add(raw.len() as u64);
        let chunk_seq = self.chunks[region_seq].len();
        self.chunks[region_seq].push(PendingChunk {
            runs,
            raw_len: raw.len() as u64,
            hash: None,
        });
        let job = EncodeJob {
            region_seq,
            chunk_seq,
            raw,
        };
        if self
            .job_tx
            .as_ref()
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            .expect("pipeline already shut down")
            .send(job)
            .is_err()
        {
            // Every encoder exited early — only happens after a latched
            // error (or a panic, which the latch check turns into Busy).
            self.check_failed()?;
            return Err(StoreError::busy("writer pipeline stalled"));
        }
        Ok(())
    }

    /// Drops the senders and joins every pipeline thread.
    fn shutdown_pipeline(&mut self) {
        self.job_tx.take();
        for h in self.encoders.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.io_thread.take() {
            let _ = h.join();
        }
    }

    /// Completes the write: drains the pipeline, assembles and publishes
    /// the manifest, and commits the new chunks to the store index.
    pub(crate) fn finish(mut self) -> Result<(Manifest, WriteStats), StoreError> {
        debug_assert!(
            self.chunker.is_empty(),
            "finish called with an unclosed region"
        );
        self.shutdown_pipeline();
        self.check_failed()?;

        // Batched durability: fsync + rename every chunk written this
        // batch, then sync the directory once.  The data has been writing
        // back since the I/O thread put it down, so these fsyncs mostly
        // find clean pages — the per-chunk fsync stall the synchronous
        // writer paid is gone from the overlap window entirely.
        let pending = std::mem::take(&mut *self.pending_publish.lock());
        let had_chunks = !pending.is_empty();
        for (tmp, path) in pending {
            publish_tmp(&tmp, &path)?;
        }
        if had_chunks {
            sync_dir(self.store.chunks_dir());
        }

        // The encoder and I/O threads already tallied written/dedup counts
        // into the run registry; the outcome loop only has to collect the
        // hashes the manifest needs and the set of chunks to commit.
        let mut newly_written: Vec<ContentHash> = Vec::new();
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        let outcome_rx = self.outcome_rx.take().expect("finish runs once");
        for outcome in outcome_rx.iter() {
            let slot = &mut self.chunks[outcome.region_seq][outcome.chunk_seq];
            debug_assert!(slot.hash.is_none(), "duplicate outcome for one chunk");
            slot.hash = Some(outcome.hash);
            if outcome.written_bytes.is_some() {
                newly_written.push(outcome.hash);
            }
        }

        // Drop chunk entries fully superseded by later rounds' re-emitted
        // runs: every page they cover is re-covered by a later entry, so
        // no fetch plan would ever read a byte from them.  (Their chunk
        // files stay — valid, unreferenced, GC-sweepable.)
        for chunks in self.chunks.iter_mut() {
            trim_superseded(chunks, |c| c.runs.as_slice());
        }

        // Deterministic manifest regardless of producer payload order.
        self.payloads.sort_by(|(a, _), (b, _)| a.cmp(b));
        self.run
            .counter("crac_writer_payload_bytes")
            .add(self.payloads.iter().map(|(_, d)| d.len() as u64).sum());

        let image_id = self.store.allocate_image_id();
        let manifest = Manifest {
            image_id,
            parent: self.opts.parent,
            taken_at_ns: self.taken_at_ns,
            compression: self.opts.compression,
            regions: self
                .regions
                .iter()
                .zip(self.chunks.iter())
                .map(|(desc, chunks)| RegionEntry {
                    start: desc.start.as_u64(),
                    len: desc.len,
                    prot: desc.prot,
                    label: desc.label.clone(),
                    chunks: chunks
                        .iter()
                        .map(|c| ChunkEntry {
                            runs: c.runs.clone(),
                            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
                            hash: c.hash.expect("pipeline reported every chunk"),
                            raw_len: c.raw_len,
                        })
                        .collect(),
                })
                .collect(),
            payloads: std::mem::take(&mut self.payloads),
        };
        let manifest_bytes = manifest.to_bytes();
        write_atomically(&self.store.image_path(image_id), &manifest_bytes)?;
        self.run
            .counter("crac_writer_manifest_bytes")
            .add(manifest_bytes.len() as u64);

        // Only now publish the new chunks into the store's index: a failure
        // above leaves the index unchanged (orphan files are harmless —
        // they are re-discovered, re-written or swept, never referenced).
        self.store.commit_chunks(&newly_written);

        // The pipeline gauge's high-water mark lands in the registry too,
        // so `render_text` exposes the bounded-memory evidence.
        self.run
            .gauge("crac_writer_buffered_bytes")
            .raise_peak(self.gauge.peak());

        // WriteStats is a *view* over the run registry — one bookkeeping
        // substrate, two presentations.
        let snap = self.run.snapshot();
        let stats = WriteStats {
            chunks_total: snap.counter("crac_writer_chunks_total") as usize,
            chunks_written: snap.counter("crac_writer_chunks_written") as usize,
            chunks_deduped: snap.counter("crac_writer_chunks_deduped") as usize,
            raw_chunk_bytes: snap.counter("crac_writer_raw_chunk_bytes"),
            chunk_bytes_written: snap.counter("crac_writer_chunk_bytes_written"),
            manifest_bytes: snap.counter("crac_writer_manifest_bytes"),
            payload_bytes: snap.counter("crac_writer_payload_bytes"),
            threads_used: self.threads,
            peak_buffered_bytes: self.gauge.peak(),
            elapsed: self.started.elapsed(),
        };
        debug_assert_eq!(
            stats.chunks_written + stats.chunks_deduped,
            stats.chunks_total
        );

        // Fold the run's totals into the store's long-lived registry and
        // close the narrative.
        let store_obs = self.store.obs();
        store_obs.absorb(&snap);
        store_obs.event(
            EventKind::CheckpointFinished,
            format!(
                "image={image_id} chunks={} written={} deduped={} bytes_written={}",
                stats.chunks_total,
                stats.chunks_written,
                stats.chunks_deduped,
                stats.bytes_written()
            ),
        );
        Ok((manifest, stats))
    }
}

impl Drop for StreamWriter<'_> {
    fn drop(&mut self) {
        // The abort path (producer error or panic): tear the pipeline down
        // without publishing anything, and clear the unpublished temp
        // files (best-effort — anything missed is `.tmp` litter the GC
        // sweep reclaims).  Chunks a failed `finish` already renamed stay:
        // unreferenced but valid, they are re-discovered or swept.
        self.shutdown_pipeline();
        for (tmp, _) in self.pending_publish.lock().drain(..) {
            let _ = fs::remove_file(tmp);
        }
    }
}

impl ChunkSink for StreamWriter<'_> {
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), StoreError> {
        self.check_failed()?;
        debug_assert!(self.cur_region.is_none(), "begin_region while one is open");
        // A start address seen before re-opens that region: a pre-copy
        // producer appending a later round's re-dirtied runs.  The new
        // chunks land *after* the earlier ones in the region's chunk list,
        // which is exactly the order the restore side's last-write-wins
        // resolution relies on.
        let existing = self.regions.iter().position(|r| r.start == desc.start);
        self.cur_region = Some(match existing {
            Some(idx) => idx,
            None => {
                self.regions.push(desc.clone());
                self.chunks.push(Vec::new());
                self.regions.len() - 1
            }
        });
        Ok(())
    }

    fn push_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), StoreError> {
        self.check_failed()?;
        debug_assert_eq!(bytes.len() as u64, run.count * PAGE_SIZE);
        debug_assert!(self.cur_region.is_some(), "push_run outside a region");
        // The shared RunChunker splits at the same boundaries for every
        // sink, so content hashes — and therefore dedup against other
        // stores and nodes — are stable by construction.
        let mut chunker = std::mem::take(&mut self.chunker);
        let result = chunker.push(run, bytes, &mut |runs, raw| self.submit_chunk(runs, raw));
        self.chunker = chunker;
        result
    }

    fn end_region(&mut self) -> Result<(), StoreError> {
        let mut chunker = std::mem::take(&mut self.chunker);
        let result = chunker.flush(&mut |runs, raw| self.submit_chunk(runs, raw));
        self.chunker = chunker;
        result?;
        // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
        let region = self.cur_region.expect("end_region without begin");
        let desc = &self.regions[region];
        self.store.obs().event(
            EventKind::RegionStreamed,
            format!(
                "label={} len={} chunks={}",
                desc.label,
                desc.len,
                self.chunks[region].len()
            ),
        );
        self.cur_region = None;
        Ok(())
    }

    fn push_payload(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        self.check_failed()?;
        self.payloads.push((name.to_string(), data.to_vec()));
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_encoder(
    job_rx: Arc<Mutex<Receiver<EncodeJob>>>,
    write_tx: SyncSender<WriteJob>,
    outcome_tx: Sender<ChunkOutcome>,
    index: SharedIndex,
    claimed: Arc<Mutex<std::collections::HashSet<ContentHash>>>,
    compression: Compression,
    gauge: Arc<Gauge>,
    error: ErrorSlot,
    obs: Arc<EncoderObs>,
) -> JoinHandle<()> {
    // crac-lint: allow(raw-spawn) — encoder/publisher worker threads are owned by the pipeline and joined at finish()
    std::thread::spawn(move || loop {
        // Holding the mutex across `recv` serialises wakeups but is the
        // std-only way to share one receiver; encode/IO dominate anyway.
        let job = match job_rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // producer dropped the sender: drained
        };
        let raw_len = job.raw.len() as u64;
        if error.lock().is_some() {
            gauge.sub(raw_len);
            continue; // drain mode: keep the producer from blocking
        }
        let hash = {
            let _stage = Span::enter(&obs.stage_hash);
            ContentHash::of(&job.raw)
        };
        // First claimant of unseen content encodes it; everyone else is a
        // dedup hit.  The claim set spans one write; the index spans the
        // store's life.
        let is_new = {
            let _stage = Span::enter(&obs.stage_dedup);
            !index.lock().contains(hash) && claimed.lock().insert(hash)
        };
        if is_new {
            let stage = Span::enter(&obs.stage_encode);
            let (encoding, encoded) = encode(&job.raw, compression);
            stage.finish();
            gauge.add(encoded.len() as u64);
            drop(job.raw);
            gauge.sub(raw_len);
            let send = write_tx.send(WriteJob {
                region_seq: job.region_seq,
                chunk_seq: job.chunk_seq,
                hash,
                encoding,
                raw_len,
                encoded,
            });
            if let Err(failed) = send {
                // I/O thread gone: only after a latch (or panic).
                gauge.sub(failed.0.encoded.len() as u64);
                latch(&error, StoreError::busy("chunk I/O thread exited early"));
            }
        } else {
            obs.chunks_deduped.inc();
            gauge.sub(raw_len);
            let _ = outcome_tx.send(ChunkOutcome {
                region_seq: job.region_seq,
                chunk_seq: job.chunk_seq,
                hash,
                written_bytes: None,
            });
        }
    })
}

fn spawn_io(
    write_rx: Receiver<WriteJob>,
    outcome_tx: Sender<ChunkOutcome>,
    chunks_dir: PathBuf,
    pending_publish: Arc<Mutex<Vec<(PathBuf, PathBuf)>>>,
    gauge: Arc<Gauge>,
    error: ErrorSlot,
    obs: IoObs,
) -> JoinHandle<()> {
    // crac-lint: allow(raw-spawn) — encoder/publisher worker threads are owned by the pipeline and joined at finish()
    std::thread::spawn(move || {
        for job in write_rx.iter() {
            let encoded_len = job.encoded.len() as u64;
            if error.lock().is_some() {
                gauge.sub(encoded_len);
                continue; // drain mode
            }
            let file = ChunkFile {
                encoding: job.encoding,
                raw_len: job.raw_len,
                encoded: job.encoded,
            };
            let bytes = file.to_bytes();
            let path = chunks_dir.join(format!("{}.chk", job.hash.to_hex()));
            // Deferred durability: land the bytes under a temp name now (no
            // fsync — the kernel writes back behind us) and queue the
            // fsync + rename for the batched publish at finish.
            let stage = Span::enter(&obs.stage_io);
            let written = write_tmp(&path, &bytes);
            stage.finish();
            match written {
                Ok(tmp) => {
                    pending_publish.lock().push((tmp, path));
                    obs.chunks_written.inc();
                    obs.chunk_bytes_written.add(bytes.len() as u64);
                    let _ = outcome_tx.send(ChunkOutcome {
                        region_seq: job.region_seq,
                        chunk_seq: job.chunk_seq,
                        hash: job.hash,
                        written_bytes: Some(bytes.len() as u64),
                    });
                }
                Err(e) => latch(&error, e),
            }
            gauge.sub(encoded_len);
        }
    })
}

fn effective_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested > 0 { requested } else { hw.min(8) };
    t.max(1)
}

/// A unique temp name next to `path` — unique per process *and* per call:
/// two concurrent writers racing on the same content-addressed chunk must
/// not interleave into one shared `.tmp`; each renames a complete file, and
/// whichever rename lands last wins with valid bytes.
fn tmp_name(path: &Path) -> PathBuf {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// Stage 1 of a deferred-durability write: put `bytes` under a unique temp
/// name *without* syncing, returning the temp path.  The kernel writes the
/// data back in the background while the pipeline keeps moving; the
/// batched [`publish_tmp`] calls at finish then find mostly clean pages,
/// so the fsync cost is paid once, overlapped, instead of once per chunk
/// on the I/O thread's critical path.
fn write_tmp(path: &Path, bytes: &[u8]) -> Result<PathBuf, StoreError> {
    use std::io::Write;
    let tmp = tmp_name(path);
    let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
    f.write_all(bytes).map_err(|e| StoreError::io(&tmp, e))?;
    Ok(tmp)
}

/// Stage 2: flush the temp file to stable storage, *then* rename it to its
/// final name.  The order is the crash-safety invariant: a file only ever
/// appears under its content-hash name with its bytes durable, so the
/// name-based index can never be tricked into trusting a truncated chunk.
/// (A crash between the stages leaves only `.tmp` litter, which the GC
/// sweep reclaims.)  Directory syncing is the caller's batched job.
fn publish_tmp(tmp: &Path, path: &Path) -> Result<(), StoreError> {
    let f = fs::File::open(tmp).map_err(|e| StoreError::io(tmp, e))?;
    f.sync_all().map_err(|e| StoreError::io(tmp, e))?;
    fs::rename(tmp, path).map_err(|e| StoreError::io(path, e))?;
    Ok(())
}

/// Best-effort fsync of a directory, so renames into it survive a crash
/// (not all platforms allow dir fsync).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `path` through temp file + fsync + rename in one call
/// (used for manifests, which are published the moment they are written).
pub(crate) fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = write_tmp(path, bytes)?;
    publish_tmp(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}
