//! The checkpoint writer pipeline: chunk → hash → dedup → encode → write.
//!
//! Hashing and encoding are the CPU-heavy stages, so they run on scoped
//! worker threads over disjoint slices of the chunk-job list; deduplication
//! needs a single view of the store's chunk set, so workers consult a shared
//! mutex-protected reservation set (first worker to hash a given content
//! wins and encodes it, everyone else records a dedup hit).  File writes
//! happen on the calling thread afterwards — chunk files are content-named
//! and written via a temp-file + rename so a crash never leaves a torn chunk
//! under its final name.

use std::collections::HashSet;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use crac_dmtcp::CheckpointImage;
use parking_lot::Mutex;

use crate::chunk::{chunk_region, ChunkJob};
use crate::codec::{encode, Compression, Encoding};
use crate::error::StoreError;
use crate::format::{ChunkEntry, ChunkFile, Manifest, RegionEntry};
use crate::hash::ContentHash;
use crate::store::{ImageId, ImageStore};

/// Per-write options.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOptions {
    /// Chunk compression policy.
    pub compression: Compression,
    /// Parent image for an incremental checkpoint.  Chunks shared with
    /// *any* stored image are deduplicated either way (the chunk store is
    /// content-addressed); the parent records lineage for bookkeeping and
    /// future garbage collection.
    pub parent: Option<ImageId>,
    /// Worker threads for hashing/encoding; 0 picks the machine default.
    pub threads: usize,
}

impl WriteOptions {
    /// Full checkpoint, no compression (the paper's measurement config).
    pub fn full() -> Self {
        Self::default()
    }

    /// Incremental checkpoint on top of `parent`.
    pub fn incremental(parent: ImageId) -> Self {
        Self {
            parent: Some(parent),
            ..Self::default()
        }
    }

    /// Returns the options with RLE compression enabled.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }
}

/// What one image write cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteStats {
    /// Chunks the image decomposed into.
    pub chunks_total: usize,
    /// Chunks actually written (new content).
    pub chunks_written: usize,
    /// Chunks already present in the store (dedup hits).
    pub chunks_deduped: usize,
    /// Raw (decoded) bytes across all chunks of the image.
    pub raw_chunk_bytes: u64,
    /// Encoded bytes newly written into the chunk store.
    pub chunk_bytes_written: u64,
    /// Size of the manifest file.
    pub manifest_bytes: u64,
    /// Plugin payload bytes (stored inline in the manifest).
    pub payload_bytes: u64,
    /// Worker threads used for hashing/encoding.
    pub threads_used: usize,
    /// Wall-clock time of the whole write.
    pub elapsed: Duration,
}

impl WriteStats {
    /// Total bytes this write added to the store.
    pub fn bytes_written(&self) -> u64 {
        self.chunk_bytes_written + self.manifest_bytes
    }

    /// Fraction of chunk bytes avoided via dedup + compression, relative to
    /// storing every raw chunk byte (1.0 = stored nothing new).
    pub fn savings_ratio(&self) -> f64 {
        if self.raw_chunk_bytes == 0 {
            return 0.0;
        }
        1.0 - self.chunk_bytes_written as f64 / self.raw_chunk_bytes as f64
    }
}

/// Outcome of hashing/encoding one chunk job.
enum JobOutcome {
    /// Content already in the store (or claimed by an earlier job of this
    /// batch).
    Dedup { hash: ContentHash },
    /// New content: encoded and ready to write.
    New {
        hash: ContentHash,
        encoding: Encoding,
        encoded: Vec<u8>,
    },
}

impl JobOutcome {
    fn hash(&self) -> ContentHash {
        match self {
            JobOutcome::Dedup { hash } | JobOutcome::New { hash, .. } => *hash,
        }
    }
}

/// Writes `image` into the store, returning the written manifest and stats.
///
/// Called by [`ImageStore::write_image`]; not public API.
pub(crate) fn write_image(
    store: &ImageStore,
    image: &CheckpointImage,
    opts: &WriteOptions,
) -> Result<(Manifest, WriteStats), StoreError> {
    let start = Instant::now();
    if let Some(parent) = opts.parent {
        if !store.contains_image(parent) {
            return Err(StoreError::UnknownImage(parent));
        }
    }

    // Stage 1: chunk every region (cheap, sequential).
    let mut jobs: Vec<ChunkJob> = Vec::new();
    for (i, region) in image.regions.iter().enumerate() {
        jobs.extend(chunk_region(i, region));
    }

    // Stage 2: hash + dedup + encode in parallel over disjoint job slices.
    // Workers consult the store's index directly (brief lock per chunk)
    // plus a batch-local claim set, so the cost per write scales with the
    // checkpoint, not with the store's lifetime chunk count.
    let threads = effective_threads(opts.threads, jobs.len());
    let claimed: Mutex<HashSet<ContentHash>> = Mutex::new(HashSet::new());
    let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
    outcomes.resize_with(jobs.len(), || None);
    let compression = opts.compression;

    std::thread::scope(|scope| {
        let mut job_tail: &[ChunkJob] = &jobs;
        let mut out_tail: &mut [Option<JobOutcome>] = &mut outcomes;
        let per_thread = jobs.len().div_ceil(threads.max(1));
        for _ in 0..threads {
            let n = per_thread.min(job_tail.len());
            if n == 0 {
                break;
            }
            let (job_slice, rest_jobs) = job_tail.split_at(n);
            let (out_slice, rest_out) = out_tail.split_at_mut(n);
            job_tail = rest_jobs;
            out_tail = rest_out;
            let claimed = &claimed;
            scope.spawn(move || {
                for (job, out) in job_slice.iter().zip(out_slice.iter_mut()) {
                    let hash = job.content_hash();
                    let is_new = !store.contains_chunk(hash) && claimed.lock().insert(hash);
                    *out = Some(if is_new {
                        let (encoding, encoded) = encode(&job.raw, compression);
                        JobOutcome::New {
                            hash,
                            encoding,
                            encoded,
                        }
                    } else {
                        JobOutcome::Dedup { hash }
                    });
                }
            });
        }
    });

    // Stage 3: write new chunk files, then assemble the manifest.
    let mut stats = WriteStats {
        chunks_total: jobs.len(),
        threads_used: threads,
        ..Default::default()
    };
    let mut region_chunks: Vec<Vec<ChunkEntry>> = vec![Vec::new(); image.regions.len()];
    let mut newly_written: Vec<ContentHash> = Vec::new();
    for (job, outcome) in jobs.iter().zip(outcomes) {
        let outcome = outcome.expect("every job slice was processed");
        let hash = outcome.hash();
        stats.raw_chunk_bytes += job.raw.len() as u64;
        match outcome {
            JobOutcome::New {
                encoding, encoded, ..
            } => {
                let file = ChunkFile {
                    encoding,
                    raw_len: job.raw.len() as u64,
                    encoded,
                };
                let bytes = file.to_bytes();
                write_atomically(&store.chunk_path(hash), &bytes)?;
                stats.chunks_written += 1;
                stats.chunk_bytes_written += bytes.len() as u64;
                newly_written.push(hash);
            }
            JobOutcome::Dedup { .. } => stats.chunks_deduped += 1,
        }
        region_chunks[job.region_index].push(ChunkEntry {
            runs: job.runs.clone(),
            hash,
            raw_len: job.raw.len() as u64,
        });
    }

    let image_id = store.allocate_image_id();
    let manifest = Manifest {
        image_id,
        parent: opts.parent,
        taken_at_ns: image.taken_at_ns,
        compression: opts.compression,
        regions: image
            .regions
            .iter()
            .zip(region_chunks)
            .map(|(r, chunks)| RegionEntry {
                start: r.start.as_u64(),
                len: r.len,
                prot: r.prot,
                label: r.label.clone(),
                chunks,
            })
            .collect(),
        payloads: image
            .payloads
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
    };
    let manifest_bytes = manifest.to_bytes();
    write_atomically(&store.image_path(image_id), &manifest_bytes)?;
    stats.manifest_bytes = manifest_bytes.len() as u64;
    stats.payload_bytes = image.payloads.values().map(|p| p.len() as u64).sum();

    // Only now publish the new chunks into the store's index: a failure
    // above leaves the index unchanged (orphan files are harmless — they
    // are re-discovered or re-written, never referenced).
    store.commit_chunks(&newly_written);
    stats.elapsed = start.elapsed();
    Ok((manifest, stats))
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested > 0 { requested } else { hw.min(8) };
    t.clamp(1, jobs.max(1))
}

/// Writes `bytes` to `path` through a temp file + rename, so the final name
/// never holds a torn write.  The temp name is unique per process *and* per
/// call: two concurrent writers racing on the same content-addressed chunk
/// must not interleave into one shared `.tmp` — each renames a complete
/// file, and whichever rename lands last wins with valid bytes.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    {
        use std::io::Write;
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        f.write_all(bytes).map_err(|e| StoreError::io(&tmp, e))?;
        // Flush data to stable storage *before* the rename: on journaling
        // filesystems the rename can otherwise persist ahead of the data,
        // leaving a truncated file under its final content-hash name after
        // a crash — which the name-based index would then trust forever.
        f.sync_all().map_err(|e| StoreError::io(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))?;
    // Persist the directory entry too, so the rename itself survives a
    // crash (best-effort: not all platforms allow dir fsync).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}
