//! Plumbing shared by the streaming writer and reader pipelines: the
//! payload-bytes-in-flight gauge behind the `peak_buffered_bytes` stats,
//! and the first-error-wins latch that turns a multi-threaded failure into
//! one deterministic result while the remaining stages drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StoreError;

/// Payload-bytes-in-flight gauge shared by every pipeline stage.
///
/// Stages `add` a buffer's bytes when they take ownership of it and `sub`
/// when they release it; `peak` is the high-water mark the bounded-memory
/// integration tests assert against
/// ([`crate::writer::stream_buffer_bound`] /
/// [`crate::reader::restore_buffer_bound`]).
#[derive(Default)]
pub(crate) struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    pub(crate) fn add(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn sub(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub(crate) fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Shared error latch: first failure wins, everything after drains.
pub(crate) type ErrorSlot = Arc<Mutex<Option<StoreError>>>;

pub(crate) fn latch(slot: &ErrorSlot, err: StoreError) {
    slot.lock().get_or_insert(err);
}
