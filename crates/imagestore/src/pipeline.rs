//! Plumbing shared by the streaming writer and reader pipelines: the
//! payload-bytes-in-flight gauge behind the `peak_buffered_bytes` stats,
//! and the first-error-wins latch that turns a multi-threaded failure into
//! one deterministic result while the remaining stages drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crac_sync::Mutex;

use crate::error::StoreError;

/// Payload-bytes-in-flight gauge shared by every pipeline stage.
///
/// Stages `add` a buffer's bytes when they take ownership of it and `sub`
/// when they release it; `peak` is the high-water mark the bounded-memory
/// integration tests assert against
/// ([`crate::writer::stream_buffer_bound`] /
/// [`crate::reader::restore_buffer_bound`]).
#[derive(Default)]
pub(crate) struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    pub(crate) fn add(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases bytes, saturating at zero: a mismatched add/sub pair is
    /// a stage-accounting bug (asserted in debug builds), but it must
    /// not wrap `current` to ~`u64::MAX` — one wrap would poison `peak`
    /// for the rest of the run and fail every buffer-bound assertion
    /// after it.
    pub(crate) fn sub(&self, bytes: u64) {
        let prev = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            })
            // crac-lint: allow(no-unwrap) — fetch_update closure is total — it always returns Some
            .expect("fetch_update closure always returns Some");
        debug_assert!(
            prev >= bytes,
            "gauge sub({bytes}) underflows current {prev}: add/sub mismatch"
        );
    }

    pub(crate) fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Shared error latch: first failure wins, everything after drains.
pub(crate) type ErrorSlot = Arc<Mutex<Option<StoreError>>>;

pub(crate) fn latch(slot: &ErrorSlot, err: StoreError) {
    slot.lock().get_or_insert(err);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a mismatched add/sub pair must saturate at zero, not
    /// wrap `current` to ~`u64::MAX` and poison `peak` forever.  (The
    /// debug assertion still flags the mismatch in debug builds — the
    /// point here is the release-mode arithmetic.)
    #[test]
    fn gauge_sub_saturates_instead_of_wrapping() {
        let g = Gauge::default();
        g.add(8);
        let over = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.sub(32)));
        if cfg!(debug_assertions) {
            over.expect_err("debug builds assert on the mismatch");
        } else {
            over.expect("release builds saturate silently");
        }
        // current pinned at zero, peak untouched by the bad sub…
        assert_eq!(g.peak(), 8);
        // …and the next add sees a sane baseline, not ~u64::MAX.
        g.add(3);
        assert_eq!(g.peak(), 8, "peak must not jump after a lopsided sub");
    }
}
