//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the subset of the `parking_lot` API the reproduction uses —
//! [`Mutex`] and [`RwLock`] whose guards are returned directly (no poison
//! `Result`) — implemented over `std::sync`.  Poisoning is deliberately
//! swallowed: a panicking thread must not wedge every later test the way
//! `std` poisoning would, and `parking_lot` itself has no poisoning at all.

// This shim *is* the raw-lock layer the workspace bans elsewhere.
#![allow(clippy::disallowed_types)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking, returning `None` if
    /// it is currently held (parking_lot's `try_lock` signature).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking, returning `None` if
    /// a writer currently holds the lock (parking_lot's `try_read`
    /// signature).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking, returning `None`
    /// if any reader or writer currently holds the lock (parking_lot's
    /// `try_write` signature).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot has no poisoning; the shim must keep working too.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
