//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local shim
//! implements the slice of the proptest API the repository's property tests
//! use: the [`Strategy`] trait with `prop_map`, integer-range / tuple /
//! collection / option strategies, `any::<T>()`, the `prop_oneof!` union
//! macro, and the `proptest!` test-harness macro with
//! `ProptestConfig::with_cases`.
//!
//! Generation is a seeded xorshift PRNG: deterministic per test name, so
//! failures reproduce, while still exploring a different value sequence for
//! every case index.  There is no shrinking — a failing case panics with the
//! generated inputs Debug-printed by the assertion itself.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between alternative strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` roughly one time in four).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob the shim honours).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// A small, fast, seedable xorshift64* PRNG.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG seeded from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed non-zero seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy arms (all arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Property assertion (the shim panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render the inputs up front: the body may consume them.
                let mut rendered_inputs = String::new();
                $(rendered_inputs.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg
                ));)+
                let run = || $body;
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs:\n{rendered_inputs}",
                        stringify!($name)
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (1u64..4).prop_map(|n| n * 100),
            (7u64..9).prop_map(|n| n),
        ]) {
            prop_assert!(matches!(y, 100 | 200 | 300 | 7 | 8), "unexpected {y}");
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
