//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local shim
//! implements the criterion API surface the `crac-bench` benches use:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed for `sample_size` batches (or until `measurement_time`
//! elapses, whichever comes first) and the per-iteration mean / min are
//! printed.  Under `cargo test` (cargo invokes bench executables with
//! `--test`) every benchmark body runs exactly once as a smoke test.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value laundering, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How benchmark executables were invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Bench,
    /// `cargo test`: run each body once, report nothing.
    Test,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Bench
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    /// `(total_elapsed, iterations)` accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per the harness settings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up (also primes caches/allocators).
        black_box(routine());
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on the time spent measuring one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            measured: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            measured: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if self.criterion.mode == Mode::Test {
            return;
        }
        match bencher.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let mean = elapsed.as_secs_f64() / iters as f64;
                println!(
                    "{}/{:<32} {:>12.3} µs/iter  ({} iters in {:.3} s)",
                    self.name,
                    id.id,
                    mean * 1e6,
                    iters,
                    elapsed.as_secs_f64()
                );
            }
            _ => println!(
                "{}/{}: no measurement (b.iter never called)",
                self.name, id.id
            ),
        }
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone())
            .bench_function("base", f);
        self
    }
}

/// Declares a group of benchmark functions, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench executable's `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_chains() {
        let mut c = Criterion { mode: Mode::Bench };
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(50));
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        assert!(ran >= 3, "warm-up plus samples should run the body");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
