//! A little-endian read cursor over a byte slice, shared by the checkpoint
//! image codecs (this crate's [`crate::image`] and `crac-imagestore`'s
//! on-disk formats).

/// Bounds-checked little-endian reader.  Every accessor returns `None` on
/// truncation instead of panicking, so parsers can surface corruption as an
/// error.
pub struct ByteCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.data.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    /// Current byte offset from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_and_detects_truncation() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0xAABB_CCDDu32.to_le_bytes());
        buf.extend_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        let mut c = ByteCursor::new(&buf);
        assert_eq!(c.u8(), Some(7));
        assert_eq!(c.u32(), Some(0xAABB_CCDD));
        assert_eq!(c.pos(), 5);
        assert_eq!(c.u64(), Some(0x1122_3344_5566_7788));
        assert!(c.at_end());
        assert_eq!(c.u8(), None, "reads past the end return None");
    }
}
