//! The plugin interface: the event hooks DMTCP offers to extensions such as
//! CRAC.

use crac_addrspace::{Addr, MapsEntry, SharedSpace};

/// Checkpoint-lifecycle events delivered to plugins, in order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PluginEvent {
    /// The coordinator is about to write a checkpoint; plugins quiesce their
    /// subsystem (CRAC drains the GPU and stages device state).
    PreCheckpoint,
    /// The checkpoint has been written and the original process continues.
    Resume,
    /// The process is being reconstructed from an image on a (possibly
    /// different) host; plugins rebuild their subsystem (CRAC loads a fresh
    /// lower half and replays its log).
    Restart,
}

/// A plugin's answer to "should this maps entry be included in the image?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionDecision {
    /// Save the whole entry.
    Save,
    /// Skip the whole entry (e.g. it is lower-half memory).
    Skip,
    /// Save only these sub-ranges of the entry — needed because the merged
    /// maps view can fuse upper-half and lower-half mappings into one entry
    /// (Section 3.2.2).
    SaveRanges(Vec<(Addr, u64)>),
}

/// A DMTCP plugin.
///
/// Default implementations make every hook a no-op so simple plugins only
/// override what they need.
pub trait DmtcpPlugin: Send + Sync {
    /// Unique plugin name; also the key of its payload in the image.
    fn name(&self) -> &str;

    /// Called before the image is written.
    fn pre_checkpoint(&self) {}

    /// Serialised plugin state to embed in the image (CRAC's CUDA log and
    /// drained buffers metadata).
    fn payload(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Region filter consulted for every merged `/proc/PID/maps` entry.
    fn region_decision(&self, _entry: &MapsEntry) -> RegionDecision {
        RegionDecision::Save
    }

    /// Called after the image is written, when the original process resumes.
    fn resume(&self) {}

    /// Called on restart, after memory has been restored, with the plugin's
    /// payload from the image and the restored address space.
    fn restart(&self, _payload: &[u8], _space: &SharedSpace) {}
}

/// A trivial plugin used in tests and as documentation of the hook order.
pub struct RecordingPlugin {
    /// Events observed, in order.
    pub events: crac_sync::Mutex<Vec<PluginEvent>>,
}

impl Default for RecordingPlugin {
    fn default() -> Self {
        Self {
            events: crac_sync::Mutex::new("dmtcp.plugin.recording_events", Vec::new()),
        }
    }
}

impl DmtcpPlugin for RecordingPlugin {
    fn name(&self) -> &str {
        "recording"
    }

    fn pre_checkpoint(&self) {
        self.events.lock().push(PluginEvent::PreCheckpoint);
    }

    fn payload(&self) -> Vec<u8> {
        b"recorded".to_vec()
    }

    fn resume(&self) {
        self.events.lock().push(PluginEvent::Resume);
    }

    fn restart(&self, payload: &[u8], _space: &SharedSpace) {
        assert_eq!(payload, b"recorded");
        self.events.lock().push(PluginEvent::Restart);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_noops() {
        struct Minimal;
        impl DmtcpPlugin for Minimal {
            fn name(&self) -> &str {
                "minimal"
            }
        }
        let p = Minimal;
        assert_eq!(p.name(), "minimal");
        assert!(p.payload().is_empty());
        let entry = MapsEntry {
            start: Addr(0x1000),
            end: Addr(0x2000),
            prot: crac_addrspace::Prot::RW,
            label: "x".to_string(),
            merged_regions: 1,
        };
        assert_eq!(p.region_decision(&entry), RegionDecision::Save);
        p.pre_checkpoint();
        p.resume();
        p.restart(&[], &SharedSpace::new_no_aslr());
    }

    #[test]
    fn recording_plugin_tracks_event_order() {
        let p = RecordingPlugin::default();
        p.pre_checkpoint();
        p.resume();
        p.restart(b"recorded", &SharedSpace::new_no_aslr());
        assert_eq!(
            *p.events.lock(),
            vec![
                PluginEvent::PreCheckpoint,
                PluginEvent::Resume,
                PluginEvent::Restart
            ]
        );
    }
}
