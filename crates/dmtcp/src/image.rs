//! The checkpoint-image format.

use std::collections::BTreeMap;

use crac_addrspace::{page_runs, Addr, PageRun, Prot, PAGE_SIZE};

/// One saved memory region: its placement, protection and (sparsely) its
/// content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedRegion {
    /// Start address the region must be restored at.
    pub start: Addr,
    /// Logical length in bytes (what the image *size* accounts for, since a
    /// real DMTCP image stores every byte when gzip is off).
    pub len: u64,
    /// Protection bits to restore.
    pub prot: Prot,
    /// Label (pathname column) for diagnostics.
    pub label: String,
    /// Dirty pages actually written during the run: `(page index within the
    /// region, page bytes)`.  Unlisted pages are zero.
    pub pages: Vec<(u64, Vec<u8>)>,
}

impl SavedRegion {
    /// Bytes of page content physically stored for this region.
    pub fn stored_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Indices of the dirty pages, in increasing order.
    pub fn dirty_page_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().map(|(idx, _)| *idx)
    }

    /// The dirty pages grouped into maximal consecutive runs — the unit an
    /// image store chunks its I/O along.
    pub fn page_runs(&self) -> Vec<PageRun> {
        page_runs(self.dirty_page_indices())
    }
}

/// A checkpoint image: an ordered set of saved regions plus named plugin
/// payloads (CRAC stores its CUDA log there).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Saved regions in address order.
    pub regions: Vec<SavedRegion>,
    /// Plugin payloads keyed by plugin name.
    pub payloads: BTreeMap<String, Vec<u8>>,
    /// Virtual time at which the checkpoint was taken (nanoseconds).
    pub taken_at_ns: u64,
}

impl CheckpointImage {
    /// Logical (uncompressed) image size in bytes: what the paper reports as
    /// "checkpoint size".
    pub fn logical_size(&self) -> u64 {
        let regions: u64 = self.regions.iter().map(|r| r.len).sum();
        let payloads: u64 = self.payloads.values().map(|p| p.len() as u64).sum();
        regions + payloads
    }

    /// Bytes physically stored (dirty pages + payloads); what actually has to
    /// be written in this in-memory model.
    pub fn stored_size(&self) -> u64 {
        let regions: u64 = self.regions.iter().map(|r| r.stored_bytes()).sum();
        let payloads: u64 = self.payloads.values().map(|p| p.len() as u64).sum();
        regions + payloads
    }

    /// Number of saved regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Serialises the image to a byte buffer (simple length-prefixed binary
    /// format; no external dependencies).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"CRACIMG1");
        out.extend_from_slice(&self.taken_at_ns.to_le_bytes());
        out.extend_from_slice(&(self.regions.len() as u64).to_le_bytes());
        for r in &self.regions {
            out.extend_from_slice(&r.start.as_u64().to_le_bytes());
            out.extend_from_slice(&r.len.to_le_bytes());
            out.push(r.prot.bits());
            out.extend_from_slice(&(r.label.len() as u32).to_le_bytes());
            out.extend_from_slice(r.label.as_bytes());
            out.extend_from_slice(&(r.pages.len() as u64).to_le_bytes());
            for (idx, bytes) in &r.pages {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
        out.extend_from_slice(&(self.payloads.len() as u64).to_le_bytes());
        for (name, payload) in &self.payloads {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses an image previously produced by [`CheckpointImage::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut c = crate::cursor::ByteCursor::new(data);
        if c.take(8)? != b"CRACIMG1" {
            return None;
        }
        let taken_at_ns = c.u64()?;
        let nregions = c.u64()? as usize;
        // Capacity hints are capped: a corrupt count must fail at the next
        // cursor read, not abort inside the allocator.
        let mut regions = Vec::with_capacity(nregions.min(1 << 16));
        for _ in 0..nregions {
            let start = Addr(c.u64()?);
            let len = c.u64()?;
            let prot = Prot::from_bits(c.u8()?)?;
            let label_len = c.u32()? as usize;
            let label = String::from_utf8(c.take(label_len)?.to_vec()).ok()?;
            let npages = c.u64()? as usize;
            let mut pages = Vec::with_capacity(npages.min(1 << 16));
            for _ in 0..npages {
                let idx = c.u64()?;
                let bytes = c.take(PAGE_SIZE as usize)?.to_vec();
                pages.push((idx, bytes));
            }
            regions.push(SavedRegion {
                start,
                len,
                prot,
                label,
                pages,
            });
        }
        let npayloads = c.u64()? as usize;
        let mut payloads = BTreeMap::new();
        for _ in 0..npayloads {
            let name_len = c.u32()? as usize;
            let name = String::from_utf8(c.take(name_len)?.to_vec()).ok()?;
            let plen = c.u64()? as usize;
            let payload = c.take(plen)?.to_vec();
            payloads.insert(name, payload);
        }
        Some(Self {
            regions,
            payloads,
            taken_at_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> CheckpointImage {
        let mut img = CheckpointImage {
            taken_at_ns: 123_456,
            ..Default::default()
        };
        img.regions.push(SavedRegion {
            start: Addr(0x4000_0000_0000),
            len: 4 * PAGE_SIZE,
            prot: Prot::RW,
            label: "[heap]".to_string(),
            pages: vec![(1, vec![0xaa; PAGE_SIZE as usize])],
        });
        img.regions.push(SavedRegion {
            start: Addr(0x4000_1000_0000),
            len: 2 * PAGE_SIZE,
            prot: Prot::RX,
            label: "app.text".to_string(),
            pages: vec![],
        });
        img.payloads.insert("crac".to_string(), vec![1, 2, 3, 4]);
        img
    }

    #[test]
    fn sizes_distinguish_logical_and_stored() {
        let img = sample_image();
        assert_eq!(img.logical_size(), 6 * PAGE_SIZE + 4);
        assert_eq!(img.stored_size(), PAGE_SIZE + 4);
        assert_eq!(img.region_count(), 2);
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let img = sample_image();
        let bytes = img.to_bytes();
        let back = CheckpointImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.taken_at_ns, img.taken_at_ns);
        assert_eq!(back.region_count(), 2);
        assert_eq!(back.regions[0].start, img.regions[0].start);
        assert_eq!(back.regions[0].prot, Prot::RW);
        assert_eq!(back.regions[0].pages.len(), 1);
        assert_eq!(back.regions[0].pages[0].1[0], 0xaa);
        assert_eq!(back.regions[1].prot, Prot::RX);
        assert_eq!(back.payloads["crac"], vec![1, 2, 3, 4]);
        assert_eq!(back.logical_size(), img.logical_size());
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let img = sample_image();
        let mut bytes = img.to_bytes();
        bytes[0] = b'X';
        assert!(CheckpointImage::from_bytes(&bytes).is_none());
        // Truncation is also rejected.
        let bytes = img.to_bytes();
        assert!(CheckpointImage::from_bytes(&bytes[..bytes.len() - 3]).is_none());
    }
}
