//! A host-side transparent checkpoint-restart package, standing in for DMTCP.
//!
//! CRAC is built as a DMTCP plugin: DMTCP saves and restores the *host* state
//! of a process (its memory regions, read from `/proc/PID/maps`), while the
//! plugin handles everything CUDA-specific at well-defined event hooks.  This
//! crate reproduces the pieces of DMTCP that CRAC interacts with:
//!
//! * [`plugin`] — the plugin trait with the event hooks CRAC uses
//!   (pre-checkpoint, resume, restart) plus the region-filter hook that lets
//!   a plugin exclude lower-half memory from the image;
//! * [`image`] — the checkpoint-image format: saved memory regions (sparse,
//!   page-granular content plus logical sizes) and named plugin payloads;
//! * [`coordinator`] — the checkpoint/restart driver: builds the image from
//!   the merged `/proc/PID/maps` view, consults plugins, and restores images
//!   into a fresh address space on restart.
//!
//! Compression is modelled as a switch only (the paper disables DMTCP's
//! default gzip for its measurements); image sizes are reported uncompressed.

pub mod coordinator;
pub mod cursor;
pub mod image;
pub mod plugin;
pub mod stream;

pub use coordinator::{
    CkptStats, Coordinator, CoordinatorConfig, LazyDeclaration, PrecopyConfig, PrecopyStats,
    RestartStats, RestoreCursor,
};
pub use cursor::ByteCursor;
pub use image::{CheckpointImage, SavedRegion};
pub use plugin::{DmtcpPlugin, PluginEvent, RegionDecision};
pub use stream::{
    CheckpointSink, ImageSink, RegionDescriptor, RestoreSink, SinkClosed, MAX_RUN_PAGES,
};
