//! Streaming checkpoint production and restore consumption: region by
//! region, run by run.
//!
//! The materialising path ([`Coordinator::checkpoint`]) builds a complete
//! in-memory [`CheckpointImage`] before anyone can write a byte — for a
//! multi-GB footprint that doubles peak RSS at the worst possible moment
//! (the application is quiesced).  The streaming path inverts control: the
//! coordinator walks the merged maps view exactly as before, but pushes
//! `(region descriptor, page-run payload)` records into a caller-supplied
//! [`CheckpointSink`] as it goes, holding at most one bounded run buffer
//! ([`MAX_RUN_PAGES`] pages) of content at a time.  A disk-backed sink (the
//! image store's writer pipeline) can then overlap hashing, encoding and
//! file I/O with the walk itself.
//!
//! The sink signals failure with the opaque [`SinkClosed`] marker: the
//! producer stops feeding immediately, and the *real* error (an I/O error,
//! say) is recovered from the sink by whoever owns it.  This keeps
//! `crac-dmtcp` free of any dependency on the consumer's error type — the
//! image store depends on this crate, not the other way around.
//!
//! The seam is deliberately location-agnostic: the coordinator drives the
//! same [`CheckpointSink`] whether the records land in a local chunk store
//! or ship straight to a remote peer over a replication transport (and the
//! restore walk likewise consumes a [`RestoreSink`] fed from either) — the
//! checkpoint/restart walks never learn where the bytes live.

use crac_addrspace::{Addr, PageRun, Prot, PAGE_SIZE};

use crate::image::{CheckpointImage, SavedRegion};

/// Upper bound on pages per [`CheckpointSink::page_run`] call.  Runs longer
/// than this are split, so a sink never receives (and the producer never
/// buffers) more than `MAX_RUN_PAGES * PAGE_SIZE` bytes per record — this is
/// what bounds the producer side of the streaming pipeline.
pub const MAX_RUN_PAGES: u64 = 16;

/// A saved region's identity, sans content: everything a manifest needs to
/// describe the region before its page runs stream through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionDescriptor {
    /// Start address the region must be restored at.
    pub start: Addr,
    /// Logical length in bytes.
    pub len: u64,
    /// Protection bits to restore.
    pub prot: Prot,
    /// Label (pathname column) for diagnostics.
    pub label: String,
}

/// Opaque "stop producing" marker returned by a failed sink.
///
/// Carries no payload by design: the underlying error lives in the sink
/// (which the caller owns and can interrogate), so this crate needs no
/// knowledge of downstream error types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkClosed;

/// Consumer of a streamed checkpoint.
///
/// Calls arrive in a strict order the producer guarantees:
///
/// ```text
/// (begin_region (page_run)* end_region)* (payload)*
/// ```
///
/// with runs inside a region-open in strictly increasing page order and
/// each run at most [`MAX_RUN_PAGES`] pages.  Any method may return
/// `Err(SinkClosed)`; the producer then stops immediately (plugins are
/// still resumed) and propagates the marker.
///
/// A pre-copy producer ([`Coordinator::checkpoint_precopy`](crate::Coordinator::checkpoint_precopy))
/// may *re-open* a region — another `begin_region` whose `start` matches an
/// earlier region's, while no region is open — to carry a later round's
/// re-dirtied runs.  The sink must resolve overlaps **last-write-wins**:
/// where a re-emitted run covers a page from an earlier round, the later
/// content is the region's content.  A one-round producer never re-opens,
/// so sinks that predate pre-copy remain correct for it.
pub trait CheckpointSink {
    /// Opens a region; subsequent [`CheckpointSink::page_run`] calls belong
    /// to it until [`CheckpointSink::end_region`].  A `desc.start` equal to
    /// an already-closed region's re-opens that region for another round of
    /// runs.
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed>;

    /// One run of consecutive dirty pages.  `bytes.len()` is exactly
    /// `run.count * PAGE_SIZE`.
    fn page_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), SinkClosed>;

    /// Closes the region opened by the last
    /// [`CheckpointSink::begin_region`].
    fn end_region(&mut self) -> Result<(), SinkClosed>;

    /// One named plugin payload (only non-empty payloads are delivered).
    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed>;
}

/// Consumer of a streamed *restore* — the mirror image of
/// [`CheckpointSink`].
///
/// Where a checkpoint producer walks live memory in address order, a
/// restore producer (a disk-backed image reader) delivers page content in
/// whatever order its chunks are fetched and verified.  The contract is
/// therefore looser than the checkpoint one:
///
/// * every region is declared up front (declaration order defines the
///   region indices later calls refer to) — regions are pure metadata, so
///   a reader has them all before the first content byte arrives;
/// * page runs then arrive in **arbitrary order**, across regions and
///   within a region, each tagged with its target region's index;
/// * payloads may arrive at any point after the declarations.
///
/// Any method may return `Err(SinkClosed)`; the producer stops immediately
/// and propagates the marker, exactly as on the checkpoint side.
pub trait RestoreSink {
    /// Declares the next region (regions are indexed by declaration
    /// order, starting at 0).
    fn declare_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed>;

    /// One verified run of pages for declared region `region`.
    /// `bytes.len()` is exactly `run.count * PAGE_SIZE`; `run.first` is a
    /// region-relative page index.
    fn page_run(&mut self, region: usize, run: PageRun, bytes: &[u8]) -> Result<(), SinkClosed>;

    /// One named plugin payload.
    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed>;
}

/// The infallible in-memory sink: rebuilds a [`CheckpointImage`].
///
/// [`Coordinator::checkpoint`](crate::Coordinator::checkpoint) is this sink
/// driven by the streaming walk — one code path produces both the legacy
/// materialised image and the streamed-to-disk variant, so they cannot
/// drift apart.
#[derive(Debug, Default)]
pub struct ImageSink {
    /// The image being accumulated.
    pub image: CheckpointImage,
    /// Index of the open region (re-opens resolve to the original entry).
    cur: Option<usize>,
}

impl CheckpointSink for ImageSink {
    fn begin_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed> {
        debug_assert!(self.cur.is_none(), "begin_region while a region is open");
        let existing = self
            .image
            .regions
            .iter()
            .position(|r| r.start == desc.start);
        self.cur = Some(match existing {
            Some(idx) => idx,
            None => {
                self.image.regions.push(SavedRegion {
                    start: desc.start,
                    len: desc.len,
                    prot: desc.prot,
                    label: desc.label.clone(),
                    pages: Vec::new(),
                });
                self.image.regions.len() - 1
            }
        });
        Ok(())
    }

    fn page_run(&mut self, run: PageRun, bytes: &[u8]) -> Result<(), SinkClosed> {
        debug_assert_eq!(bytes.len() as u64, run.count * PAGE_SIZE);
        let region =
            // crac-lint: allow(no-unwrap) — local invariant established just above; the expect message documents it
            &mut self.image.regions[self.cur.expect("page_run outside begin_region/end_region")];
        for (i, page) in run.pages().enumerate() {
            let off = i * PAGE_SIZE as usize;
            let content = bytes[off..off + PAGE_SIZE as usize].to_vec();
            // Last-write-wins across pre-copy rounds, keeping the page
            // list sorted and duplicate-free.
            match region.pages.binary_search_by_key(&page, |(idx, _)| *idx) {
                Ok(at) => region.pages[at].1 = content,
                Err(at) => region.pages.insert(at, (page, content)),
            }
        }
        Ok(())
    }

    fn end_region(&mut self) -> Result<(), SinkClosed> {
        self.cur = None;
        Ok(())
    }

    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed> {
        self.image.payloads.insert(name.to_string(), data.to_vec());
        Ok(())
    }
}
