//! The checkpoint/restart driver.

use std::sync::Arc;

use crac_addrspace::{page_runs, Addr, Half, MapRequest, Prot, SharedSpace, PAGE_SIZE};
use crac_obs::ObsRegistry;

use crate::image::CheckpointImage;
use crate::plugin::{DmtcpPlugin, RegionDecision};
use crate::stream::{
    CheckpointSink, ImageSink, RegionDescriptor, RestoreSink, SinkClosed, MAX_RUN_PAGES,
};

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Whether images are gzip-compressed.  The paper disables compression
    /// for its measurements; when enabled the model assumes a 2.5× ratio for
    /// the I/O-time estimate (contents are stored uncompressed either way).
    pub gzip: bool,
    /// Checkpoint-image write bandwidth, bytes per nanosecond.
    pub disk_write_bw: f64,
    /// Checkpoint-image read bandwidth, bytes per nanosecond.
    pub disk_read_bw: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            gzip: false,
            disk_write_bw: 2.0, // ~2 GB/s, a node-local NVMe or parallel FS
            disk_read_bw: 3.0,
        }
    }
}

/// Statistics of one checkpoint operation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CkptStats {
    /// Logical (uncompressed) image size in bytes.
    pub image_bytes: u64,
    /// Bytes physically stored in the in-memory image (dirty pages only).
    pub stored_bytes: u64,
    /// Merged maps entries saved (wholly or partially).
    pub regions_saved: usize,
    /// Merged maps entries skipped on plugin request.
    pub regions_skipped: usize,
    /// Modelled time to write the image, in nanoseconds.
    pub write_ns: u64,
}

/// Statistics of one restart operation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RestartStats {
    /// Regions restored into the new address space.
    pub regions_restored: usize,
    /// Logical bytes restored.
    pub bytes_restored: u64,
    /// Modelled time to read the image, in nanoseconds.
    pub read_ns: u64,
}

/// The DMTCP coordinator: owns the plugin list and drives checkpoint and
/// restart.
pub struct Coordinator {
    config: CoordinatorConfig,
    space: SharedSpace,
    plugins: Vec<Arc<dyn DmtcpPlugin>>,
    /// The process-wide observability registry.  The coordinator owns
    /// the root handle; the store-aware entry points (`crac-imagestore`'s
    /// `CoordinatorStoreExt`) hand it down so every layer — writer,
    /// reader, replication, transport — records into the same registry
    /// and one scrape covers the whole checkpoint/restore flow.
    obs: ObsRegistry,
}

impl Coordinator {
    /// Creates a coordinator attached to the process's address space.
    pub fn new(space: SharedSpace, config: CoordinatorConfig) -> Self {
        Self {
            config,
            space,
            plugins: Vec::new(),
            obs: ObsRegistry::new(),
        }
    }

    /// The coordinator's observability registry (a shared handle — clones
    /// observe the same metrics and events).
    pub fn obs(&self) -> ObsRegistry {
        self.obs.clone()
    }

    /// Replaces the coordinator's registry, e.g. to aggregate several
    /// coordinators into one scrape endpoint.
    pub fn adopt_obs(&mut self, obs: ObsRegistry) {
        self.obs = obs;
    }

    /// Registers a plugin.  Plugins are consulted in registration order.
    pub fn register_plugin(&mut self, plugin: Arc<dyn DmtcpPlugin>) {
        self.plugins.push(plugin);
    }

    /// Names of registered plugins, in order.
    pub fn plugin_names(&self) -> Vec<String> {
        self.plugins.iter().map(|p| p.name().to_string()).collect()
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.config
    }

    /// Takes a checkpoint of the process at virtual time `now_ns`.
    ///
    /// Order of operations mirrors DMTCP: plugins quiesce
    /// (`pre_checkpoint`), the coordinator walks the merged maps view and
    /// saves whatever the plugins do not exclude, plugin payloads are
    /// embedded, and finally plugins `resume`.
    ///
    /// This is the materialising entry point for in-memory users — it is
    /// the streaming walk ([`Coordinator::checkpoint_streaming`]) driven
    /// into an [`ImageSink`], so the two paths cannot diverge.
    pub fn checkpoint(&self, now_ns: u64) -> (CheckpointImage, CkptStats) {
        let mut sink = ImageSink::default();
        let stats = self
            .checkpoint_streaming(&mut sink)
            .expect("ImageSink is infallible");
        sink.image.taken_at_ns = now_ns;
        (sink.image, stats)
    }

    /// Takes a checkpoint, pushing `(region descriptor, page-run payload)`
    /// records into `sink` instead of materialising a [`CheckpointImage`].
    ///
    /// The walk takes no timestamp: the sink's owner stamps the
    /// checkpoint's completion time itself (it may want to account for
    /// modelled write time first, as `crac-core` does).
    ///
    /// The producer holds at most one bounded run buffer
    /// ([`MAX_RUN_PAGES`] pages) of content at a time, so a disk-backed
    /// sink bounds the checkpoint's peak memory by its own queue depth
    /// rather than the image size.  If the sink reports [`SinkClosed`],
    /// the walk stops immediately — but plugins are still resumed, so a
    /// failed checkpoint never leaves the application quiesced — and the
    /// marker is propagated for the sink's owner to translate into the
    /// real error.
    pub fn checkpoint_streaming(
        &self,
        sink: &mut dyn CheckpointSink,
    ) -> Result<CkptStats, SinkClosed> {
        for p in &self.plugins {
            p.pre_checkpoint();
        }
        let result = self.stream_regions(sink);
        for p in &self.plugins {
            p.resume();
        }
        result
    }

    /// The shared walk behind both checkpoint flavours.
    fn stream_regions(&self, sink: &mut dyn CheckpointSink) -> Result<CkptStats, SinkClosed> {
        let mut stats = CkptStats::default();
        let entries = self.space.with(|s| s.proc_maps());
        for entry in &entries {
            // First plugin with a non-Save opinion wins.
            let decision = self
                .plugins
                .iter()
                .map(|p| p.region_decision(entry))
                .find(|d| *d != RegionDecision::Save)
                .unwrap_or(RegionDecision::Save);
            let ranges: Vec<(Addr, u64)> = match decision {
                RegionDecision::Save => vec![(entry.start, entry.len())],
                RegionDecision::Skip => {
                    stats.regions_skipped += 1;
                    continue;
                }
                RegionDecision::SaveRanges(rs) => rs,
            };
            if ranges.is_empty() {
                stats.regions_skipped += 1;
                continue;
            }
            stats.regions_saved += 1;
            for (start, len) in ranges {
                let desc = RegionDescriptor {
                    start,
                    len,
                    prot: entry.prot,
                    label: entry.label.clone(),
                };
                sink.begin_region(&desc)?;
                stats.stored_bytes += self.stream_range(start, len, sink)?;
                sink.end_region()?;
                stats.image_bytes += len;
            }
        }

        for p in &self.plugins {
            let payload = p.payload();
            if !payload.is_empty() {
                sink.payload(p.name(), &payload)?;
                stats.image_bytes += payload.len() as u64;
                stats.stored_bytes += payload.len() as u64;
            }
        }

        let effective_bytes = if self.config.gzip {
            (stats.image_bytes as f64 / 2.5) as u64
        } else {
            stats.image_bytes
        };
        stats.write_ns = (effective_bytes as f64 / self.config.disk_write_bw).ceil() as u64;
        Ok(stats)
    }

    /// Streams one saved range's dirty pages into `sink` as runs of at most
    /// [`MAX_RUN_PAGES`] pages, returning the content bytes streamed.
    ///
    /// Only page *references* (16 bytes each) are gathered up front; content
    /// is copied one run buffer at a time, which is the whole point of the
    /// streaming path.
    fn stream_range(
        &self,
        start: Addr,
        len: u64,
        sink: &mut dyn CheckpointSink,
    ) -> Result<u64, SinkClosed> {
        self.space.with(|s| {
            // Walk the underlying (unmerged) regions overlapping this range
            // and index their dirty pages by range-relative position.
            let mut pages: Vec<(u64, &[u8])> = Vec::new();
            for region in s.regions() {
                if !region.overlaps(start, len) {
                    continue;
                }
                for (page_idx, bytes) in region.store.dirty_pages() {
                    let page_addr = region.start + page_idx * PAGE_SIZE;
                    if page_addr >= start && page_addr + PAGE_SIZE <= start + len {
                        pages.push(((page_addr - start) / PAGE_SIZE, bytes));
                    }
                }
            }
            pages.sort_by_key(|(idx, _)| *idx);
            let by_index: std::collections::BTreeMap<u64, &[u8]> = pages.iter().copied().collect();
            let mut streamed = 0u64;
            let mut buf: Vec<u8> = Vec::new();
            for run in page_runs(pages.iter().map(|(idx, _)| *idx)) {
                // Split oversized runs so the buffer stays bounded.
                let mut first = run.first;
                let mut remaining = run.count;
                while remaining > 0 {
                    let take = remaining.min(MAX_RUN_PAGES);
                    buf.clear();
                    for page in first..first + take {
                        buf.extend_from_slice(by_index[&page]);
                    }
                    sink.page_run(crac_addrspace::PageRun { first, count: take }, &buf)?;
                    streamed += take * PAGE_SIZE;
                    first += take;
                    remaining -= take;
                }
            }
            Ok(streamed)
        })
    }

    /// Restores `image` into `space` (a fresh process on restart) and fires
    /// the plugins' `restart` hooks.
    ///
    /// This is the materialising entry point for in-memory users — it is
    /// the image driven through the streaming restore path
    /// ([`Coordinator::restart_streaming`]), so the two cannot diverge.
    pub fn restart_into(&self, image: &CheckpointImage, space: &SharedSpace) -> RestartStats {
        self.restart_streaming(space, |sink| {
            for r in &image.regions {
                sink.declare_region(&RegionDescriptor {
                    start: r.start,
                    len: r.len,
                    prot: r.prot,
                    label: r.label.clone(),
                })?;
            }
            for (region, r) in image.regions.iter().enumerate() {
                for (idx, bytes) in &r.pages {
                    sink.page_run(
                        region,
                        crac_addrspace::PageRun {
                            first: *idx,
                            count: 1,
                        },
                        bytes,
                    )?;
                }
            }
            for (name, data) in &image.payloads {
                sink.payload(name, data)?;
            }
            Ok(())
        })
        .expect("in-memory restore source is infallible")
    }

    /// Restores a *streamed* checkpoint into `space`: `produce` receives a
    /// [`RestoreCursor`] (the coordinator's [`RestoreSink`]) and pushes
    /// region declarations, page runs (in any order — chunk-arrival order
    /// for a disk-backed reader) and payloads into it; pages land in the
    /// address space **as they arrive**, so a disk-backed producer bounds
    /// the restore's peak memory by its own queue depth rather than the
    /// image size.
    ///
    /// When `produce` returns `Ok`, recorded protections are applied, the
    /// plugins' `restart` hooks fire with their payloads, and the restart
    /// stats are returned.  When it returns [`SinkClosed`] the restore is
    /// abandoned mid-way — protections and plugin hooks are skipped (the
    /// half-restored space must be thrown away) and the marker propagated
    /// for the producer's owner to translate into the real error.
    pub fn restart_streaming(
        &self,
        space: &SharedSpace,
        produce: impl FnOnce(&mut RestoreCursor<'_>) -> Result<(), SinkClosed>,
    ) -> Result<RestartStats, SinkClosed> {
        let mut cursor = RestoreCursor {
            space,
            regions: Vec::new(),
            payloads: Vec::new(),
            logical_bytes: 0,
        };
        produce(&mut cursor)?;

        let mut stats = RestartStats::default();
        for (start, len, prot) in &cursor.regions {
            // Content was installed through the RW mapping; only now does
            // the recorded protection go on.
            if *prot != Prot::RW {
                space.with_mut(|s| s.mprotect(*start, *len, *prot)).ok();
            }
            stats.regions_restored += 1;
            stats.bytes_restored += len;
        }
        let effective_bytes = if self.config.gzip {
            (cursor.logical_bytes as f64 / 2.5) as u64
        } else {
            cursor.logical_bytes
        };
        stats.read_ns = (effective_bytes as f64 / self.config.disk_read_bw).ceil() as u64;

        for p in &self.plugins {
            let payload = cursor
                .payloads
                .iter()
                .find(|(name, _)| name == p.name())
                .map(|(_, data)| data.clone())
                .unwrap_or_default();
            p.restart(&payload, space);
        }
        Ok(stats)
    }
}

/// The coordinator's streaming-restore consumer: maps declared regions
/// writable and installs page runs the moment they arrive.
///
/// Obtained through [`Coordinator::restart_streaming`].  The cursor itself
/// never reports [`SinkClosed`] — a fresh address space accepts every
/// well-formed record, and a malformed one (overlapping regions, a run
/// outside its region) is a producer bug that panics exactly as the
/// legacy materialised restore did.
pub struct RestoreCursor<'a> {
    space: &'a SharedSpace,
    /// Declared regions, in declaration order: `(start, len, prot)`.
    /// Protections are applied at finish, after all content landed.
    regions: Vec<(Addr, u64, Prot)>,
    /// Collected payloads, handed to the plugins' `restart` hooks.
    payloads: Vec<(String, Vec<u8>)>,
    /// Logical bytes restored (regions + payloads) — drives the modelled
    /// read time.
    logical_bytes: u64,
}

impl RestoreSink for RestoreCursor<'_> {
    fn declare_region(&mut self, desc: &RegionDescriptor) -> Result<(), SinkClosed> {
        // Map writable first so page contents can be installed; the
        // recorded protection goes on when the stream finishes.
        self.space
            .mmap(
                MapRequest::anon(desc.len, Half::Upper, &desc.label)
                    .at(desc.start)
                    .prot(Prot::RW),
            )
            .expect("restoring a saved region must succeed");
        self.regions.push((desc.start, desc.len, desc.prot));
        self.logical_bytes += desc.len;
        Ok(())
    }

    fn page_run(
        &mut self,
        region: usize,
        run: crac_addrspace::PageRun,
        bytes: &[u8],
    ) -> Result<(), SinkClosed> {
        debug_assert_eq!(bytes.len() as u64, run.count * PAGE_SIZE);
        let (start, _, _) = self
            .regions
            .get(region)
            .expect("page_run targets an undeclared region");
        self.space
            .write_bytes(*start + run.first * PAGE_SIZE, bytes)
            .expect("page restore within freshly mapped region");
        Ok(())
    }

    fn payload(&mut self, name: &str, data: &[u8]) -> Result<(), SinkClosed> {
        self.logical_bytes += data.len() as u64;
        self.payloads.push((name.to_string(), data.to_vec()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::RecordingPlugin;
    use crac_addrspace::MapsEntry;

    fn upper_mapping(space: &SharedSpace, pages: u64, label: &str) -> Addr {
        space
            .mmap(MapRequest::anon(pages * PAGE_SIZE, Half::Upper, label))
            .unwrap()
    }

    fn lower_mapping(space: &SharedSpace, pages: u64, label: &str) -> Addr {
        space
            .mmap(MapRequest::anon(pages * PAGE_SIZE, Half::Lower, label))
            .unwrap()
    }

    #[test]
    fn checkpoint_then_restart_restores_content() {
        let space = SharedSpace::new_no_aslr();
        let a = upper_mapping(&space, 4, "app-data");
        space.write_bytes(a + 100, b"survive me").unwrap();
        let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
        let (image, stats) = coord.checkpoint(42);
        assert_eq!(stats.regions_saved, 1);
        assert_eq!(stats.image_bytes, 4 * PAGE_SIZE);
        assert!(stats.write_ns > 0);

        // Restart into a brand-new address space.
        let fresh = SharedSpace::new_no_aslr();
        let rstats = coord.restart_into(&image, &fresh);
        assert_eq!(rstats.regions_restored, 1);
        let mut buf = [0u8; 10];
        fresh.read_bytes(a + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"survive me");
    }

    #[test]
    fn plugin_skip_excludes_lower_half() {
        struct SkipLower;
        impl DmtcpPlugin for SkipLower {
            fn name(&self) -> &str {
                "skip-lower"
            }
            fn region_decision(&self, entry: &MapsEntry) -> RegionDecision {
                if entry.start.as_u64() < 0x4000_0000_0000 {
                    RegionDecision::Skip
                } else {
                    RegionDecision::Save
                }
            }
        }
        let space = SharedSpace::new_no_aslr();
        upper_mapping(&space, 2, "upper");
        lower_mapping(&space, 64, "cuda-arena");
        let mut coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
        coord.register_plugin(Arc::new(SkipLower));
        let (image, stats) = coord.checkpoint(0);
        assert_eq!(stats.regions_saved, 1);
        assert_eq!(stats.regions_skipped, 1);
        // Only the 2-page upper mapping is in the image, not the 64-page
        // lower arena.
        assert_eq!(image.logical_size(), 2 * PAGE_SIZE);
    }

    #[test]
    fn save_ranges_splits_a_merged_entry() {
        // One plugin saves only the first page of every entry.
        struct FirstPageOnly;
        impl DmtcpPlugin for FirstPageOnly {
            fn name(&self) -> &str {
                "first-page"
            }
            fn region_decision(&self, entry: &MapsEntry) -> RegionDecision {
                RegionDecision::SaveRanges(vec![(entry.start, PAGE_SIZE)])
            }
        }
        let space = SharedSpace::new_no_aslr();
        let a = upper_mapping(&space, 8, "big");
        space.write_bytes(a, &[1u8; 16]).unwrap();
        space.write_bytes(a + 4 * PAGE_SIZE, &[2u8; 16]).unwrap();
        let mut coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
        coord.register_plugin(Arc::new(FirstPageOnly));
        let (image, _) = coord.checkpoint(0);
        assert_eq!(image.logical_size(), PAGE_SIZE);
        assert_eq!(image.regions[0].pages.len(), 1);
    }

    #[test]
    fn plugin_hooks_fire_in_order_and_payload_round_trips() {
        let space = SharedSpace::new_no_aslr();
        upper_mapping(&space, 1, "x");
        let plugin = Arc::new(RecordingPlugin::default());
        let mut coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
        coord.register_plugin(plugin.clone());
        let (image, _) = coord.checkpoint(0);
        assert_eq!(image.payloads["recording"], b"recorded");
        let fresh = SharedSpace::new_no_aslr();
        coord.restart_into(&image, &fresh);
        use crate::plugin::PluginEvent::*;
        assert_eq!(*plugin.events.lock(), vec![PreCheckpoint, Resume, Restart]);
    }

    #[test]
    fn gzip_reduces_modelled_io_time_only() {
        let space = SharedSpace::new_no_aslr();
        let a = upper_mapping(&space, 100, "data");
        space.fill(a, 100 * PAGE_SIZE, 7).unwrap();
        let plain = Coordinator::new(space.clone(), CoordinatorConfig::default());
        let gz = Coordinator::new(
            space.clone(),
            CoordinatorConfig {
                gzip: true,
                ..Default::default()
            },
        );
        let (img_plain, s_plain) = plain.checkpoint(0);
        let (img_gz, s_gz) = gz.checkpoint(0);
        assert_eq!(img_plain.logical_size(), img_gz.logical_size());
        assert!(s_gz.write_ns < s_plain.write_ns);
    }

    #[test]
    fn readonly_regions_are_restored_with_their_protection() {
        let space = SharedSpace::new_no_aslr();
        let a = upper_mapping(&space, 1, "text");
        space.write_bytes(a, b"code bytes").unwrap();
        space
            .with_mut(|s| s.mprotect(a, PAGE_SIZE, Prot::RX))
            .unwrap();
        let coord = Coordinator::new(space.clone(), CoordinatorConfig::default());
        let (image, _) = coord.checkpoint(0);
        let fresh = SharedSpace::new_no_aslr();
        coord.restart_into(&image, &fresh);
        let mut buf = [0u8; 10];
        fresh.read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"code bytes");
        // Write should now fail: the protection came back as RX.
        assert!(fresh.write_bytes(a, b"nope").is_err());
    }
}
